//! Performance monitors (§4.2): the `Metric(p)` oracle feeding strategies.
//!
//! The paper evaluates with monitors that read the network model directly
//! (§4.3: *"strategies and monitors are simplified by relying on global
//! knowledge of the network that is extracted directly from the model
//! file"*), isolating strategy quality from monitor quality. The same
//! trait also admits a deployable runtime monitor that estimates RTT from
//! ping/pong exchanges, like TCP's implicit round-trip estimation the
//! paper points to.

use egm_rng::hash::FastHashMap;
use egm_simnet::NodeId;
use egm_topology::RoutedModel;
use std::sync::Arc;

/// `Metric(p)`: a scalar distance-like measure to a peer, lower = closer.
///
/// Implementations must return `f64::INFINITY` for unknown peers so that
/// radius tests (`Metric(p) < ρ`) fail closed (lazy push).
pub trait PerformanceMonitor: std::fmt::Debug {
    /// Current metric from `me` to peer `p`.
    fn metric(&self, me: NodeId, p: NodeId) -> f64;
}

/// Latency oracle: reads one-way latency (ms) from the routed model.
#[derive(Debug, Clone)]
pub struct OracleLatency {
    model: Arc<RoutedModel>,
}

impl OracleLatency {
    /// Creates the oracle over a shared model.
    pub fn new(model: Arc<RoutedModel>) -> Self {
        OracleLatency { model }
    }
}

impl PerformanceMonitor for OracleLatency {
    fn metric(&self, me: NodeId, p: NodeId) -> f64 {
        if me.index() >= self.model.client_count() || p.index() >= self.model.client_count() {
            return f64::INFINITY;
        }
        self.model.latency_ms(me.index(), p.index())
    }
}

/// Distance oracle: pseudo-geographical Euclidean distance (map units).
///
/// The paper uses this "mostly for demonstration purposes" — it makes the
/// emergent mesh of Fig. 4(b) plottable.
#[derive(Debug, Clone)]
pub struct OracleDistance {
    model: Arc<RoutedModel>,
}

impl OracleDistance {
    /// Creates the oracle over a shared model.
    pub fn new(model: Arc<RoutedModel>) -> Self {
        OracleDistance { model }
    }
}

impl PerformanceMonitor for OracleDistance {
    fn metric(&self, me: NodeId, p: NodeId) -> f64 {
        if me.index() >= self.model.client_count() || p.index() >= self.model.client_count() {
            return f64::INFINITY;
        }
        self.model.distance(me.index(), p.index())
    }
}

/// Runtime monitor: per-peer smoothed one-way delay estimated from
/// ping/pong round trips (EWMA, α = 1/8 as in TCP's SRTT).
///
/// The embedding node feeds it with [`RuntimeMonitor::record_rtt`]
/// whenever a pong returns; until a sample exists for a peer the metric is
/// infinite (fail closed to lazy push).
///
/// # Examples
///
/// ```
/// use egm_core::monitor::{PerformanceMonitor, RuntimeMonitor};
/// use egm_simnet::NodeId;
///
/// let mut m = RuntimeMonitor::new();
/// assert!(m.metric(NodeId(0), NodeId(1)).is_infinite());
/// m.record_rtt(NodeId(1), 80.0);
/// assert_eq!(m.metric(NodeId(0), NodeId(1)), 40.0); // one-way = RTT/2
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuntimeMonitor {
    // Deterministic hasher: aggregate queries iterate this map and sum
    // f64s, so iteration order must not depend on std's per-process
    // SipHash seed (it would make `mean_one_way_ms` — and every ranking
    // built on it — differ across machines at the last bit).
    srtt_ms: FastHashMap<NodeId, f64>,
}

impl RuntimeMonitor {
    /// Smoothing factor (TCP's classic 1/8).
    const ALPHA: f64 = 0.125;

    /// Creates an empty monitor.
    pub fn new() -> Self {
        RuntimeMonitor::default()
    }

    /// Records a measured round-trip time to `peer` in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `rtt_ms` is negative or non-finite.
    pub fn record_rtt(&mut self, peer: NodeId, rtt_ms: f64) {
        assert!(rtt_ms.is_finite() && rtt_ms >= 0.0, "bad RTT {rtt_ms}");
        self.srtt_ms
            .entry(peer)
            .and_modify(|srtt| *srtt = (1.0 - Self::ALPHA) * *srtt + Self::ALPHA * rtt_ms)
            .or_insert(rtt_ms);
    }

    /// Number of peers with at least one sample.
    pub fn sampled_peers(&self) -> usize {
        self.srtt_ms.len()
    }

    /// Mean smoothed one-way delay over all sampled peers, or `None` when
    /// no peer has a sample yet.
    ///
    /// This is the node's *local centrality estimate*: what it contributes
    /// to the decentralized gossip-sorted ranking
    /// ([`BestSet::by_gossip_sorted`](crate::rank::BestSet::by_gossip_sorted))
    /// — the mean distance to the peers its shuffled views have exposed,
    /// measured from its own RTT observations.
    pub fn mean_one_way_ms(&self) -> Option<f64> {
        if self.srtt_ms.is_empty() {
            return None;
        }
        let total: f64 = self.srtt_ms.values().sum();
        Some(total / (2.0 * self.srtt_ms.len() as f64))
    }
}

impl PerformanceMonitor for RuntimeMonitor {
    fn metric(&self, _me: NodeId, p: NodeId) -> f64 {
        self.srtt_ms.get(&p).map_or(f64::INFINITY, |rtt| rtt / 2.0)
    }
}

/// A monitor that knows nothing (all metrics infinite). Used by strategies
/// that ignore the environment (Flat, TTL) so the node always has *some*
/// monitor to hand to the strategy context.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl PerformanceMonitor for NullMonitor {
    fn metric(&self, _me: NodeId, _p: NodeId) -> f64 {
        f64::INFINITY
    }
}

/// The monitor variants a node can host, dispatched statically.
#[derive(Debug, Clone)]
pub enum Monitor {
    /// No environmental knowledge.
    Null(NullMonitor),
    /// Latency oracle from the model file.
    OracleLatency(OracleLatency),
    /// Distance oracle from the model file.
    OracleDistance(OracleDistance),
    /// Ping-based runtime estimation.
    Runtime(RuntimeMonitor),
}

impl Monitor {
    /// Mutable access to the runtime monitor, if that is the active kind.
    pub fn runtime_mut(&mut self) -> Option<&mut RuntimeMonitor> {
        match self {
            Monitor::Runtime(m) => Some(m),
            _ => None,
        }
    }
}

impl PerformanceMonitor for Monitor {
    fn metric(&self, me: NodeId, p: NodeId) -> f64 {
        match self {
            Monitor::Null(m) => m.metric(me, p),
            Monitor::OracleLatency(m) => m.metric(me, p),
            Monitor::OracleDistance(m) => m.metric(me, p),
            Monitor::Runtime(m) => m.metric(me, p),
        }
    }
}

/// Declarative monitor configuration, buildable into per-node [`Monitor`]
/// instances. Serialized as part of experiment scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, Default)]
pub enum MonitorSpec {
    /// No environmental knowledge.
    #[default]
    Null,
    /// Read one-way latency from the model file (the paper's evaluation
    /// setting, §4.3).
    OracleLatency,
    /// Read pseudo-geographic distance from the model file.
    OracleDistance,
    /// Estimate RTT at runtime with pings (requires
    /// [`ProtocolConfig::ping_interval`](crate::ProtocolConfig) to be
    /// set).
    Runtime,
}

impl MonitorSpec {
    /// Builds the per-node monitor.
    ///
    /// # Panics
    ///
    /// Panics if an oracle variant is requested without a model.
    pub fn build(&self, model: Option<&Arc<RoutedModel>>) -> Monitor {
        match self {
            MonitorSpec::Null => Monitor::Null(NullMonitor),
            MonitorSpec::OracleLatency => Monitor::OracleLatency(OracleLatency::new(Arc::clone(
                model.expect("latency oracle requires a model"),
            ))),
            MonitorSpec::OracleDistance => Monitor::OracleDistance(OracleDistance::new(
                Arc::clone(model.expect("distance oracle requires a model")),
            )),
            MonitorSpec::Runtime => Monitor::Runtime(RuntimeMonitor::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{
        Monitor, MonitorSpec, NullMonitor, OracleDistance, OracleLatency, PerformanceMonitor,
        RuntimeMonitor,
    };
    use egm_simnet::NodeId;
    use egm_topology::RoutedModel;
    use std::sync::Arc;

    fn model() -> Arc<RoutedModel> {
        Arc::new(RoutedModel::planar_synthetic(6, 100.0, 1.0, 3))
    }

    #[test]
    fn latency_oracle_reads_model() {
        let m = model();
        let mon = OracleLatency::new(Arc::clone(&m));
        assert_eq!(mon.metric(NodeId(0), NodeId(3)), m.latency_ms(0, 3));
        assert!(mon.metric(NodeId(0), NodeId(99)).is_infinite());
    }

    #[test]
    fn distance_oracle_reads_model() {
        let m = model();
        let mon = OracleDistance::new(Arc::clone(&m));
        assert_eq!(mon.metric(NodeId(1), NodeId(2)), m.distance(1, 2));
        assert!(mon.metric(NodeId(42), NodeId(0)).is_infinite());
    }

    #[test]
    fn runtime_monitor_ewma_converges() {
        let mut m = RuntimeMonitor::new();
        m.record_rtt(NodeId(1), 100.0);
        assert_eq!(m.metric(NodeId(0), NodeId(1)), 50.0);
        // Repeated lower samples pull the estimate down monotonically.
        let mut last = m.metric(NodeId(0), NodeId(1));
        for _ in 0..50 {
            m.record_rtt(NodeId(1), 60.0);
            let now = m.metric(NodeId(0), NodeId(1));
            assert!(now <= last);
            last = now;
        }
        assert!((last - 30.0).abs() < 1.0, "converged to {last}");
        assert_eq!(m.sampled_peers(), 1);
    }

    #[test]
    fn mean_one_way_averages_sampled_peers() {
        let mut m = RuntimeMonitor::new();
        assert_eq!(m.mean_one_way_ms(), None, "no samples yet");
        m.record_rtt(NodeId(1), 100.0); // one-way 50
        m.record_rtt(NodeId(2), 20.0); // one-way 10
        let mean = m.mean_one_way_ms().expect("two samples");
        assert!((mean - 30.0).abs() < 1e-9, "mean one-way {mean}");
    }

    #[test]
    fn null_monitor_is_infinite() {
        assert!(NullMonitor.metric(NodeId(0), NodeId(1)).is_infinite());
    }

    #[test]
    fn monitor_enum_dispatches() {
        let mon = Monitor::OracleLatency(OracleLatency::new(model()));
        assert!(mon.metric(NodeId(0), NodeId(1)).is_finite());
        let mut null = Monitor::Null(NullMonitor);
        assert!(null.runtime_mut().is_none());
        let mut rt = Monitor::Runtime(RuntimeMonitor::new());
        rt.runtime_mut()
            .expect("runtime")
            .record_rtt(NodeId(1), 10.0);
        assert_eq!(rt.metric(NodeId(0), NodeId(1)), 5.0);
    }

    #[test]
    #[should_panic(expected = "bad RTT")]
    fn negative_rtt_panics() {
        RuntimeMonitor::new().record_rtt(NodeId(0), -1.0);
    }

    #[test]
    fn spec_builds_each_kind() {
        let m = model();
        assert!(matches!(MonitorSpec::Null.build(None), Monitor::Null(_)));
        assert!(matches!(
            MonitorSpec::OracleLatency.build(Some(&m)),
            Monitor::OracleLatency(_)
        ));
        assert!(matches!(
            MonitorSpec::OracleDistance.build(Some(&m)),
            Monitor::OracleDistance(_)
        ));
        assert!(matches!(
            MonitorSpec::Runtime.build(None),
            Monitor::Runtime(_)
        ));
    }

    #[test]
    #[should_panic(expected = "requires a model")]
    fn oracle_without_model_panics() {
        let _ = MonitorSpec::OracleLatency.build(None);
    }
}
