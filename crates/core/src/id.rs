//! Probabilistically unique message identifiers.

use egm_rng::Rng;
use serde::{Deserialize, Serialize};

/// A 128-bit random message identifier.
///
/// The paper's `MkId()` (Fig. 2) generates identifiers that are *"unique
/// with high probability, as conflicts will cause deliveries to be
/// omitted"*; the NeEM implementation uses probabilistically unique 128-bit
/// strings (§5.2), which is exactly what this type is.
///
/// # Examples
///
/// ```
/// use egm_core::MsgId;
/// use egm_rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(1);
/// let a = MsgId::generate(&mut rng);
/// let b = MsgId::generate(&mut rng);
/// assert_ne!(a, b);
/// ```
// Stored as (hi, lo) u64 halves rather than one u128: a u128 field makes
// the whole enum of wire messages 16-byte aligned, growing every
// event-queue entry in the simulator's BinaryHeap. The derived Ord over
// (hi, lo) is lexicographic, i.e. identical to the u128 ordering.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MsgId(u64, u64);

impl MsgId {
    /// Wire size of an identifier in bytes.
    pub const WIRE_BYTES: u32 = 16;

    /// Draws a fresh random identifier (`MkId()` in Fig. 2).
    pub fn generate(rng: &mut Rng) -> Self {
        let hi = rng.next_u64();
        let lo = rng.next_u64();
        MsgId(hi, lo)
    }

    /// Builds an identifier from a raw value (useful in tests).
    pub const fn from_raw(raw: u128) -> Self {
        MsgId((raw >> 64) as u64, raw as u64)
    }

    /// The raw 128-bit value.
    pub const fn as_raw(self) -> u128 {
        ((self.0 as u128) << 64) | self.1 as u128
    }
}

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.as_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::MsgId;
    use egm_rng::Rng;
    use std::collections::HashSet;

    #[test]
    fn generated_ids_are_distinct() {
        let mut rng = Rng::seed_from_u64(1);
        let ids: HashSet<MsgId> = (0..10_000).map(|_| MsgId::generate(&mut rng)).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn raw_round_trip() {
        let id = MsgId::from_raw(0xDEAD_BEEF);
        assert_eq!(id.as_raw(), 0xDEAD_BEEF);
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let id = MsgId::from_raw(0xF);
        assert_eq!(id.to_string().len(), 32);
        assert!(id.to_string().ends_with('f'));
    }
}
