//! Bounded collections for duplicate suppression and payload caching.
//!
//! The paper leaves garbage collection of the known-message set `K`, the
//! received set `R` and the payload cache `C` to prior work (§3.1–§3.2);
//! here they are FIFO-bounded: oldest entries are evicted first, with
//! capacities defaulting far above any experiment's live message count.

use egm_rng::hash::{FastHashMap, FastHashSet};
use std::collections::VecDeque;
use std::hash::Hash;

/// A set with FIFO eviction once `capacity` is exceeded.
///
/// # Examples
///
/// ```
/// use egm_core::util::BoundedSet;
///
/// let mut s = BoundedSet::new(2);
/// s.insert(1);
/// s.insert(2);
/// s.insert(3); // evicts 1
/// assert!(!s.contains(&1));
/// assert!(s.contains(&3));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedSet<T> {
    set: FastHashSet<T>,
    order: VecDeque<T>,
    capacity: usize,
}

impl<T: Eq + Hash + Clone> BoundedSet<T> {
    /// Creates a set bounded to `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BoundedSet {
            set: FastHashSet::default(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Inserts a value; returns `true` if it was new. Evicts the oldest
    /// element when full.
    pub fn insert(&mut self, value: T) -> bool {
        // Single hash probe on the hot path: `HashSet::insert` doubles as
        // the duplicate check (this runs once per received payload).
        if !self.set.insert(value.clone()) {
            return false;
        }
        self.order.push_back(value);
        if self.set.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Whether the set currently holds `value`.
    pub fn contains(&self, value: &T) -> bool {
        self.set.contains(value)
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// A map with FIFO eviction once `capacity` is exceeded.
#[derive(Debug, Clone)]
pub struct BoundedMap<K, V> {
    map: FastHashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> BoundedMap<K, V> {
    /// Creates a map bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BoundedMap {
            map: FastHashMap::default(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Inserts an entry, evicting the oldest when full. Re-inserting an
    /// existing key replaces the value without changing its age.
    pub fn insert(&mut self, key: K, value: V) {
        // Single hash probe on the hot path (payload cache writes):
        // `HashMap::insert` doubles as the presence check via its return.
        if self.map.insert(key.clone(), value).is_some() {
            return; // replaced in place, age unchanged
        }
        self.order.push_back(key);
        // Loop because the order queue may hold tombstones of removed
        // keys. The just-inserted key sits at the back, so with
        // capacity >= 1 it is never the one evicted.
        while self.map.len() > self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.map.get_mut(key)
    }

    /// Removes a key, returning its value if present. (The FIFO order
    /// entry is lazily skipped at eviction time.)
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key)
    }

    /// Whether the map holds `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::{BoundedMap, BoundedSet};

    #[test]
    fn set_eviction_is_fifo() {
        let mut s = BoundedSet::new(3);
        for i in 0..5 {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 3);
        assert!(!s.contains(&0) && !s.contains(&1));
        assert!(s.contains(&2) && s.contains(&3) && s.contains(&4));
    }

    #[test]
    fn set_duplicate_insert_reports_false() {
        let mut s = BoundedSet::new(2);
        assert!(s.insert("a"));
        assert!(!s.insert("a"));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn map_eviction_is_fifo() {
        let mut m = BoundedMap::new(2);
        m.insert(1, "one");
        m.insert(2, "two");
        m.insert(3, "three");
        assert!(m.get(&1).is_none());
        assert_eq!(m.get(&3), Some(&"three"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn map_replace_keeps_age() {
        let mut m = BoundedMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(1, "a2"); // replaces, 1 stays oldest
        m.insert(3, "c"); // evicts 1
        assert!(!m.contains_key(&1));
        assert!(m.contains_key(&2) && m.contains_key(&3));
    }

    #[test]
    fn map_remove_and_len() {
        let mut m: BoundedMap<u32, u32> = BoundedMap::new(4);
        assert!(m.is_empty());
        m.insert(1, 10);
        assert_eq!(m.remove(&1), Some(10));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_set_panics() {
        let _ = BoundedSet::<u32>::new(0);
    }

    #[test]
    fn removed_key_does_not_break_eviction() {
        // Lazily-skipped tombstones in the order queue must not evict live
        // entries prematurely.
        let mut m = BoundedMap::new(2);
        m.insert(1, "a");
        m.remove(&1);
        m.insert(2, "b");
        m.insert(3, "c");
        m.insert(4, "d");
        assert!(m.len() <= 2);
        assert!(m.contains_key(&4));
    }
}
