//! Protocol configuration.

use egm_membership::ViewConfig;
use egm_simnet::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of one protocol node.
///
/// Defaults follow the paper's testbed (§5.2–§5.3): gossip fanout 11,
/// overlay (view) fanout 15, 400 ms retransmission period, 256-byte
/// payloads with a 24-byte NeEM header.
///
/// # Examples
///
/// ```
/// use egm_core::ProtocolConfig;
///
/// let config = ProtocolConfig::default().with_fanout(7).with_rounds(4);
/// assert_eq!(config.fanout, 7);
/// assert_eq!(config.rounds, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Gossip fanout `f`: targets per forwarding step (11 in §5.2).
    pub fanout: usize,
    /// Maximum relay count `t` (Fig. 2 forwards while `r < t`).
    pub rounds: u32,
    /// Retransmission period `T` between repeated `IWANT`s (400 ms in
    /// §5.2 — the minimum that still yields ≈1 payload per destination
    /// under pure lazy push).
    pub retry_interval: SimDuration,
    /// Application payload size in bytes (256 in §5.3).
    pub payload_bytes: u32,
    /// Per-message protocol header in bytes (NeEM uses 24, §5.3).
    pub header_bytes: u32,
    /// Partial-view configuration (capacity 15 in §5.2).
    pub view: ViewConfig,
    /// Interval between membership shuffles; `None` freezes the overlay.
    pub shuffle_interval: Option<SimDuration>,
    /// Interval between runtime-monitor ping rounds; `None` disables the
    /// runtime monitor (oracle monitors need no traffic).
    pub ping_interval: Option<SimDuration>,
    /// Capacity of the payload cache `C` (Fig. 3); oldest entries are
    /// evicted first. Must comfortably exceed the number of in-flight
    /// messages.
    pub cache_capacity: usize,
    /// Capacity of the duplicate-suppression sets `K` and `R`.
    pub known_capacity: usize,
    /// Horizon after which a *delivered* message's arena slot is retired
    /// (freed for reuse), bounding per-node message state to the
    /// in-flight window instead of the run's total message count.
    ///
    /// `None` (the default, and the paper's behavior) keeps state for the
    /// whole run, bounded only by FIFO eviction at `known_capacity`. When
    /// set, the horizon must exceed the worst-case time between a
    /// message's delivery and the last protocol event that references it
    /// anywhere (late duplicates, `IHAVE`s, `IWANT`s) — roughly gossip
    /// depth × (link delay + retry interval); a late `IWANT` past the
    /// horizon is answered with a cache miss. With an ample horizon a
    /// retire-enabled run is byte-identical to a retire-disabled one: the
    /// sweep schedules no events and draws no randomness.
    pub retire_after: Option<SimDuration>,
    /// NeEM-style redundancy suppression: skip transmitting a message
    /// (payload or advertisement) to a peer that is already known to hold
    /// it, i.e. a peer we received the payload or an `IHAVE` from. The
    /// paper's pseudocode (Fig. 2/3) does not include this, so it
    /// defaults to `false`; NeEM 0.5's user-space buffer purging has the
    /// same effect, and the `ablation` bench quantifies it.
    pub suppress_known: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            fanout: 11,
            rounds: 6,
            retry_interval: SimDuration::from_ms(400.0),
            payload_bytes: 256,
            header_bytes: 24,
            view: ViewConfig::default(),
            shuffle_interval: Some(SimDuration::from_ms(1000.0)),
            ping_interval: None,
            cache_capacity: 8192,
            known_capacity: 16384,
            retire_after: None,
            suppress_known: false,
        }
    }
}

impl ProtocolConfig {
    /// Sets the gossip fanout (builder style).
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets the maximum relay count `t` (builder style).
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the `IWANT` retransmission period (builder style).
    pub fn with_retry_interval(mut self, t: SimDuration) -> Self {
        self.retry_interval = t;
        self
    }

    /// Freezes or enables overlay shuffling (builder style).
    pub fn with_shuffle_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.shuffle_interval = interval;
        self
    }

    /// Enables the runtime ping monitor (builder style).
    pub fn with_ping_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.ping_interval = interval;
        self
    }

    /// Sets the delivered-message retirement horizon (builder style). See
    /// [`ProtocolConfig::retire_after`] for the contract the horizon must
    /// satisfy.
    pub fn with_retire_after(mut self, horizon: Option<SimDuration>) -> Self {
        self.retire_after = horizon;
        self
    }

    /// Validates invariants that the protocol relies on.
    ///
    /// # Panics
    ///
    /// Panics if the fanout is zero, the fanout exceeds the view capacity
    /// (the peer sampling service cannot return more peers than it holds),
    /// or any capacity is zero.
    pub fn validate(&self) {
        assert!(self.fanout > 0, "fanout must be positive");
        assert!(
            self.fanout <= self.view.capacity,
            "gossip fanout {} exceeds overlay fanout {}",
            self.fanout,
            self.view.capacity
        );
        assert!(self.cache_capacity > 0, "cache capacity must be positive");
        assert!(self.known_capacity > 0, "known capacity must be positive");
        assert!(
            self.retry_interval > SimDuration::ZERO,
            "retry interval must be positive"
        );
        if let Some(horizon) = self.retire_after {
            assert!(
                horizon >= self.retry_interval,
                "retirement horizon must cover at least one retry interval"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ProtocolConfig;
    use egm_simnet::SimDuration;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = ProtocolConfig::default();
        assert_eq!(c.fanout, 11);
        assert_eq!(c.view.capacity, 15);
        assert_eq!(c.retry_interval, SimDuration::from_ms(400.0));
        assert_eq!(c.payload_bytes, 256);
        assert_eq!(c.header_bytes, 24);
        c.validate();
    }

    #[test]
    fn builder_chains() {
        let c = ProtocolConfig::default()
            .with_fanout(5)
            .with_rounds(3)
            .with_retry_interval(SimDuration::from_ms(100.0))
            .with_shuffle_interval(None)
            .with_ping_interval(Some(SimDuration::from_ms(500.0)));
        assert_eq!(c.fanout, 5);
        assert_eq!(c.rounds, 3);
        assert!(c.shuffle_interval.is_none());
        assert!(c.ping_interval.is_some());
        c.validate();
    }

    #[test]
    fn retirement_defaults_off_and_validates_horizon() {
        let c = ProtocolConfig::default();
        assert!(c.retire_after.is_none(), "paper behavior by default");
        let c = c.with_retire_after(Some(SimDuration::from_ms(10_000.0)));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "retirement horizon")]
    fn sub_retry_horizon_rejected() {
        ProtocolConfig::default()
            .with_retire_after(Some(SimDuration::from_ms(10.0)))
            .validate();
    }

    #[test]
    #[should_panic(expected = "exceeds overlay fanout")]
    fn fanout_cannot_exceed_view() {
        ProtocolConfig::default().with_fanout(16).validate();
    }

    #[test]
    #[should_panic(expected = "fanout must be positive")]
    fn zero_fanout_rejected() {
        ProtocolConfig::default().with_fanout(0).validate();
    }
}
