//! Best-node ranking for the Ranked and Hybrid strategies (§4.1).
//!
//! The paper selects a set of *best nodes* to serve as hubs. They may be
//! configured explicitly (e.g. by an ISP) or computed from local monitors
//! with a gossip-based sorting protocol [11]; crucially, the protocol
//! tolerates approximate rankings (§6.5). Here we provide the oracle
//! ranking used on the emulator — centrality over the model file — plus an
//! explicit-set constructor, both producing a shared [`BestSet`].

use egm_simnet::NodeId;
use egm_topology::RoutedModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The shared set of best nodes (hubs).
///
/// # Examples
///
/// ```
/// use egm_core::rank::BestSet;
/// use egm_simnet::NodeId;
///
/// let best = BestSet::from_ids(10, &[NodeId(2), NodeId(7)]);
/// assert!(best.is_best(NodeId(2)));
/// assert!(!best.is_best(NodeId(3)));
/// assert_eq!(best.best_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestSet {
    flags: Vec<bool>,
}

impl BestSet {
    /// No best nodes at all (degenerates Ranked to pure lazy push).
    pub fn none(n: usize) -> Self {
        BestSet {
            flags: vec![false; n],
        }
    }

    /// Marks an explicit list of node ids as best.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn from_ids(n: usize, ids: &[NodeId]) -> Self {
        let mut flags = vec![false; n];
        for &id in ids {
            assert!(id.index() < n, "best node {id} out of range");
            flags[id.index()] = true;
        }
        BestSet { flags }
    }

    /// Ranks nodes by *latency centrality* over the model file: a node's
    /// score is its mean one-way latency to every other node, and the
    /// lowest-scoring `fraction` become best nodes (at least one).
    ///
    /// This is the oracle equivalent of the gossip-sorted ranking the
    /// paper refers to; the Noise experiments (§6.5) then degrade it
    /// gracefully.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` or the model has fewer
    /// than two clients.
    pub fn by_centrality(model: &RoutedModel, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = model.client_count();
        assert!(n >= 2, "need at least two clients to rank");
        let mut scored: Vec<(f64, usize)> = (0..n)
            .map(|i| {
                let total: f64 = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| model.latency_ms(i, j))
                    .sum();
                (total / (n - 1) as f64, i)
            })
            .collect();
        scored.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let k = ((n as f64 * fraction).round() as usize).clamp(1, n);
        let mut flags = vec![false; n];
        for &(_, i) in &scored[..k] {
            flags[i] = true;
        }
        BestSet { flags }
    }

    /// Ranks nodes by externally supplied scores (lower = better): the
    /// lowest-scoring `fraction` become best nodes (at least one).
    ///
    /// This is the entry point for decentralized rankings, where each node
    /// contributes its own locally measured score (e.g. mean RTT to its
    /// view, gossip-aggregated as in the sorting protocol the paper cites
    /// [11]).
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty, contains non-finite values, or
    /// `fraction` is outside `(0, 1]`.
    pub fn from_scores(scores: &[f64], fraction: f64) -> Self {
        assert!(!scores.is_empty(), "no scores to rank");
        assert!(scores.iter().all(|s| s.is_finite()), "non-finite score");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = scores.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        let k = ((n as f64 * fraction).round() as usize).clamp(1, n);
        let mut flags = vec![false; n];
        for &i in &order[..k] {
            flags[i] = true;
        }
        BestSet { flags }
    }

    /// Decentralized approximation of [`BestSet::by_centrality`]: each
    /// node estimates its own centrality as the mean latency to
    /// `samples_per_node` random peers (what a local latency monitor
    /// measures against the node's shuffled views), and the global rank is
    /// assembled from those noisy local scores.
    ///
    /// With few samples the ranking is approximate — exactly the regime
    /// the paper's noise experiments (§6.5) show the protocol tolerates.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_node == 0`, `fraction` is out of range, or
    /// the model has fewer than two clients.
    pub fn by_sampled_centrality(
        model: &RoutedModel,
        fraction: f64,
        samples_per_node: usize,
        rng: &mut egm_rng::Rng,
    ) -> Self {
        assert!(samples_per_node > 0, "need at least one sample per node");
        let n = model.client_count();
        assert!(n >= 2, "need at least two clients to rank");
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let k = samples_per_node.min(n - 1);
                let mut total = 0.0;
                for idx in egm_rng::sample::distinct_indices(rng, n - 1, k) {
                    let peer = if idx >= i { idx + 1 } else { idx };
                    total += model.latency_ms(i, peer);
                }
                total / k as f64
            })
            .collect();
        BestSet::from_scores(&scores, fraction)
    }

    /// Fraction of this set's best nodes that are also best in `other`
    /// (1.0 = identical hub choice). Useful to quantify how close an
    /// estimated ranking is to the oracle.
    ///
    /// # Panics
    ///
    /// Panics if the sets cover different node counts or this set has no
    /// best nodes.
    pub fn overlap(&self, other: &BestSet) -> f64 {
        assert_eq!(self.len(), other.len(), "sets must cover the same nodes");
        let mine = self.best_ids();
        assert!(!mine.is_empty(), "no best nodes to compare");
        let shared = mine.iter().filter(|&&id| other.is_best(id)).count();
        shared as f64 / mine.len() as f64
    }

    /// Whether `node` is a best node.
    pub fn is_best(&self, node: NodeId) -> bool {
        self.flags.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of nodes covered by this set.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the set covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Number of best nodes.
    pub fn best_count(&self) -> usize {
        self.flags.iter().filter(|&&b| b).count()
    }

    /// Ids of all best nodes, ascending.
    pub fn best_ids(&self) -> Vec<NodeId> {
        self.flags
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(NodeId(i)))
            .collect()
    }

    /// Ids of all regular (non-best) nodes, ascending — the paper's "low"
    /// population (80 % of nodes in §6.4).
    pub fn regular_ids(&self) -> Vec<NodeId> {
        self.flags
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (!b).then_some(NodeId(i)))
            .collect()
    }

    /// Wraps the set for cheap sharing across nodes.
    pub fn shared(self) -> Arc<BestSet> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::BestSet;
    use egm_simnet::NodeId;
    use egm_topology::RoutedModel;

    #[test]
    fn explicit_set_membership() {
        let best = BestSet::from_ids(5, &[NodeId(0), NodeId(4)]);
        assert!(best.is_best(NodeId(0)));
        assert!(best.is_best(NodeId(4)));
        assert!(!best.is_best(NodeId(2)));
        assert!(!best.is_best(NodeId(99)), "out of range is not best");
        assert_eq!(best.best_ids(), vec![NodeId(0), NodeId(4)]);
        assert_eq!(best.regular_ids().len(), 3);
        assert_eq!(best.len(), 5);
    }

    #[test]
    fn centrality_prefers_central_nodes() {
        // Planar model: central nodes have lower mean distance=latency.
        let model = RoutedModel::planar_synthetic(50, 100.0, 1.0, 9);
        let best = BestSet::by_centrality(&model, 0.2);
        assert_eq!(best.best_count(), 10);
        // Every best node's mean latency must not exceed any regular
        // node's mean latency.
        let mean = |i: usize| -> f64 {
            (0..50)
                .filter(|&j| j != i)
                .map(|j| model.latency_ms(i, j))
                .sum::<f64>()
                / 49.0
        };
        let worst_best = best
            .best_ids()
            .iter()
            .map(|&b| mean(b.index()))
            .fold(0.0f64, f64::max);
        let best_regular = best
            .regular_ids()
            .iter()
            .map(|&r| mean(r.index()))
            .fold(f64::INFINITY, f64::min);
        assert!(worst_best <= best_regular + 1e-9);
    }

    #[test]
    fn centrality_selects_at_least_one() {
        let model = RoutedModel::uniform_synthetic(3, 1.0, 2.0, 1);
        let best = BestSet::by_centrality(&model, 0.01);
        assert_eq!(best.best_count(), 1);
    }

    #[test]
    fn none_has_no_best_nodes() {
        let best = BestSet::none(4);
        assert_eq!(best.best_count(), 0);
        assert!(!best.is_empty());
        assert_eq!(best.regular_ids().len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_panics() {
        let _ = BestSet::from_ids(2, &[NodeId(5)]);
    }

    #[test]
    fn from_scores_picks_lowest() {
        let best = BestSet::from_scores(&[5.0, 1.0, 3.0, 2.0], 0.5);
        assert_eq!(best.best_ids(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn from_scores_breaks_ties_deterministically() {
        let a = BestSet::from_scores(&[1.0, 1.0, 1.0, 1.0], 0.25);
        let b = BestSet::from_scores(&[1.0, 1.0, 1.0, 1.0], 0.25);
        assert_eq!(a, b);
        assert_eq!(a.best_count(), 1);
    }

    #[test]
    fn sampled_centrality_approximates_oracle() {
        use egm_rng::Rng;
        let model = RoutedModel::planar_synthetic(60, 100.0, 1.0, 21);
        let oracle = BestSet::by_centrality(&model, 0.2);
        let mut rng = Rng::seed_from_u64(3);
        // Dense sampling: near-perfect agreement.
        let dense = BestSet::by_sampled_centrality(&model, 0.2, 40, &mut rng);
        assert!(
            dense.overlap(&oracle) >= 0.8,
            "dense overlap {}",
            dense.overlap(&oracle)
        );
        // Sparse sampling: still much better than chance (0.2).
        let sparse = BestSet::by_sampled_centrality(&model, 0.2, 4, &mut rng);
        assert!(
            sparse.overlap(&oracle) > 0.35,
            "sparse overlap {}",
            sparse.overlap(&oracle)
        );
    }

    #[test]
    fn overlap_bounds() {
        let a = BestSet::from_ids(6, &[NodeId(0), NodeId(1)]);
        let b = BestSet::from_ids(6, &[NodeId(1), NodeId(2)]);
        assert_eq!(a.overlap(&a), 1.0);
        assert_eq!(a.overlap(&b), 0.5);
        let c = BestSet::from_ids(6, &[NodeId(4), NodeId(5)]);
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_scores_rejects_nan() {
        let _ = BestSet::from_scores(&[1.0, f64::NAN], 0.5);
    }
}
