//! Best-node ranking for the Ranked and Hybrid strategies (§4.1).
//!
//! The paper selects a set of *best nodes* to serve as hubs. They may be
//! configured explicitly (e.g. by an ISP) or computed from local monitors
//! with a gossip-based sorting protocol \[11\]; crucially, the protocol
//! tolerates approximate rankings (§6.5). This module provides all three
//! regimes behind one [`BestSet`] type, selected by [`RankSource`]:
//!
//! * [`RankSource::Oracle`] — [`BestSet::by_centrality`]: exact latency
//!   centrality over the model file, an O(n²) sweep. The emulator-style
//!   global-knowledge ranking (§4.3), and the default for the paper-scale
//!   figure experiments.
//! * [`RankSource::Sampled`] — [`BestSet::by_sampled_centrality`]: each
//!   node estimates its own centrality from `k` random-peer probes,
//!   O(n·k).
//! * [`RankSource::GossipSorted`] — [`BestSet::by_gossip_sorted`]: the
//!   decentralized ranking the paper actually describes. Each node runs
//!   the protocol's own machinery — a bootstrapped [`PartialView`]
//!   shuffled with the Cyclon-style exchange, and a [`RuntimeMonitor`]
//!   EWMA fed by ping RTT observations of the peers those views expose —
//!   and contributes its local mean-RTT score; the rank is the fixed
//!   point of the gossip sort over those local scores. O(n · view ·
//!   rounds), no global sweep.
//!
//! The decentralized sources are deterministic given their seed and are
//! pinned by regression tests; the oracle stays byte-identical to the
//! historical behaviour.

use crate::monitor::RuntimeMonitor;
use egm_membership::{bootstrap_views, PartialView, ViewConfig};
use egm_simnet::NodeId;
use egm_topology::RoutedModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the best set is computed from the environment — the knob that
/// trades ranking fidelity against the cost of obtaining it.
///
/// Selected per scenario (`egm_workload::Scenario::rank_source`); see the
/// module docs for the three regimes. `Oracle` is the historical default;
/// the scale presets use `GossipSorted` (decentralized, no O(n²) sweep)
/// once its hub-choice overlap with the oracle was measured ≥ 0.8 at
/// 1k–10k nodes (`experiments::rank_quality`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RankSource {
    /// Exact centrality over the model file (O(n²) global sweep).
    #[default]
    Oracle,
    /// Per-node sampled centrality: `samples_per_node` random-peer probes
    /// each (O(n·k), uses global membership but only local measurements).
    Sampled {
        /// Latency probes per node.
        samples_per_node: usize,
    },
    /// Gossip-sorted ranking over the protocol's own machinery: shuffled
    /// partial views + runtime RTT monitors, `rounds` measure/shuffle
    /// cycles (O(n · view · rounds), purely local information).
    GossipSorted {
        /// Measure/shuffle cycles before the rank is read off.
        rounds: usize,
    },
}

impl RankSource {
    /// Short label for tables and bench records (`"oracle"`,
    /// `"sampled k=8"`, `"gossip r=5"`).
    pub fn label(&self) -> String {
        match self {
            RankSource::Oracle => "oracle".to_string(),
            RankSource::Sampled { samples_per_node } => format!("sampled k={samples_per_node}"),
            RankSource::GossipSorted { rounds } => format!("gossip r={rounds}"),
        }
    }

    /// Whether this is the exact oracle ranking.
    pub fn is_oracle(&self) -> bool {
        matches!(self, RankSource::Oracle)
    }

    /// Computes the best set over `model`.
    ///
    /// `view` configures the overlay views the gossip-sorted source
    /// bootstraps (pass the scenario's `protocol.view` so the ranking
    /// sees the same overlay parameters as the run); `seed` drives the
    /// decentralized sources' private RNG stream — the oracle consumes no
    /// randomness, so oracle results are independent of it.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the underlying constructor
    /// ([`BestSet::by_centrality`], [`BestSet::by_sampled_centrality`] or
    /// [`BestSet::by_gossip_sorted`]).
    pub fn best_set(
        &self,
        model: &RoutedModel,
        fraction: f64,
        view: &ViewConfig,
        seed: u64,
    ) -> BestSet {
        match self {
            RankSource::Oracle => BestSet::by_centrality(model, fraction),
            RankSource::Sampled { samples_per_node } => {
                let mut rng = egm_rng::Rng::seed_from_u64(seed);
                BestSet::by_sampled_centrality(model, fraction, *samples_per_node, &mut rng)
            }
            RankSource::GossipSorted { rounds } => {
                let mut rng = egm_rng::Rng::seed_from_u64(seed);
                BestSet::by_gossip_sorted(model, fraction, view, *rounds, &mut rng)
            }
        }
    }

    /// Computes the best set over `model` with a churn mask: nodes with
    /// `down[i] == true` take no part in the ranking — they contribute no
    /// measurements, are invisible to live nodes' probes, and are
    /// excluded from hub candidacy. The hub count is `fraction` of the
    /// live population. This is the online re-rank entry point: the
    /// runner calls it mid-warm-up with the currently-down node set.
    ///
    /// With an all-false mask every source matches
    /// [`RankSource::best_set`] byte for byte.
    ///
    /// # Panics
    ///
    /// Panics under [`RankSource::best_set`]'s conditions, if the mask
    /// length differs from the client count, or if every node is down.
    pub fn best_set_excluding(
        &self,
        model: &RoutedModel,
        fraction: f64,
        view: &ViewConfig,
        seed: u64,
        down: &[bool],
    ) -> BestSet {
        let n = model.client_count();
        assert_eq!(down.len(), n, "one down flag per client");
        match self {
            RankSource::Oracle => {
                // Exact centrality over the live sub-population.
                let live: Vec<usize> = (0..n).filter(|&i| !down[i]).collect();
                assert!(live.len() >= 2, "need at least two live clients to rank");
                let scores: Vec<f64> = (0..n)
                    .map(|i| {
                        if down[i] {
                            return f64::MAX;
                        }
                        let total: f64 = live
                            .iter()
                            .filter(|&&j| j != i)
                            .map(|&j| model.latency_ms(i, j))
                            .sum();
                        total / (live.len() - 1) as f64
                    })
                    .collect();
                BestSet::from_scores_excluding(&scores, fraction, down)
            }
            RankSource::Sampled { samples_per_node } => {
                // Sampled centrality over live peers only: each live node
                // probes `samples_per_node` distinct live peers. Down
                // nodes consume no RNG draws (they are not running).
                assert!(*samples_per_node > 0, "need at least one sample per node");
                let live: Vec<usize> = (0..n).filter(|&i| !down[i]).collect();
                assert!(live.len() >= 2, "need at least two live clients to rank");
                let mut rng = egm_rng::Rng::seed_from_u64(seed);
                let mut scores = vec![f64::MAX; n];
                for (li, &i) in live.iter().enumerate() {
                    let k = (*samples_per_node).min(live.len() - 1);
                    let mut total = 0.0;
                    for idx in egm_rng::sample::distinct_indices(&mut rng, live.len() - 1, k) {
                        let peer = live[if idx >= li { idx + 1 } else { idx }];
                        total += model.latency_ms(i, peer);
                    }
                    scores[i] = total / k as f64;
                }
                BestSet::from_scores_excluding(&scores, fraction, down)
            }
            RankSource::GossipSorted { rounds } => {
                let mut rng = egm_rng::Rng::seed_from_u64(seed);
                BestSet::by_gossip_sorted_excluding(model, fraction, view, *rounds, down, &mut rng)
            }
        }
    }
}

/// The shared set of best nodes (hubs).
///
/// # Examples
///
/// ```
/// use egm_core::rank::BestSet;
/// use egm_simnet::NodeId;
///
/// let best = BestSet::from_ids(10, &[NodeId(2), NodeId(7)]);
/// assert!(best.is_best(NodeId(2)));
/// assert!(!best.is_best(NodeId(3)));
/// assert_eq!(best.best_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestSet {
    flags: Vec<bool>,
}

impl BestSet {
    /// Shuffle ticks between two gossip-sorted measurement rounds
    /// ([`BestSet::by_gossip_sorted`]): with the default shuffle size of
    /// 5 on a 15-entry view, three ticks churn most of the view, so each
    /// round contributes close to `view.capacity` fresh latency samples.
    pub const SHUFFLES_PER_ROUND: usize = 3;

    /// No best nodes at all (degenerates Ranked to pure lazy push).
    pub fn none(n: usize) -> Self {
        BestSet {
            flags: vec![false; n],
        }
    }

    /// Marks an explicit list of node ids as best.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn from_ids(n: usize, ids: &[NodeId]) -> Self {
        let mut flags = vec![false; n];
        for &id in ids {
            assert!(id.index() < n, "best node {id} out of range");
            flags[id.index()] = true;
        }
        BestSet { flags }
    }

    /// Ranks nodes by *latency centrality* over the model file: a node's
    /// score is its mean one-way latency to every other node, and the
    /// lowest-scoring `fraction` become best nodes (at least one).
    ///
    /// This is the oracle equivalent of the gossip-sorted ranking the
    /// paper refers to; the Noise experiments (§6.5) then degrade it
    /// gracefully.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` or the model has fewer
    /// than two clients.
    pub fn by_centrality(model: &RoutedModel, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = model.client_count();
        assert!(n >= 2, "need at least two clients to rank");
        let mut scored: Vec<(f64, usize)> = (0..n)
            .map(|i| {
                let total: f64 = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| model.latency_ms(i, j))
                    .sum();
                (total / (n - 1) as f64, i)
            })
            .collect();
        scored.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let k = ((n as f64 * fraction).round() as usize).clamp(1, n);
        let mut flags = vec![false; n];
        for &(_, i) in &scored[..k] {
            flags[i] = true;
        }
        BestSet { flags }
    }

    /// Ranks nodes by externally supplied scores (lower = better): the
    /// lowest-scoring `fraction` become best nodes (at least one).
    ///
    /// This is the entry point for decentralized rankings, where each node
    /// contributes its own locally measured score (e.g. mean RTT to its
    /// view, gossip-aggregated as in the sorting protocol the paper cites
    /// \[11\]).
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty, contains non-finite values, or
    /// `fraction` is outside `(0, 1]`.
    pub fn from_scores(scores: &[f64], fraction: f64) -> Self {
        assert!(!scores.is_empty(), "no scores to rank");
        assert!(scores.iter().all(|s| s.is_finite()), "non-finite score");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = scores.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        let k = ((n as f64 * fraction).round() as usize).clamp(1, n);
        let mut flags = vec![false; n];
        for &i in &order[..k] {
            flags[i] = true;
        }
        BestSet { flags }
    }

    /// [`BestSet::from_scores`] restricted to *live* nodes: entries with
    /// `down[i] == true` are excluded from hub candidacy entirely, and
    /// the hub count is `fraction` of the live population (at least one),
    /// so the hub share among live nodes is preserved as churn removes
    /// candidates. Scores of down nodes are ignored (they may hold any
    /// value, finite or not).
    ///
    /// This is the re-rank primitive of online re-ranking under churn:
    /// the runner recomputes hubs mid-warm-up with the currently-down
    /// node set masked out.
    ///
    /// # Panics
    ///
    /// Panics if `scores` and `down` differ in length, every node is
    /// down, a live score is non-finite, or `fraction` is outside
    /// `(0, 1]`.
    pub fn from_scores_excluding(scores: &[f64], fraction: f64, down: &[bool]) -> Self {
        assert_eq!(scores.len(), down.len(), "one down flag per score");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = scores.len();
        let mut order: Vec<usize> = (0..n).filter(|&i| !down[i]).collect();
        assert!(!order.is_empty(), "cannot rank with every node down");
        assert!(
            order.iter().all(|&i| scores[i].is_finite()),
            "non-finite score"
        );
        let live = order.len();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        let k = ((live as f64 * fraction).round() as usize).clamp(1, live);
        let mut flags = vec![false; n];
        for &i in &order[..k] {
            flags[i] = true;
        }
        BestSet { flags }
    }

    /// Decentralized approximation of [`BestSet::by_centrality`]: each
    /// node estimates its own centrality as the mean latency to
    /// `samples_per_node` random peers (what a local latency monitor
    /// measures against the node's shuffled views), and the global rank is
    /// assembled from those noisy local scores.
    ///
    /// With few samples the ranking is approximate — exactly the regime
    /// the paper's noise experiments (§6.5) show the protocol tolerates.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_node == 0`, `fraction` is out of range, or
    /// the model has fewer than two clients.
    pub fn by_sampled_centrality(
        model: &RoutedModel,
        fraction: f64,
        samples_per_node: usize,
        rng: &mut egm_rng::Rng,
    ) -> Self {
        assert!(samples_per_node > 0, "need at least one sample per node");
        let n = model.client_count();
        assert!(n >= 2, "need at least two clients to rank");
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let k = samples_per_node.min(n - 1);
                let mut total = 0.0;
                for idx in egm_rng::sample::distinct_indices(rng, n - 1, k) {
                    let peer = if idx >= i { idx + 1 } else { idx };
                    total += model.latency_ms(i, peer);
                }
                total / k as f64
            })
            .collect();
        BestSet::from_scores(&scores, fraction)
    }

    /// Decentralized gossip-sorted ranking (the paper's reference \[11\]),
    /// run to its fixed point over the protocol's own machinery instead
    /// of an offline model sweep.
    ///
    /// Every node starts from a bootstrapped [`PartialView`] (the same
    /// overlay state a run begins with) and hosts a [`RuntimeMonitor`].
    /// Each of the `rounds` cycles then does what the running protocol's
    /// monitor/scheduler layer does over time:
    ///
    /// 1. **measure** — the node pings every peer currently in its view;
    ///    the observed RTT (`latency(i→p) + latency(p→i)`, exactly what a
    ///    ping/pong pair would traverse on the simulated network) feeds
    ///    the monitor's EWMA;
    /// 2. **shuffle** — the overlay performs
    ///    [`SHUFFLES_PER_ROUND`](Self::SHUFFLES_PER_ROUND) Cyclon
    ///    exchange ticks ([`PartialView::start_shuffle`]) before the next
    ///    measurement, so consecutive rounds observe mostly disjoint
    ///    slices of the overlay — modelling a ping interval a few times
    ///    the shuffle interval, as in the continuously churning NeEM
    ///    overlay of §5.2.
    ///
    /// A node's score is its mean smoothed one-way delay over every peer
    /// it observed ([`RuntimeMonitor::mean_one_way_ms`]); the global rank
    /// is assembled from those purely local scores. Cost is
    /// O(n · view · rounds) — at 10 000 nodes with the default view of 15
    /// and 6 rounds that is ~10⁶ latency lookups, versus 10⁸ for the
    /// O(n²) oracle sweep.
    ///
    /// Determinism: the result is a pure function of `(model, fraction,
    /// view, rounds, rng seed)`; a regression test pins it.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`, `fraction` is outside `(0, 1]`, or the
    /// model has fewer than two clients.
    pub fn by_gossip_sorted(
        model: &RoutedModel,
        fraction: f64,
        view: &ViewConfig,
        rounds: usize,
        rng: &mut egm_rng::Rng,
    ) -> Self {
        let down = vec![false; model.client_count()];
        Self::by_gossip_sorted_excluding(model, fraction, view, rounds, &down, rng)
    }

    /// [`BestSet::by_gossip_sorted`] with a churn mask: nodes with
    /// `down[i] == true` are failed — they send no pings, answer none
    /// (no pong, so live nodes record no RTT against them), and neither
    /// initiate nor answer shuffles. Down nodes are excluded from hub
    /// candidacy and the hub count is `fraction` of the live population
    /// (see [`BestSet::from_scores_excluding`]). A live node whose every
    /// observed peer is down scores `f64::MAX` and ranks last.
    ///
    /// With an all-false mask this is exactly [`BestSet::by_gossip_sorted`]
    /// — same RNG draws, byte-identical result (the pinned determinism
    /// test covers the delegation).
    ///
    /// # Panics
    ///
    /// Panics under [`BestSet::by_gossip_sorted`]'s conditions, if the
    /// mask length differs from the client count, or if every node is
    /// down.
    pub fn by_gossip_sorted_excluding(
        model: &RoutedModel,
        fraction: f64,
        view: &ViewConfig,
        rounds: usize,
        down: &[bool],
        rng: &mut egm_rng::Rng,
    ) -> Self {
        assert!(rounds > 0, "need at least one gossip round");
        let n = model.client_count();
        assert!(n >= 2, "need at least two clients to rank");
        assert_eq!(down.len(), n, "one down flag per client");
        let mut views: Vec<PartialView> = bootstrap_views(n, view, rng);
        let mut monitors: Vec<RuntimeMonitor> = vec![RuntimeMonitor::new(); n];
        for round in 0..rounds {
            // Measure: ping every *live* peer the current view exposes
            // (a down peer never pongs, so no RTT sample lands).
            for (i, view) in views.iter().enumerate() {
                if down[i] {
                    continue;
                }
                for &p in view.peers() {
                    if down[p.index()] {
                        continue;
                    }
                    let rtt = model.latency_ms(i, p.index()) + model.latency_ms(p.index(), i);
                    monitors[i].record_rtt(p, rtt);
                }
            }
            // Shuffle: several Cyclon exchange ticks per node, in node
            // order (the simulator serializes concurrent shuffles the
            // same way), so the next measurement sees a mostly fresh
            // view instead of re-pinging known peers. Down nodes neither
            // initiate nor answer.
            if round + 1 < rounds {
                for _ in 0..Self::SHUFFLES_PER_ROUND {
                    for i in 0..n {
                        if down[i] {
                            continue;
                        }
                        let Some((partner, request)) = views[i].start_shuffle(rng) else {
                            continue;
                        };
                        if down[partner.index()] {
                            continue; // request vanishes; no reply
                        }
                        let (initiator, target) = pair_mut(&mut views, i, partner.index());
                        if let Some((back, reply)) = target.handle_shuffle(rng, NodeId(i), request)
                        {
                            debug_assert_eq!(back, NodeId(i));
                            initiator.handle_shuffle(rng, partner, reply);
                        }
                    }
                }
            }
        }
        let scores: Vec<f64> = monitors
            .iter()
            .map(|m| m.mean_one_way_ms().unwrap_or(f64::MAX))
            .collect();
        BestSet::from_scores_excluding(&scores, fraction, down)
    }

    /// Fraction of this set's best nodes that are also best in `other`
    /// (1.0 = identical hub choice). Useful to quantify how close an
    /// estimated ranking is to the oracle.
    ///
    /// # Panics
    ///
    /// Panics if the sets cover different node counts or this set has no
    /// best nodes.
    pub fn overlap(&self, other: &BestSet) -> f64 {
        assert_eq!(self.len(), other.len(), "sets must cover the same nodes");
        let mine = self.best_ids();
        assert!(!mine.is_empty(), "no best nodes to compare");
        let shared = mine.iter().filter(|&&id| other.is_best(id)).count();
        shared as f64 / mine.len() as f64
    }

    /// Whether `node` is a best node.
    pub fn is_best(&self, node: NodeId) -> bool {
        self.flags.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of nodes covered by this set.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the set covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Number of best nodes.
    pub fn best_count(&self) -> usize {
        self.flags.iter().filter(|&&b| b).count()
    }

    /// Ids of all best nodes, ascending.
    pub fn best_ids(&self) -> Vec<NodeId> {
        self.flags
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(NodeId(i)))
            .collect()
    }

    /// Ids of all regular (non-best) nodes, ascending — the paper's "low"
    /// population (80 % of nodes in §6.4).
    pub fn regular_ids(&self) -> Vec<NodeId> {
        self.flags
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (!b).then_some(NodeId(i)))
            .collect()
    }

    /// Wraps the set for cheap sharing across nodes.
    pub fn shared(self) -> Arc<BestSet> {
        Arc::new(self)
    }
}

/// Mutable references to two distinct slice elements.
fn pair_mut<T>(items: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    debug_assert_ne!(i, j, "a view never contains its owner");
    if i < j {
        let (lo, hi) = items.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = items.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::BestSet;
    use egm_simnet::NodeId;
    use egm_topology::RoutedModel;

    #[test]
    fn explicit_set_membership() {
        let best = BestSet::from_ids(5, &[NodeId(0), NodeId(4)]);
        assert!(best.is_best(NodeId(0)));
        assert!(best.is_best(NodeId(4)));
        assert!(!best.is_best(NodeId(2)));
        assert!(!best.is_best(NodeId(99)), "out of range is not best");
        assert_eq!(best.best_ids(), vec![NodeId(0), NodeId(4)]);
        assert_eq!(best.regular_ids().len(), 3);
        assert_eq!(best.len(), 5);
    }

    #[test]
    fn centrality_prefers_central_nodes() {
        // Planar model: central nodes have lower mean distance=latency.
        let model = RoutedModel::planar_synthetic(50, 100.0, 1.0, 9);
        let best = BestSet::by_centrality(&model, 0.2);
        assert_eq!(best.best_count(), 10);
        // Every best node's mean latency must not exceed any regular
        // node's mean latency.
        let mean = |i: usize| -> f64 {
            (0..50)
                .filter(|&j| j != i)
                .map(|j| model.latency_ms(i, j))
                .sum::<f64>()
                / 49.0
        };
        let worst_best = best
            .best_ids()
            .iter()
            .map(|&b| mean(b.index()))
            .fold(0.0f64, f64::max);
        let best_regular = best
            .regular_ids()
            .iter()
            .map(|&r| mean(r.index()))
            .fold(f64::INFINITY, f64::min);
        assert!(worst_best <= best_regular + 1e-9);
    }

    #[test]
    fn centrality_selects_at_least_one() {
        let model = RoutedModel::uniform_synthetic(3, 1.0, 2.0, 1);
        let best = BestSet::by_centrality(&model, 0.01);
        assert_eq!(best.best_count(), 1);
    }

    #[test]
    fn none_has_no_best_nodes() {
        let best = BestSet::none(4);
        assert_eq!(best.best_count(), 0);
        assert!(!best.is_empty());
        assert_eq!(best.regular_ids().len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_panics() {
        let _ = BestSet::from_ids(2, &[NodeId(5)]);
    }

    #[test]
    fn from_scores_picks_lowest() {
        let best = BestSet::from_scores(&[5.0, 1.0, 3.0, 2.0], 0.5);
        assert_eq!(best.best_ids(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn from_scores_breaks_ties_deterministically() {
        let a = BestSet::from_scores(&[1.0, 1.0, 1.0, 1.0], 0.25);
        let b = BestSet::from_scores(&[1.0, 1.0, 1.0, 1.0], 0.25);
        assert_eq!(a, b);
        assert_eq!(a.best_count(), 1);
    }

    #[test]
    fn sampled_centrality_approximates_oracle() {
        use egm_rng::Rng;
        let model = RoutedModel::planar_synthetic(60, 100.0, 1.0, 21);
        let oracle = BestSet::by_centrality(&model, 0.2);
        let mut rng = Rng::seed_from_u64(3);
        // Dense sampling: near-perfect agreement.
        let dense = BestSet::by_sampled_centrality(&model, 0.2, 40, &mut rng);
        assert!(
            dense.overlap(&oracle) >= 0.8,
            "dense overlap {}",
            dense.overlap(&oracle)
        );
        // Sparse sampling: still much better than chance (0.2).
        let sparse = BestSet::by_sampled_centrality(&model, 0.2, 4, &mut rng);
        assert!(
            sparse.overlap(&oracle) > 0.35,
            "sparse overlap {}",
            sparse.overlap(&oracle)
        );
    }

    #[test]
    fn overlap_bounds() {
        let a = BestSet::from_ids(6, &[NodeId(0), NodeId(1)]);
        let b = BestSet::from_ids(6, &[NodeId(1), NodeId(2)]);
        assert_eq!(a.overlap(&a), 1.0);
        assert_eq!(a.overlap(&b), 0.5);
        let c = BestSet::from_ids(6, &[NodeId(4), NodeId(5)]);
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_scores_rejects_nan() {
        let _ = BestSet::from_scores(&[1.0, f64::NAN], 0.5);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_scores_rejects_infinity() {
        let _ = BestSet::from_scores(&[1.0, f64::INFINITY], 0.5);
    }

    #[test]
    #[should_panic(expected = "no scores")]
    fn from_scores_rejects_empty() {
        let _ = BestSet::from_scores(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn from_scores_rejects_fraction_zero() {
        let _ = BestSet::from_scores(&[1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn from_scores_rejects_fraction_above_one() {
        let _ = BestSet::from_scores(&[1.0, 2.0], 1.1);
    }

    #[test]
    fn from_scores_fraction_one_selects_everyone() {
        let best = BestSet::from_scores(&[3.0, 1.0, 2.0], 1.0);
        assert_eq!(best.best_count(), 3);
        assert!(best.regular_ids().is_empty());
    }

    #[test]
    fn from_scores_tie_at_fraction_boundary_is_index_ordered() {
        // Four equal scores, fraction 0.5: exactly two slots, filled by
        // the lowest indices — the documented deterministic tie-break.
        let best = BestSet::from_scores(&[7.0, 7.0, 7.0, 7.0], 0.5);
        assert_eq!(best.best_ids(), vec![NodeId(0), NodeId(1)]);
        // A lower score beats an equal-scored lower index.
        let best = BestSet::from_scores(&[7.0, 7.0, 1.0, 7.0], 0.5);
        assert_eq!(best.best_ids(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn from_scores_rounds_fraction_to_nearest_count() {
        // 3 nodes × 0.5 → 1.5 slots, rounds to 2.
        let best = BestSet::from_scores(&[1.0, 2.0, 3.0], 0.5);
        assert_eq!(best.best_count(), 2);
        // Tiny fractions clamp up to at least one hub.
        let best = BestSet::from_scores(&[1.0, 2.0, 3.0], 0.01);
        assert_eq!(best.best_count(), 1);
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn overlap_rejects_mismatched_sizes() {
        let a = BestSet::from_ids(4, &[NodeId(0)]);
        let b = BestSet::from_ids(5, &[NodeId(0)]);
        let _ = a.overlap(&b);
    }

    #[test]
    #[should_panic(expected = "no best nodes")]
    fn overlap_rejects_empty_best_set() {
        let a = BestSet::none(4);
        let b = BestSet::from_ids(4, &[NodeId(0)]);
        let _ = a.overlap(&b);
    }

    #[test]
    fn gossip_sorted_approximates_oracle() {
        use egm_membership::ViewConfig;
        use egm_rng::Rng;
        let model = RoutedModel::planar_synthetic(80, 100.0, 1.0, 17);
        let oracle = BestSet::by_centrality(&model, 0.2);
        let mut rng = Rng::seed_from_u64(5);
        let gossip = BestSet::by_gossip_sorted(&model, 0.2, &ViewConfig::default(), 6, &mut rng);
        assert_eq!(gossip.best_count(), oracle.best_count());
        assert!(
            gossip.overlap(&oracle) >= 0.7,
            "gossip overlap {}",
            gossip.overlap(&oracle)
        );
        // More rounds observe more of the overlay and match closer than a
        // single unshuffled round.
        let mut rng = Rng::seed_from_u64(5);
        let one_round = BestSet::by_gossip_sorted(&model, 0.2, &ViewConfig::default(), 1, &mut rng);
        assert!(gossip.overlap(&oracle) >= one_round.overlap(&oracle));
    }

    #[test]
    fn gossip_sorted_is_deterministic_and_pinned() {
        use egm_membership::ViewConfig;
        use egm_rng::Rng;
        let model = RoutedModel::planar_synthetic(24, 100.0, 1.0, 9);
        let run = || {
            let mut rng = Rng::seed_from_u64(11);
            BestSet::by_gossip_sorted(&model, 0.25, &ViewConfig::default(), 4, &mut rng)
        };
        let a = run();
        assert_eq!(a, run(), "same seed must reproduce the same rank");
        // Pin the exact hub choice: any change to the view bootstrap, the
        // shuffle exchange, the RTT feed or the EWMA shows up here as a
        // deliberate, reviewable diff.
        assert_eq!(
            a.best_ids(),
            vec![
                NodeId(3),
                NodeId(10),
                NodeId(11),
                NodeId(17),
                NodeId(19),
                NodeId(22)
            ]
        );
    }

    #[test]
    fn from_scores_excluding_masks_down_nodes() {
        // Node 1 has the best score but is down: it must not rank. Hub
        // count follows the live population: 3 live × 0.5 rounds to 2.
        let best = BestSet::from_scores_excluding(
            &[5.0, 1.0, 3.0, 2.0],
            0.5,
            &[false, true, false, false],
        );
        assert_eq!(best.best_ids(), vec![NodeId(2), NodeId(3)]);
        // Down scores may be garbage without tripping the finite check.
        let best = BestSet::from_scores_excluding(
            &[5.0, f64::NAN, 3.0, 2.0],
            0.5,
            &[false, true, false, false],
        );
        assert!(!best.is_best(NodeId(1)));
    }

    #[test]
    fn from_scores_excluding_matches_plain_with_empty_mask() {
        let scores = [5.0, 1.0, 3.0, 2.0];
        assert_eq!(
            BestSet::from_scores_excluding(&scores, 0.5, &[false; 4]),
            BestSet::from_scores(&scores, 0.5)
        );
    }

    #[test]
    #[should_panic(expected = "every node down")]
    fn from_scores_excluding_rejects_total_outage() {
        let _ = BestSet::from_scores_excluding(&[1.0, 2.0], 0.5, &[true, true]);
    }

    #[test]
    fn excluding_sources_match_plain_with_empty_mask() {
        use super::RankSource;
        use egm_membership::ViewConfig;
        let model = RoutedModel::planar_synthetic(40, 100.0, 1.0, 13);
        let view = ViewConfig::default();
        let down = vec![false; 40];
        for source in [
            RankSource::Oracle,
            RankSource::Sampled {
                samples_per_node: 16,
            },
            RankSource::GossipSorted { rounds: 4 },
        ] {
            assert_eq!(
                source.best_set_excluding(&model, 0.2, &view, 7, &down),
                source.best_set(&model, 0.2, &view, 7),
                "{} must be byte-identical with an all-false mask",
                source.label()
            );
        }
    }

    #[test]
    fn excluding_sources_never_rank_down_nodes() {
        use super::RankSource;
        use egm_membership::ViewConfig;
        let model = RoutedModel::planar_synthetic(40, 100.0, 1.0, 13);
        let view = ViewConfig::default();
        // Fail the oracle's entire hub set; the re-rank must promote
        // replacements from the live population.
        let oracle = RankSource::Oracle.best_set(&model, 0.2, &view, 1);
        let mut down = vec![false; 40];
        for id in oracle.best_ids() {
            down[id.index()] = true;
        }
        let live = down.iter().filter(|&&d| !d).count();
        for source in [
            RankSource::Oracle,
            RankSource::Sampled {
                samples_per_node: 16,
            },
            RankSource::GossipSorted { rounds: 4 },
        ] {
            let set = source.best_set_excluding(&model, 0.2, &view, 7, &down);
            for id in set.best_ids() {
                assert!(!down[id.index()], "{}: down node ranked", source.label());
            }
            assert_eq!(set.best_count(), ((live as f64) * 0.2).round() as usize);
            // Deterministic: same inputs, same hubs.
            assert_eq!(set, source.best_set_excluding(&model, 0.2, &view, 7, &down));
        }
    }

    #[test]
    #[should_panic(expected = "at least one gossip round")]
    fn gossip_sorted_rejects_zero_rounds() {
        use egm_membership::ViewConfig;
        use egm_rng::Rng;
        let model = RoutedModel::uniform_synthetic(4, 1.0, 2.0, 1);
        let mut rng = Rng::seed_from_u64(1);
        let _ = BestSet::by_gossip_sorted(&model, 0.5, &ViewConfig::default(), 0, &mut rng);
    }

    #[test]
    fn rank_source_labels_and_dispatch() {
        use super::RankSource;
        use egm_membership::ViewConfig;
        assert_eq!(RankSource::Oracle.label(), "oracle");
        assert!(RankSource::Oracle.is_oracle());
        assert_eq!(
            RankSource::Sampled {
                samples_per_node: 8
            }
            .label(),
            "sampled k=8"
        );
        assert_eq!(RankSource::GossipSorted { rounds: 5 }.label(), "gossip r=5");
        assert_eq!(RankSource::default(), RankSource::Oracle);

        let model = RoutedModel::planar_synthetic(40, 100.0, 1.0, 13);
        let view = ViewConfig::default();
        let oracle = RankSource::Oracle.best_set(&model, 0.2, &view, 1);
        assert_eq!(oracle, BestSet::by_centrality(&model, 0.2));
        // Oracle ignores the seed entirely.
        assert_eq!(oracle, RankSource::Oracle.best_set(&model, 0.2, &view, 999));
        for source in [
            RankSource::Sampled {
                samples_per_node: 16,
            },
            RankSource::GossipSorted { rounds: 4 },
        ] {
            let set = source.best_set(&model, 0.2, &view, 7);
            assert_eq!(set.best_count(), oracle.best_count());
            // Same seed reproduces; the sources are deterministic.
            assert_eq!(set, source.best_set(&model, 0.2, &view, 7));
        }
    }
}
