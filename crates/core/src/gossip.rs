//! The push gossip protocol layer — Fig. 2 of the paper, verbatim.
//!
//! The gossip layer is deliberately oblivious to the Payload Scheduler
//! beneath it (§3.1): it emits `L-Send(i, d, r, p)` intents and receives
//! `L-Receive(i, d, r, s)` upcalls, whether payloads travelled eagerly or
//! lazily. This module is a pure state machine — the embedding node turns
//! the returned [`LSend`] intents into wire messages through the
//! scheduler.

use crate::arena::MsgArena;
use crate::config::ProtocolConfig;
use crate::id::MsgId;
use crate::msg::Payload;
use egm_membership::PartialView;
use egm_rng::Rng;
use egm_simnet::NodeId;

/// An `L-Send(i, d, r, p)` intent produced by the gossip layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LSend {
    /// Message identifier `i`.
    pub id: MsgId,
    /// Payload `d`.
    pub payload: Payload,
    /// Relay round `r` the message will travel at.
    pub round: u32,
    /// Target peer `p` from the peer sampling service.
    pub to: NodeId,
}

/// Result of handing a message to the gossip layer: deliver locally at
/// `round`, then perform the `sends`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipStep {
    /// The delivered message identifier.
    pub id: MsgId,
    /// The delivered payload.
    pub payload: Payload,
    /// Round at which the payload arrived (0 for own multicasts).
    pub round: u32,
    /// Forwarding intents (empty once `round >= t`).
    pub sends: Vec<LSend>,
}

/// The basic gossip protocol of Fig. 2.
///
/// The known-message set `K` lives in the node's [`MsgArena`] (alongside
/// all other per-message state), so the layer itself holds only the
/// configuration and its scratch buffers.
///
/// # Examples
///
/// ```
/// use egm_core::arena::MsgArena;
/// use egm_core::gossip::GossipLayer;
/// use egm_core::{Payload, ProtocolConfig};
/// use egm_membership::{PartialView, ViewConfig};
/// use egm_rng::Rng;
/// use egm_simnet::NodeId;
///
/// let config = ProtocolConfig::default().with_fanout(2);
/// let mut gossip = GossipLayer::new(&config);
/// let mut arena = MsgArena::new(64, 64, false);
/// let mut view = PartialView::new(NodeId(0), ViewConfig::default());
/// view.insert(NodeId(1));
/// view.insert(NodeId(2));
/// let mut rng = Rng::seed_from_u64(1);
///
/// let (_slot, step) = gossip.multicast(&mut rng, &view, &mut arena, Payload { seq: 0, bytes: 256 });
/// assert_eq!(step.round, 0);
/// assert_eq!(step.sends.len(), 2);
/// assert!(step.sends.iter().all(|s| s.round == 1));
/// ```
#[derive(Debug)]
pub struct GossipLayer {
    fanout: usize,
    rounds: u32,
    /// Scratch for peer-sample indices, reused across forwards.
    scratch_idx: Vec<usize>,
    /// Scratch peer sample handed back by the view.
    scratch_peers: Vec<NodeId>,
    /// Recycled `sends` buffer: the embedding node hands the drained
    /// vector back through [`GossipLayer::recycle`], making steady-state
    /// forwarding allocation-free (one buffer suffices because exactly
    /// one [`GossipStep`] is alive per node at a time).
    spare_sends: Vec<LSend>,
}

impl GossipLayer {
    /// Creates the layer from the node configuration.
    pub fn new(config: &ProtocolConfig) -> Self {
        GossipLayer {
            fanout: config.fanout,
            rounds: config.rounds,
            scratch_idx: Vec::new(),
            scratch_peers: Vec::new(),
            spare_sends: Vec::new(),
        }
    }

    /// Returns a drained [`GossipStep::sends`] buffer to the layer's pool
    /// so the next forward reuses its allocation. Buffers from other
    /// layers are accepted too (capacity is capacity).
    pub fn recycle(&mut self, mut sends: Vec<LSend>) {
        sends.clear();
        if sends.capacity() > self.spare_sends.capacity() {
            self.spare_sends = sends;
        }
    }

    /// `Multicast(d)` (line 3): mint an id and forward at round 0.
    /// Returns the minted message's arena slot alongside the step.
    pub fn multicast(
        &mut self,
        rng: &mut Rng,
        view: &PartialView,
        arena: &mut MsgArena,
        payload: Payload,
    ) -> (u32, GossipStep) {
        let id = MsgId::generate(rng);
        let slot = arena.intern(id);
        let step = self
            .forward(rng, view, arena, slot, id, payload, 0)
            .expect("fresh ids are never duplicates");
        (slot, step)
    }

    /// `L-Receive(i, d, r, s)` (line 12): deliver-and-forward unless the
    /// message is a duplicate, in which case `None` is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn on_l_receive(
        &mut self,
        rng: &mut Rng,
        view: &PartialView,
        arena: &mut MsgArena,
        slot: u32,
        id: MsgId,
        payload: Payload,
        round: u32,
    ) -> Option<GossipStep> {
        self.forward(rng, view, arena, slot, id, payload, round)
    }

    /// `Forward(i, d, r)` (line 5): deliver, remember, and relay to `f`
    /// sampled peers at round `r + 1` while `r < t`.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &mut self,
        rng: &mut Rng,
        view: &PartialView,
        arena: &mut MsgArena,
        slot: u32,
        id: MsgId,
        payload: Payload,
        round: u32,
    ) -> Option<GossipStep> {
        if !arena.mark_known(slot) {
            return None; // line 13: i ∈ K
        }
        let sends = if round < self.rounds {
            // line 9: PeerSample(f), drawn into reusable scratch buffers;
            // the sends vector itself is recycled through
            // [`GossipLayer::recycle`], so steady-state forwards allocate
            // nothing.
            view.sample_into(
                rng,
                self.fanout,
                &mut self.scratch_idx,
                &mut self.scratch_peers,
            );
            let mut sends = std::mem::take(&mut self.spare_sends);
            sends.extend(self.scratch_peers.iter().map(|&to| LSend {
                id,
                payload,
                round: round + 1,
                to,
            }));
            sends
        } else {
            Vec::new()
        };
        Some(GossipStep {
            id,
            payload,
            round,
            sends,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::GossipLayer;
    use crate::arena::MsgArena;
    use crate::config::ProtocolConfig;
    use crate::id::MsgId;
    use crate::msg::Payload;
    use egm_membership::{PartialView, ViewConfig};
    use egm_rng::Rng;
    use egm_simnet::NodeId;
    use std::collections::HashSet;

    fn setup(fanout: usize, peers: usize) -> (GossipLayer, MsgArena, PartialView, Rng) {
        let config = ProtocolConfig::default().with_fanout(fanout).with_rounds(3);
        let gossip = GossipLayer::new(&config);
        let arena = MsgArena::new(config.known_capacity, config.cache_capacity, false);
        let mut view = PartialView::new(
            NodeId(0),
            ViewConfig {
                capacity: 15,
                shuffle_size: 5,
            },
        );
        for i in 1..=peers {
            view.insert(NodeId(i));
        }
        (gossip, arena, view, Rng::seed_from_u64(9))
    }

    fn payload() -> Payload {
        Payload { seq: 7, bytes: 256 }
    }

    #[test]
    fn multicast_fans_out_to_f_distinct_peers() {
        let (mut gossip, mut arena, view, mut rng) = setup(4, 10);
        let (_slot, step) = gossip.multicast(&mut rng, &view, &mut arena, payload());
        assert_eq!(step.sends.len(), 4);
        let targets: HashSet<_> = step.sends.iter().map(|s| s.to).collect();
        assert_eq!(targets.len(), 4, "targets must be distinct");
        assert!(step.sends.iter().all(|s| s.round == 1 && s.id == step.id));
        assert!(arena.knows(&step.id));
    }

    #[test]
    fn duplicates_are_dropped() {
        let (mut gossip, mut arena, view, mut rng) = setup(3, 5);
        let id = MsgId::from_raw(42);
        let slot = arena.intern(id);
        let first = gossip.on_l_receive(&mut rng, &view, &mut arena, slot, id, payload(), 1);
        assert!(first.is_some());
        let second = gossip.on_l_receive(&mut rng, &view, &mut arena, slot, id, payload(), 2);
        assert!(second.is_none(), "duplicate must not deliver again");
        assert_eq!(arena.known_count(), 1);
    }

    #[test]
    fn forwarding_stops_at_round_t() {
        let (mut gossip, mut arena, view, mut rng) = setup(3, 5);
        // rounds = 3: r = 2 still forwards, r = 3 does not.
        let id = MsgId::from_raw(1);
        let slot = arena.intern(id);
        let step = gossip
            .on_l_receive(&mut rng, &view, &mut arena, slot, id, payload(), 2)
            .expect("new message");
        assert_eq!(step.sends.len(), 3);
        assert!(step.sends.iter().all(|s| s.round == 3));
        let id2 = MsgId::from_raw(2);
        let slot2 = arena.intern(id2);
        let stopped = gossip
            .on_l_receive(&mut rng, &view, &mut arena, slot2, id2, payload(), 3)
            .expect("new message");
        assert!(stopped.sends.is_empty(), "r >= t must not relay");
    }

    #[test]
    fn small_view_limits_fanout() {
        let (mut gossip, mut arena, view, mut rng) = setup(11, 3);
        let (_slot, step) = gossip.multicast(&mut rng, &view, &mut arena, payload());
        assert_eq!(step.sends.len(), 3, "fanout capped by view size");
    }

    #[test]
    fn delivery_round_is_the_arrival_round() {
        let (mut gossip, mut arena, view, mut rng) = setup(2, 4);
        let id = MsgId::from_raw(3);
        let slot = arena.intern(id);
        let step = gossip
            .on_l_receive(&mut rng, &view, &mut arena, slot, id, payload(), 2)
            .expect("new message");
        assert_eq!(step.round, 2);
        assert_eq!(step.payload, payload());
    }
}
