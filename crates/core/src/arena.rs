//! Arena-backed per-message node state.
//!
//! Before the 10k-scale work, every node kept its per-message state in
//! half a dozen hash structures — the gossip known-set `K`, the
//! scheduler's received-set `R`, payload cache `C`, missing-message queue
//! and holder map, plus two timer maps in the node itself. One delivered
//! message meant five or six independent hash probes into cold tables,
//! and at 10 000 nodes every probe is a cache miss.
//!
//! [`MsgArena`] collapses all of it into one structure: a single
//! interning map (`MsgId` → dense slot index) and a slab of
//! [`MsgState`] records holding *every* per-message flag and buffer
//! side by side. A message event costs one hash probe to find the slot;
//! everything else is field access on one contiguous record. Slots are
//! generation-stamped and recycled through a free list; a FIFO eviction
//! queue bounds live slots to the configured `known_capacity` (mirroring
//! the old bounded sets — far above any experiment's live message count),
//! and a second FIFO bounds cached payloads to `cache_capacity`.
//!
//! The generation stamp also replaces the node's timer maps: a request
//! timer tag encodes `(slot, generation)`, so a firing timer re-finds its
//! message in O(1) and a timer for an evicted (recycled) slot is
//! recognized as stale without any bookkeeping.

use crate::id::MsgId;
use crate::msg::Payload;
use egm_rng::hash::FastHashMap;
use egm_simnet::{NodeId, SimTime, TimerTag, TimerToken};
use std::collections::VecDeque;

/// Occupancy counters of one [`MsgArena`], for steady-state accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slots freed by horizon-based retirement (not FIFO eviction).
    pub retired: u64,
    /// Live slots right now.
    pub live: usize,
    /// Maximum live slots ever held — the arena's working-set size.
    pub high_water: usize,
}

/// All per-message state one node keeps, in one record.
#[derive(Debug, Default)]
pub struct MsgState {
    /// The interned message id.
    id: MsgId,
    /// Bumped whenever the slot is evicted and recycled; stale handles
    /// (timer tags) carry the generation they were minted with.
    gen: u32,
    /// Gossip known-set `K` membership (Fig. 2, line 2).
    known: bool,
    /// Scheduler received-set `R` membership (Fig. 3, line 17).
    received: bool,
    /// Whether `cache` holds a payload (`C`, Fig. 3, line 16).
    cached: bool,
    /// Whether the message is advertised-but-missing with a live request
    /// rotation.
    missing: bool,
    /// Cached payload and round for answering `IWANT`s.
    cache: (Payload, u32),
    /// Peers known to hold the message (only tracked when NeEM-style
    /// suppression is enabled).
    holders: Vec<NodeId>,
    /// Known sources in advertisement order (missing-message queue).
    sources: Vec<NodeId>,
    /// Which sources have been asked in the current rotation.
    requested: Vec<bool>,
    /// Pending retry timer, so a resolving payload can cancel it
    /// index-free instead of letting the dead event pop.
    timer: Option<(TimerTag, TimerToken)>,
}

impl MsgState {
    fn reset(&mut self) {
        self.known = false;
        self.received = false;
        self.cached = false;
        self.missing = false;
        self.holders.clear();
        self.sources.clear();
        self.requested.clear();
        self.timer = None;
    }
}

/// Dense, generation-checked arena of per-message state for one node.
///
/// # Examples
///
/// ```
/// use egm_core::arena::MsgArena;
/// use egm_core::MsgId;
///
/// let mut arena = MsgArena::new(64, 32, false);
/// let slot = arena.intern(MsgId::from_raw(7));
/// assert!(arena.mark_received(slot));
/// assert!(!arena.mark_received(slot), "second delivery is a duplicate");
/// assert!(arena.has_received(&MsgId::from_raw(7)));
/// ```
#[derive(Debug)]
pub struct MsgArena {
    index: FastHashMap<MsgId, u32>,
    slots: Vec<MsgState>,
    free: Vec<u32>,
    /// Slot insertion order (with mint generation) for FIFO eviction.
    fifo: VecDeque<(u32, u32)>,
    /// Cache insertion order (with generation) for FIFO payload eviction.
    cache_fifo: VecDeque<(u32, u32)>,
    /// Delivered slots awaiting horizon-based retirement, in delivery
    /// order with their mint generation and retirement time. Delivery
    /// times are monotone within a node, so the front entry always has
    /// the earliest horizon.
    retire_fifo: VecDeque<(u32, u32, SimTime)>,
    capacity: usize,
    cache_capacity: usize,
    live: usize,
    cached: usize,
    known: usize,
    missing: usize,
    /// Slots freed by [`MsgArena::retire_expired`].
    retired: u64,
    /// Maximum `live` ever observed.
    high_water: usize,
    track_holders: bool,
}

impl MsgArena {
    /// Creates an arena bounded to `capacity` live messages and
    /// `cache_capacity` cached payloads. `track_holders` enables the
    /// holder lists consulted by NeEM-style suppression.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero or `capacity` exceeds `2^31`
    /// (slot indices are packed into timer tags).
    pub fn new(capacity: usize, cache_capacity: usize, track_holders: bool) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(cache_capacity > 0, "cache capacity must be positive");
        assert!(capacity <= 1 << 31, "capacity must fit a packed tag");
        MsgArena {
            index: FastHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            fifo: VecDeque::new(),
            cache_fifo: VecDeque::new(),
            retire_fifo: VecDeque::new(),
            capacity,
            cache_capacity,
            live: 0,
            cached: 0,
            known: 0,
            missing: 0,
            retired: 0,
            high_water: 0,
            track_holders,
        }
    }

    /// Returns the slot for `id`, creating (and possibly evicting the
    /// oldest message) if unseen. This is the single hash probe a message
    /// event pays; all further state access is by slot.
    pub fn intern(&mut self, id: MsgId) -> u32 {
        if let Some(&slot) = self.index.get(&id) {
            return slot;
        }
        if self.live >= self.capacity {
            self.evict_oldest();
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].id = id;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(MsgState {
                    id,
                    ..MsgState::default()
                });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.index.insert(id, slot);
        self.fifo.push_back((slot, gen));
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        slot
    }

    /// Looks up the slot for `id` without creating one.
    pub fn lookup(&self, id: &MsgId) -> Option<u32> {
        self.index.get(id).copied()
    }

    /// Evicts the oldest live slot (FIFO over interning order).
    fn evict_oldest(&mut self) {
        while let Some((slot, gen)) = self.fifo.pop_front() {
            if self.slots[slot as usize].gen != gen {
                continue; // stale fifo entry of a recycled slot
            }
            self.free_slot(slot);
            return;
        }
        unreachable!("live slots imply a fifo entry");
    }

    /// Frees one live slot: drops its flags from the counters, removes it
    /// from the interning map, resets its state, bumps the generation
    /// (invalidating every outstanding handle) and returns it to the free
    /// list. Shared by FIFO eviction and horizon retirement.
    fn free_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        if s.known {
            self.known -= 1;
        }
        if s.cached {
            self.cached -= 1;
        }
        if s.missing {
            self.missing -= 1;
        }
        self.index.remove(&s.id);
        s.reset();
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        // Freeing may have stranded this slot's cache_fifo entry; drain
        // stale front entries so the fifo stays bounded even when the
        // cache itself never overflows.
        self.drain_stale_cache_fifo();
    }

    // --- horizon-based retirement ---------------------------------------

    /// Schedules the delivered message in `slot` for retirement at `at`.
    ///
    /// Called once per delivery when retirement is enabled; delivery
    /// times are monotone, so the queue stays sorted by horizon. The slot
    /// is freed by a later [`MsgArena::retire_expired`] sweep unless FIFO
    /// eviction recycled it first (detected by the generation stamp).
    pub fn schedule_retire(&mut self, slot: u32, at: SimTime) {
        let gen = self.slots[slot as usize].gen;
        self.retire_fifo.push_back((slot, gen, at));
    }

    /// Frees every scheduled slot whose retirement horizon has passed,
    /// returning how many were retired.
    ///
    /// Retirement never touches the event queue, the RNGs or any timer:
    /// a run with retirement enabled processes the *identical* event
    /// stream as one without, provided the horizon exceeds the time
    /// between a message's delivery and the last protocol event anywhere
    /// that still references it (late duplicates, `IHAVE`s and `IWANT`s).
    /// After the horizon a late `IWANT` would be answered with a cache
    /// miss, so the configured horizon must cover the worst-case quiesce
    /// time (gossip depth × (link delay + retry interval) under the run's
    /// loss rate).
    pub fn retire_expired(&mut self, now: SimTime) -> usize {
        let mut freed = 0;
        while let Some(&(slot, gen, at)) = self.retire_fifo.front() {
            if at > now {
                break;
            }
            self.retire_fifo.pop_front();
            if self.slots[slot as usize].gen != gen {
                continue; // FIFO eviction already recycled the slot
            }
            debug_assert!(
                self.slots[slot as usize].received && self.slots[slot as usize].timer.is_none(),
                "retire queue must only hold delivered, timer-free slots"
            );
            self.free_slot(slot);
            self.retired += 1;
            freed += 1;
        }
        freed
    }

    /// Frees every scheduled slot regardless of horizon, returning how
    /// many were retired.
    ///
    /// Run-end sweep: a message published near the end of a long
    /// open-loop run can have its retirement horizon land *after* the
    /// last simulated event, so no [`MsgArena::retire_expired`] sweep
    /// ever reaches it and the slot sits unretired in the end-of-run
    /// accounting. The harness calls this once after the event loop
    /// finishes; it can never affect the event stream (retirement frees
    /// state only) and `high_water` is unaffected because no new slots
    /// are interned afterwards.
    pub fn retire_all(&mut self) -> usize {
        let mut freed = 0;
        while let Some((slot, gen, _at)) = self.retire_fifo.pop_front() {
            if self.slots[slot as usize].gen != gen {
                continue; // FIFO eviction already recycled the slot
            }
            debug_assert!(
                self.slots[slot as usize].received && self.slots[slot as usize].timer.is_none(),
                "retire queue must only hold delivered, timer-free slots"
            );
            self.free_slot(slot);
            self.retired += 1;
            freed += 1;
        }
        freed
    }

    /// Occupancy counters: retired slots, live slots, live high-water.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            retired: self.retired,
            live: self.live,
            high_water: self.high_water,
        }
    }

    /// Pops cache-fifo front entries whose slot was evicted (generation
    /// mismatch) or un-cached meanwhile. Amortized O(1): every entry is
    /// pushed once and popped once. Slot eviction is FIFO over intern
    /// order and caching follows interning, so stranded entries surface
    /// at the front and the fifo length tracks the live cache.
    fn drain_stale_cache_fifo(&mut self) {
        while let Some(&(slot, gen)) = self.cache_fifo.front() {
            let s = &self.slots[slot as usize];
            if s.gen == gen && s.cached {
                break;
            }
            self.cache_fifo.pop_front();
        }
    }

    /// The generation currently minted for `slot`.
    pub fn generation(&self, slot: u32) -> u32 {
        self.slots[slot as usize].gen
    }

    /// The message id interned in `slot`.
    pub fn slot_id(&self, slot: u32) -> MsgId {
        self.slots[slot as usize].id
    }

    /// Whether `slot` still carries the generation a handle was minted
    /// with (i.e. the handle's message was not evicted meanwhile).
    pub fn check_generation(&self, slot: u32, gen: u32) -> bool {
        (slot as usize) < self.slots.len() && self.slots[slot as usize].gen == gen
    }

    // --- gossip known-set `K` -------------------------------------------

    /// Marks `slot` known; `true` when newly known (Fig. 2's `i ∉ K`).
    pub fn mark_known(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        if s.known {
            return false;
        }
        s.known = true;
        self.known += 1;
        true
    }

    /// Whether the message is in `K`.
    pub fn knows(&self, id: &MsgId) -> bool {
        self.lookup(id)
            .is_some_and(|slot| self.slots[slot as usize].known)
    }

    /// Number of messages currently in `K`.
    pub fn known_count(&self) -> usize {
        self.known
    }

    // --- scheduler received-set `R` -------------------------------------

    /// Marks `slot` received; `true` when newly received (Fig. 3's
    /// `i ∉ R`).
    pub fn mark_received(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        if s.received {
            return false;
        }
        s.received = true;
        true
    }

    /// Whether the payload for `slot` has been received.
    pub fn is_received(&self, slot: u32) -> bool {
        self.slots[slot as usize].received
    }

    /// Whether the payload of `id` has been received.
    pub fn has_received(&self, id: &MsgId) -> bool {
        self.lookup(id)
            .is_some_and(|slot| self.slots[slot as usize].received)
    }

    // --- payload cache `C` ----------------------------------------------

    /// Caches the payload for `slot` (Fig. 3, line 23: `C[i] = (d, r)`),
    /// evicting the oldest cached payload beyond the cache capacity.
    /// Re-caching an existing entry replaces it without changing its age.
    pub fn cache_put(&mut self, slot: u32, payload: Payload, round: u32) {
        let gen = {
            let s = &mut self.slots[slot as usize];
            s.cache = (payload, round);
            if s.cached {
                return;
            }
            s.cached = true;
            s.gen
        };
        self.cached += 1;
        self.cache_fifo.push_back((slot, gen));
        self.drain_stale_cache_fifo();
        while self.cached > self.cache_capacity {
            match self.cache_fifo.pop_front() {
                Some((old, old_gen)) => {
                    let s = &mut self.slots[old as usize];
                    if s.gen == old_gen && s.cached {
                        s.cached = false;
                        self.cached -= 1;
                    }
                }
                None => break,
            }
        }
    }

    /// The cached payload for `slot`, if still cached.
    pub fn cache_get(&self, slot: u32) -> Option<(Payload, u32)> {
        let s = &self.slots[slot as usize];
        s.cached.then_some(s.cache)
    }

    // --- holder tracking (NeEM-style suppression) -----------------------

    /// Notes that `peer` holds the message (no-op unless holder tracking
    /// is enabled — holders are only consulted by suppression).
    pub fn note_holder(&mut self, slot: u32, peer: NodeId) {
        if !self.track_holders {
            return;
        }
        let s = &mut self.slots[slot as usize];
        if !s.holders.contains(&peer) {
            s.holders.push(peer);
        }
    }

    /// Whether `peer` is known to hold the message.
    pub fn is_holder(&self, slot: u32, peer: NodeId) -> bool {
        self.slots[slot as usize].holders.contains(&peer)
    }

    // --- missing-message queue ------------------------------------------

    /// Whether `slot` is advertised-but-missing.
    pub fn is_missing(&self, slot: u32) -> bool {
        self.slots[slot as usize].missing
    }

    /// Number of advertised-but-missing messages currently queued.
    pub fn missing_count(&self) -> usize {
        self.missing
    }

    /// Starts the missing-message queue for `slot` with its first source.
    pub fn missing_start(&mut self, slot: u32, source: NodeId) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(!s.missing);
        s.missing = true;
        s.sources.clear();
        s.requested.clear();
        s.sources.push(source);
        s.requested.push(false);
        self.missing += 1;
    }

    /// Queues another source for a missing message (`Queue(i, s)`).
    pub fn missing_add_source(&mut self, slot: u32, source: NodeId) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.missing);
        if !s.sources.contains(&source) {
            s.sources.push(source);
            s.requested.push(false);
        }
    }

    /// Clears the missing state (`Clear(i)`), e.g. when the payload
    /// arrives. Returns whether it was set.
    pub fn missing_clear(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        if !s.missing {
            return false;
        }
        s.missing = false;
        s.sources.clear();
        s.requested.clear();
        self.missing -= 1;
        true
    }

    /// Fills `idx`/`sources` with the positions and ids of sources not
    /// yet requested this rotation, resetting the rotation when exhausted
    /// (requests cycle through all known sources). Writes into
    /// caller-owned scratch buffers: this runs on every request-timer
    /// expiry, so it must not allocate.
    pub fn missing_candidates_into(
        &mut self,
        slot: u32,
        idx: &mut Vec<usize>,
        sources: &mut Vec<NodeId>,
    ) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.missing);
        if s.requested.iter().all(|&r| r) {
            for r in &mut s.requested {
                *r = false;
            }
        }
        idx.clear();
        sources.clear();
        for (i, &asked) in s.requested.iter().enumerate() {
            if !asked {
                idx.push(i);
                sources.push(s.sources[i]);
            }
        }
    }

    /// Marks rotation position `source_idx` as requested and returns its
    /// source id.
    pub fn missing_mark_requested(&mut self, slot: u32, source_idx: usize) -> NodeId {
        let s = &mut self.slots[slot as usize];
        s.requested[source_idx] = true;
        s.sources[source_idx]
    }

    // --- request-timer handle -------------------------------------------

    /// Stores the pending retry timer for `slot`.
    pub fn set_timer(&mut self, slot: u32, tag: TimerTag, token: TimerToken) {
        self.slots[slot as usize].timer = Some((tag, token));
    }

    /// Takes the pending retry timer for `slot`, if any.
    pub fn take_timer(&mut self, slot: u32) -> Option<(TimerTag, TimerToken)> {
        self.slots[slot as usize].timer.take()
    }
}

#[cfg(test)]
mod tests {
    use super::MsgArena;
    use crate::id::MsgId;
    use crate::msg::Payload;
    use egm_simnet::{NodeId, SimTime};

    fn payload() -> Payload {
        Payload { seq: 1, bytes: 64 }
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut a = MsgArena::new(8, 8, false);
        let s0 = a.intern(MsgId::from_raw(10));
        let s1 = a.intern(MsgId::from_raw(11));
        assert_ne!(s0, s1);
        assert_eq!(a.intern(MsgId::from_raw(10)), s0);
        assert_eq!(a.lookup(&MsgId::from_raw(11)), Some(s1));
        assert_eq!(a.lookup(&MsgId::from_raw(12)), None);
    }

    #[test]
    fn flags_cover_known_received_cache_missing() {
        let mut a = MsgArena::new(8, 8, false);
        let s = a.intern(MsgId::from_raw(1));
        assert!(a.mark_known(s));
        assert!(!a.mark_known(s));
        assert_eq!(a.known_count(), 1);
        assert!(a.knows(&MsgId::from_raw(1)));

        assert!(a.mark_received(s));
        assert!(!a.mark_received(s));
        assert!(a.is_received(s));

        assert_eq!(a.cache_get(s), None);
        a.cache_put(s, payload(), 3);
        assert_eq!(a.cache_get(s), Some((payload(), 3)));

        assert!(!a.is_missing(s));
        a.missing_start(s, NodeId(4));
        assert!(a.is_missing(s));
        assert_eq!(a.missing_count(), 1);
        assert!(a.missing_clear(s));
        assert!(!a.missing_clear(s));
        assert_eq!(a.missing_count(), 0);
    }

    #[test]
    fn fifo_eviction_recycles_slots_and_bumps_generation() {
        let mut a = MsgArena::new(2, 2, false);
        let s0 = a.intern(MsgId::from_raw(0));
        let gen0 = a.generation(s0);
        a.mark_known(s0);
        let _s1 = a.intern(MsgId::from_raw(1));
        // Third message evicts message 0 (oldest).
        let s2 = a.intern(MsgId::from_raw(2));
        assert_eq!(s2, s0, "slot is recycled");
        assert!(!a.check_generation(s0, gen0), "stale handle is detected");
        assert_eq!(a.lookup(&MsgId::from_raw(0)), None);
        assert!(!a.knows(&MsgId::from_raw(0)));
        assert_eq!(a.known_count(), 0, "eviction drops the known flag");
    }

    #[test]
    fn cache_eviction_is_fifo_and_bounded() {
        let mut a = MsgArena::new(8, 2, false);
        let s0 = a.intern(MsgId::from_raw(0));
        let s1 = a.intern(MsgId::from_raw(1));
        let s2 = a.intern(MsgId::from_raw(2));
        a.cache_put(s0, payload(), 0);
        a.cache_put(s1, payload(), 1);
        // Replacing does not change the age.
        a.cache_put(s0, payload(), 9);
        a.cache_put(s2, payload(), 2);
        assert_eq!(a.cache_get(s0), None, "oldest payload evicted");
        assert_eq!(a.cache_get(s1), Some((payload(), 1)));
        assert_eq!(a.cache_get(s2), Some((payload(), 2)));
    }

    #[test]
    fn holder_tracking_is_gated() {
        let mut off = MsgArena::new(4, 4, false);
        let s = off.intern(MsgId::from_raw(1));
        off.note_holder(s, NodeId(7));
        assert!(!off.is_holder(s, NodeId(7)), "disabled tracking is a no-op");

        let mut on = MsgArena::new(4, 4, true);
        let s = on.intern(MsgId::from_raw(1));
        on.note_holder(s, NodeId(7));
        on.note_holder(s, NodeId(7));
        assert!(on.is_holder(s, NodeId(7)));
        assert!(!on.is_holder(s, NodeId(8)));
    }

    #[test]
    fn rotation_cycles_through_sources() {
        let mut a = MsgArena::new(4, 4, false);
        let s = a.intern(MsgId::from_raw(1));
        a.missing_start(s, NodeId(1));
        a.missing_add_source(s, NodeId(2));
        a.missing_add_source(s, NodeId(2)); // duplicate ignored
        let (mut idx, mut sources) = (Vec::new(), Vec::new());
        a.missing_candidates_into(s, &mut idx, &mut sources);
        assert_eq!(sources, vec![NodeId(1), NodeId(2)]);
        assert_eq!(a.missing_mark_requested(s, 0), NodeId(1));
        a.missing_candidates_into(s, &mut idx, &mut sources);
        assert_eq!(sources, vec![NodeId(2)]);
        assert_eq!(a.missing_mark_requested(s, idx[0]), NodeId(2));
        // Exhausted: the rotation resets and offers everyone again.
        a.missing_candidates_into(s, &mut idx, &mut sources);
        assert_eq!(sources, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn cache_fifo_does_not_leak_across_slot_eviction() {
        // Two live slots, cache capacity far above what is ever cached:
        // the cache never overflows, yet slot eviction keeps un-caching
        // entries. Stranded fifo entries must be drained, not hoarded.
        let mut a = MsgArena::new(2, 64, false);
        for k in 0..1_000u128 {
            let s = a.intern(MsgId::from_raw(k));
            a.cache_put(s, payload(), 0);
        }
        assert!(
            a.cache_fifo.len() <= 4,
            "cache fifo leaked: {} entries for 2 live slots",
            a.cache_fifo.len()
        );
        assert_eq!(a.cached, 2);
    }

    #[test]
    fn timer_handles_are_single_use() {
        let mut a = MsgArena::new(4, 4, false);
        let s = a.intern(MsgId::from_raw(1));
        assert!(a.take_timer(s).is_none());
    }

    #[test]
    fn retirement_frees_slots_for_reuse() {
        let mut a = MsgArena::new(64, 64, false);
        let s = a.intern(MsgId::from_raw(1));
        a.mark_known(s);
        a.mark_received(s);
        let gen = a.generation(s);
        a.schedule_retire(s, SimTime::from_ms(100.0));
        assert_eq!(
            a.retire_expired(SimTime::from_ms(99.0)),
            0,
            "horizon not reached"
        );
        assert_eq!(a.retire_expired(SimTime::from_ms(100.0)), 1);
        assert!(!a.check_generation(s, gen), "stale handles are detected");
        assert_eq!(a.lookup(&MsgId::from_raw(1)), None);
        assert_eq!(a.known_count(), 0, "retirement drops the known flag");
        let stats = a.stats();
        assert_eq!((stats.retired, stats.live), (1, 0));
        // The freed slot is recycled by the next intern; the working set
        // never grew beyond one slot.
        assert_eq!(a.intern(MsgId::from_raw(2)), s);
        assert_eq!(a.stats().high_water, 1);
    }

    #[test]
    fn retire_all_sweeps_past_the_horizon() {
        let mut a = MsgArena::new(64, 64, false);
        let s0 = a.intern(MsgId::from_raw(1));
        a.mark_received(s0);
        a.schedule_retire(s0, SimTime::from_ms(100.0));
        let s1 = a.intern(MsgId::from_raw(2));
        a.mark_received(s1);
        a.schedule_retire(s1, SimTime::from_ms(10_000.0));
        // A time-driven sweep at run end misses the late horizon...
        assert_eq!(a.retire_expired(SimTime::from_ms(200.0)), 1);
        assert_eq!(a.stats().live, 1);
        // ...but the final sweep frees it regardless.
        assert_eq!(a.retire_all(), 1);
        let stats = a.stats();
        assert_eq!((stats.retired, stats.live), (2, 0));
        assert_eq!(a.lookup(&MsgId::from_raw(2)), None);
    }

    #[test]
    fn eviction_before_retirement_is_skipped_by_generation() {
        let mut a = MsgArena::new(2, 2, false);
        let s0 = a.intern(MsgId::from_raw(0));
        a.mark_received(s0);
        a.schedule_retire(s0, SimTime::from_ms(10.0));
        let _ = a.intern(MsgId::from_raw(1));
        let s2 = a.intern(MsgId::from_raw(2)); // capacity evicts message 0
        assert_eq!(s2, s0, "slot recycled by FIFO eviction");
        a.mark_received(s2);
        // The sweep must skip the recycled slot: message 2 lives on.
        assert_eq!(a.retire_expired(SimTime::from_ms(10.0)), 0);
        assert!(a.lookup(&MsgId::from_raw(2)).is_some());
        assert!(a.is_received(s2));
        assert_eq!(a.stats().retired, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = MsgArena::new(0, 4, false);
    }
}
