//! The protocol node: gossip layer + payload scheduler + strategy +
//! monitor + membership, wired to the simulator.
//!
//! This is the composition of Fig. 1: the application multicasts (injected
//! by the harness as simulator commands), the gossip protocol relays, the
//! Payload Scheduler turns `L-Send`s into `MSG`/`IHAVE`/`IWANT` exchanges
//! under the node's [`TransmissionStrategy`], and the Performance Monitor
//! (oracle or ping-based) feeds the strategy.

use crate::arena::{ArenaStats, MsgArena};
use crate::config::ProtocolConfig;
use crate::gossip::{GossipLayer, GossipStep};
use crate::monitor::Monitor;
use crate::msg::{EgmMessage, Payload};
use crate::scheduler::{PayloadScheduler, RequestAction, SchedulerStats};
use crate::strategy::StrategyCtx;
use crate::strategy::TransmissionStrategy;
use egm_membership::PartialView;
use egm_simnet::{Context, NodeId, Protocol, SimDuration, SimTime, TimerTag};

/// A payload delivered to the application at this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Harness sequence number of the multicast.
    pub seq: u64,
    /// Virtual delivery time.
    pub time: SimTime,
    /// Gossip round at which the payload arrived (0 = own multicast).
    pub round: u32,
}

/// A multicast initiated at this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulticastRecord {
    /// Harness sequence number.
    pub seq: u64,
    /// Virtual multicast time.
    pub time: SimTime,
}

const TAG_SHUFFLE: TimerTag = 0;
const TAG_PING: TimerTag = 1;

/// Request-timer tags have the top bit set and pack the message's arena
/// slot and generation, so a firing timer re-finds its message in O(1)
/// and a timer whose slot was recycled is recognized as stale — no
/// tag-to-message maps.
const REQUEST_TAG_FLAG: TimerTag = 1 << 63;

/// Publish-chain timer tags have bit 62 set (and bit 63 clear, keeping
/// them disjoint from request tags) and carry the sequence number to
/// multicast in the low bits. Used by closed-loop workloads: delivering
/// sequence `s` arms this timer at the node that owns `s + 1`.
const PUBLISH_TAG_FLAG: TimerTag = 1 << 62;

/// Closed-loop publish schedule for one node: the node multicasts
/// sequence `s` after a fixed think time whenever it delivers `s - 1`
/// and owns `s` under round-robin assignment (`s % senders == index`).
///
/// The chain is seeded by the harness commanding sequence 0; every later
/// publish is gated on the previous message's delivery at its publisher,
/// which is what makes the load *closed-loop* — offered rate adapts to
/// delivery latency instead of being fixed. Timers are node-local, so
/// chained publishes stay byte-identical under sharded execution.
#[derive(Debug, Clone, Copy)]
pub struct PublishChain {
    /// This node's position in the sender rotation.
    pub index: u64,
    /// Rotation size (number of publishing nodes).
    pub senders: u64,
    /// Total messages in the run; sequences `0..total`.
    pub total: u64,
    /// Think time between delivering `s - 1` and multicasting `s`.
    pub think: SimDuration,
}

fn request_tag(slot: u32, generation: u32) -> TimerTag {
    REQUEST_TAG_FLAG | (u64::from(slot) << 32) | u64::from(generation)
}

fn decode_request_tag(tag: TimerTag) -> (u32, u32) {
    (((tag >> 32) & 0x7FFF_FFFF) as u32, tag as u32)
}

/// Number of peers probed per ping round of the runtime monitor.
const PING_FANOUT: usize = 3;

/// A full protocol node, implementing [`egm_simnet::Protocol`].
///
/// # Examples
///
/// Construction is usually done by `egm-workload`'s scenario runner; by
/// hand it looks like:
///
/// ```
/// use egm_core::{EgmNode, ProtocolConfig, StrategySpec};
/// use egm_core::monitor::{Monitor, NullMonitor};
/// use egm_membership::{PartialView, ViewConfig};
/// use egm_simnet::NodeId;
///
/// let config = ProtocolConfig::default().with_fanout(3);
/// let mut view = PartialView::new(NodeId(0), config.view);
/// view.insert(NodeId(1));
/// let strategy = StrategySpec::Flat { pi: 0.5 }.build(None);
/// let node = EgmNode::new(NodeId(0), config, view, strategy, Monitor::Null(NullMonitor));
/// assert_eq!(node.deliveries().len(), 0);
/// ```
#[derive(Debug)]
pub struct EgmNode {
    id: NodeId,
    config: ProtocolConfig,
    view: PartialView,
    gossip: GossipLayer,
    scheduler: PayloadScheduler,
    strategy: Box<dyn TransmissionStrategy>,
    monitor: Monitor,
    /// Arena holding all per-message state (known/received flags, payload
    /// cache, missing queue, holder lists, retry-timer handles) in dense
    /// generation-stamped slots — one hash probe per message event.
    msgs: MsgArena,
    multicasts: Vec<MulticastRecord>,
    deliveries: Vec<DeliveryRecord>,
    /// Closed-loop publish schedule, if this run gates publishes on
    /// deliveries (see [`PublishChain`]).
    chain: Option<PublishChain>,
    /// Scratch buffers for the periodic ping sample, so monitor probing
    /// stays allocation-free like the gossip and shuffle paths.
    ping_idx: Vec<usize>,
    ping_targets: Vec<NodeId>,
}

impl EgmNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ProtocolConfig::validate`]) or the view does not belong to `id`.
    pub fn new(
        id: NodeId,
        config: ProtocolConfig,
        view: PartialView,
        strategy: Box<dyn TransmissionStrategy>,
        monitor: Monitor,
    ) -> Self {
        config.validate();
        assert_eq!(view.owner(), id, "view owner must match the node id");
        EgmNode {
            id,
            gossip: GossipLayer::new(&config),
            scheduler: PayloadScheduler::new(&config),
            msgs: MsgArena::new(
                config.known_capacity,
                config.cache_capacity,
                config.suppress_known,
            ),
            config,
            view,
            strategy,
            monitor,
            multicasts: Vec::new(),
            deliveries: Vec::new(),
            chain: None,
            ping_idx: Vec::new(),
            ping_targets: Vec::new(),
        }
    }

    /// Installs the closed-loop publish chain for this node. Call before
    /// the simulation starts.
    ///
    /// # Panics
    ///
    /// Panics if the chain is degenerate (`senders == 0`, out-of-range
    /// `index`, or a sequence range that cannot fit a publish tag).
    pub fn set_publish_chain(&mut self, chain: PublishChain) {
        assert!(chain.senders > 0, "chain needs at least one sender");
        assert!(chain.index < chain.senders, "chain index out of range");
        assert!(
            chain.total < PUBLISH_TAG_FLAG,
            "sequence range must fit a publish tag"
        );
        self.chain = Some(chain);
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Payloads delivered to the application, in delivery order.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.deliveries
    }

    /// Multicasts initiated at this node.
    pub fn multicasts(&self) -> &[MulticastRecord] {
        &self.multicasts
    }

    /// Scheduler counters.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Message-arena occupancy counters (retired slots, live slots, live
    /// high-water) — the node's steady-state working set.
    pub fn arena_stats(&self) -> ArenaStats {
        self.msgs.stats()
    }

    /// Run-end retirement sweep: frees every delivered message still
    /// awaiting its horizon, no matter how far in the virtual future that
    /// horizon lies. Messages published near the end of a long open-loop
    /// run would otherwise never see a [`MsgArena::retire_expired`] sweep
    /// and would sit unretired in the end-of-run accounting. Must only be
    /// called after the event loop has finished.
    pub fn sweep_retirements(&mut self) -> usize {
        self.msgs.retire_all()
    }

    /// The node's current partial view.
    pub fn view(&self) -> &PartialView {
        &self.view
    }

    /// The strategy's display label.
    pub fn strategy_label(&self) -> String {
        self.strategy.label()
    }

    /// Hands the node a freshly re-ranked best set (online re-ranking
    /// under churn); rank-free strategies ignore it. See
    /// [`TransmissionStrategy::rebind_best`].
    pub fn rebind_best(&mut self, best: std::sync::Arc<crate::rank::BestSet>) {
        self.strategy.rebind_best(best);
    }

    /// The node's performance monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Delivers a gossip step to the application and pushes its forwards
    /// through the payload scheduler. The drained `sends` buffer is handed
    /// back to the gossip layer's pool, keeping forwarding allocation-free.
    fn deliver_and_forward(
        &mut self,
        ctx: &mut Context<'_, EgmMessage>,
        slot: u32,
        step: GossipStep,
    ) {
        self.deliveries.push(DeliveryRecord {
            seq: step.payload.seq,
            time: ctx.now(),
            round: step.round,
        });
        if let Some(horizon) = self.config.retire_after {
            self.msgs.schedule_retire(slot, ctx.now() + horizon);
        }
        if let Some(chain) = &self.chain {
            // Closed loop: delivering sequence s arms the publish timer
            // for s + 1 at its (round-robin) owner. Exactly one node
            // receives each delivery exactly once, so each sequence is
            // published exactly once.
            let next = step.payload.seq + 1;
            if next < chain.total && next % chain.senders == chain.index {
                ctx.set_timer(chain.think, PUBLISH_TAG_FLAG | next);
            }
        }
        let mut sends = step.sends;
        for s in sends.drain(..) {
            let wire = {
                let mut sctx = StrategyCtx {
                    me: self.id,
                    rng: ctx.rng(),
                    monitor: &self.monitor,
                };
                self.scheduler.l_send(
                    &mut sctx,
                    self.strategy.as_mut(),
                    &mut self.msgs,
                    slot,
                    s.id,
                    s.payload,
                    s.round,
                    s.to,
                )
            };
            if let Some(wire) = wire {
                ctx.send(s.to, wire);
            }
        }
        self.gossip.recycle(sends);
    }

    /// Arms the request timer for a missing message as a cancellable
    /// timer, so the arrival of the payload can retire it before it pops.
    fn arm_request_timer(
        &mut self,
        ctx: &mut Context<'_, EgmMessage>,
        slot: u32,
        delay: SimDuration,
    ) {
        let tag = request_tag(slot, self.msgs.generation(slot));
        let token = ctx.set_cancellable_timer(delay, tag);
        self.msgs.set_timer(slot, tag, token);
    }

    /// Cancels the pending retry timer for the message in `slot`, if any
    /// — called when the payload resolves so the timer never reaches the
    /// scheduler.
    fn cancel_request_timer(&mut self, ctx: &mut Context<'_, EgmMessage>, slot: u32) {
        if let Some((_tag, token)) = self.msgs.take_timer(slot) {
            ctx.cancel_timer(token);
        }
    }

    /// Multicasts sequence `seq` from this node — the application-level
    /// publish, shared by harness commands and publish-chain timers.
    fn publish(&mut self, ctx: &mut Context<'_, EgmMessage>, seq: u64) {
        let payload = Payload {
            seq,
            bytes: self.config.payload_bytes,
        };
        self.multicasts.push(MulticastRecord {
            seq,
            time: ctx.now(),
        });
        let (slot, step) = self
            .gossip
            .multicast(ctx.rng(), &self.view, &mut self.msgs, payload);
        self.deliver_and_forward(ctx, slot, step);
    }
}

impl Protocol for EgmNode {
    type Msg = EgmMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, EgmMessage>) {
        // Initial ticks are staggered uniformly to avoid synchronizing
        // every node's shuffle/ping on the same instants.
        if let Some(interval) = self.config.shuffle_interval {
            let first = interval.mul_f64(ctx.rng().f64());
            ctx.set_timer(first, TAG_SHUFFLE);
        }
        if let Some(interval) = self.config.ping_interval {
            let first = interval.mul_f64(ctx.rng().f64());
            ctx.set_timer(first, TAG_PING);
        }
    }

    fn on_receive(&mut self, ctx: &mut Context<'_, EgmMessage>, from: NodeId, msg: EgmMessage) {
        // Free delivered messages whose horizon has passed before touching
        // the arena for this event; a no-op unless retirement is enabled.
        self.msgs.retire_expired(ctx.now());
        match msg {
            EgmMessage::Msg { id, payload, round } => {
                let slot = self.msgs.intern(id);
                self.msgs.note_holder(slot, from);
                match self.scheduler.on_msg(&mut self.msgs, slot, payload, round) {
                    Some((payload, round)) => {
                        // The payload resolves any pending retry timer for
                        // this id: cancel it instead of letting the dead
                        // event pop through the queue.
                        self.cancel_request_timer(ctx, slot);
                        self.strategy.on_payload(from);
                        if let Some(step) = self.gossip.on_l_receive(
                            ctx.rng(),
                            &self.view,
                            &mut self.msgs,
                            slot,
                            id,
                            payload,
                            round,
                        ) {
                            self.deliver_and_forward(ctx, slot, step);
                        }
                    }
                    None => self.strategy.on_duplicate(from),
                }
            }
            EgmMessage::IHave { id } => {
                let slot = self.msgs.intern(id);
                self.msgs.note_holder(slot, from);
                if let Some(delay) =
                    self.scheduler
                        .on_ihave(self.strategy.as_ref(), &mut self.msgs, slot, from)
                {
                    self.arm_request_timer(ctx, slot, delay);
                }
            }
            EgmMessage::IWant { id } => {
                if let Some(reply) = self.scheduler.on_iwant(&self.msgs, id) {
                    ctx.send(from, reply);
                }
            }
            EgmMessage::Shuffle(shuffle) => {
                if let Some((to, reply)) = self.view.handle_shuffle(ctx.rng(), from, *shuffle) {
                    ctx.send(to, EgmMessage::Shuffle(Box::new(reply)));
                }
            }
            EgmMessage::Ping { sent_us } => {
                ctx.send(from, EgmMessage::Pong { sent_us });
            }
            EgmMessage::Pong { sent_us } => {
                let rtt_ms = ctx.now().as_micros().saturating_sub(sent_us) as f64 / 1000.0;
                if let Some(runtime) = self.monitor.runtime_mut() {
                    runtime.record_rtt(from, rtt_ms);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, EgmMessage>, tag: TimerTag) {
        self.msgs.retire_expired(ctx.now());
        match tag {
            TAG_SHUFFLE => {
                if let Some((to, msg)) = self.view.start_shuffle(ctx.rng()) {
                    ctx.send(to, EgmMessage::Shuffle(Box::new(msg)));
                }
                if let Some(interval) = self.config.shuffle_interval {
                    ctx.set_timer(interval, TAG_SHUFFLE);
                }
            }
            TAG_PING => {
                let now_us = ctx.now().as_micros();
                let mut targets = std::mem::take(&mut self.ping_targets);
                self.view
                    .sample_into(ctx.rng(), PING_FANOUT, &mut self.ping_idx, &mut targets);
                for &to in &targets {
                    ctx.send(to, EgmMessage::Ping { sent_us: now_us });
                }
                self.ping_targets = targets;
                if let Some(interval) = self.config.ping_interval {
                    ctx.set_timer(interval, TAG_PING);
                }
            }
            tag if tag & PUBLISH_TAG_FLAG != 0 && tag & REQUEST_TAG_FLAG == 0 => {
                self.publish(ctx, tag & !PUBLISH_TAG_FLAG);
            }
            tag if tag & REQUEST_TAG_FLAG != 0 => {
                let (slot, generation) = decode_request_tag(tag);
                if !self.msgs.check_generation(slot, generation) {
                    return; // the message was evicted; the timer is stale
                }
                let action = {
                    let mut sctx = StrategyCtx {
                        me: self.id,
                        rng: ctx.rng(),
                        monitor: &self.monitor,
                    };
                    self.scheduler.on_request_timer(
                        &mut sctx,
                        self.strategy.as_mut(),
                        &mut self.msgs,
                        slot,
                    )
                };
                match action {
                    RequestAction::Resolved => {
                        self.msgs.take_timer(slot);
                    }
                    RequestAction::Request(to, retry) => {
                        let id = self.msgs.slot_id(slot);
                        ctx.send(to, EgmMessage::IWant { id });
                        let token = ctx.set_cancellable_timer(retry, tag);
                        self.msgs.set_timer(slot, tag, token);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_command(&mut self, ctx: &mut Context<'_, EgmMessage>, value: u64) {
        self.msgs.retire_expired(ctx.now());
        self.publish(ctx, value);
    }
}

#[cfg(test)]
mod tests {
    use super::EgmNode;
    use crate::config::ProtocolConfig;
    use crate::monitor::{Monitor, NullMonitor};
    use crate::strategy::StrategySpec;
    use egm_membership::{bootstrap_views, ViewConfig};
    use egm_rng::Rng;
    use egm_simnet::{NodeId, Sim, SimConfig, SimDuration, SimTime};

    /// Builds an n-node simulation with the given strategy for all nodes.
    fn build_sim(n: usize, spec: StrategySpec, seed: u64) -> Sim<EgmNode> {
        let config = ProtocolConfig {
            fanout: 6,
            rounds: 5,
            view: ViewConfig {
                capacity: 10,
                shuffle_size: 3,
            },
            retry_interval: SimDuration::from_ms(200.0),
            shuffle_interval: None,
            ..ProtocolConfig::default()
        };
        let mut rng = Rng::seed_from_u64(seed ^ 0xBEEF);
        let views = bootstrap_views(n, &config.view, &mut rng);
        let nodes = views
            .into_iter()
            .enumerate()
            .map(|(i, view)| {
                EgmNode::new(
                    NodeId(i),
                    config.clone(),
                    view,
                    spec.build(None),
                    Monitor::Null(NullMonitor),
                )
            })
            .collect();
        Sim::new(SimConfig::uniform(n, 20.0), seed, nodes)
    }

    fn delivery_count(sim: &Sim<EgmNode>, seq: u64) -> usize {
        sim.nodes()
            .filter(|(_, n)| n.deliveries().iter().any(|d| d.seq == seq))
            .count()
    }

    #[test]
    fn eager_multicast_reaches_everyone_exactly_once() {
        let mut sim = build_sim(20, StrategySpec::Flat { pi: 1.0 }, 1);
        sim.schedule_command(SimTime::from_ms(10.0), NodeId(0), 0);
        sim.run_for(SimDuration::from_ms(2000.0));
        assert_eq!(
            delivery_count(&sim, 0),
            20,
            "atomic delivery under eager push"
        );
        for (_, node) in sim.nodes() {
            let count = node.deliveries().iter().filter(|d| d.seq == 0).count();
            assert!(count <= 1, "no duplicate deliveries");
        }
    }

    #[test]
    fn pure_lazy_multicast_still_reaches_everyone() {
        let mut sim = build_sim(20, StrategySpec::Flat { pi: 0.0 }, 2);
        sim.schedule_command(SimTime::from_ms(10.0), NodeId(3), 7);
        sim.run_for(SimDuration::from_ms(5000.0));
        assert_eq!(delivery_count(&sim, 7), 20, "lazy push must still deliver");
        // Lazy push transmits close to the optimal 1 payload per delivery:
        // every non-source delivery needed exactly one MSG, and no
        // redundant payloads flow unless a request raced a transfer.
        let payloads = sim.traffic().total_payloads();
        assert!(
            payloads <= 25,
            "lazy payloads should be near 19, got {payloads}"
        );
    }

    #[test]
    fn eager_uses_far_more_payloads_than_lazy() {
        let mut eager_sim = build_sim(20, StrategySpec::Flat { pi: 1.0 }, 3);
        eager_sim.schedule_command(SimTime::from_ms(10.0), NodeId(0), 0);
        eager_sim.run_for(SimDuration::from_ms(3000.0));
        let mut lazy_sim = build_sim(20, StrategySpec::Flat { pi: 0.0 }, 3);
        lazy_sim.schedule_command(SimTime::from_ms(10.0), NodeId(0), 0);
        lazy_sim.run_for(SimDuration::from_ms(3000.0));
        assert!(
            eager_sim.traffic().total_payloads() > 2 * lazy_sim.traffic().total_payloads(),
            "eager {} vs lazy {}",
            eager_sim.traffic().total_payloads(),
            lazy_sim.traffic().total_payloads()
        );
    }

    #[test]
    fn lazy_delivery_is_slower_than_eager() {
        let latency = |pi: f64| {
            let mut sim = build_sim(15, StrategySpec::Flat { pi }, 4);
            sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
            sim.run_for(SimDuration::from_ms(5000.0));
            let mut sum = 0.0;
            let mut count = 0;
            for (id, node) in sim.nodes() {
                if id != NodeId(0) {
                    for d in node.deliveries() {
                        sum += d.time.as_ms();
                        count += 1;
                    }
                }
            }
            sum / count as f64
        };
        let eager = latency(1.0);
        let lazy = latency(0.0);
        assert!(
            lazy > eager * 1.5,
            "lazy mean {lazy}ms should exceed eager mean {eager}ms by the extra round trips"
        );
    }

    #[test]
    fn multicast_records_are_kept() {
        let mut sim = build_sim(5, StrategySpec::Flat { pi: 1.0 }, 5);
        sim.schedule_command(SimTime::from_ms(10.0), NodeId(2), 0);
        sim.schedule_command(SimTime::from_ms(20.0), NodeId(2), 1);
        sim.run_for(SimDuration::from_ms(500.0));
        let node = sim.node(NodeId(2));
        assert_eq!(node.multicasts().len(), 2);
        assert_eq!(node.multicasts()[0].seq, 0);
        assert_eq!(node.multicasts()[1].time, SimTime::from_ms(20.0));
        // Source delivers its own message at round 0.
        assert!(node.deliveries().iter().any(|d| d.seq == 0 && d.round == 0));
    }

    #[test]
    fn publish_chain_gates_each_publish_on_the_prior_delivery() {
        use super::PublishChain;
        let n = 12;
        let total = 6u64;
        let think = SimDuration::from_ms(15.0);
        let config = ProtocolConfig {
            fanout: 6,
            rounds: 5,
            view: ViewConfig {
                capacity: 10,
                shuffle_size: 3,
            },
            retry_interval: SimDuration::from_ms(200.0),
            shuffle_interval: None,
            ..ProtocolConfig::default()
        };
        let mut rng = Rng::seed_from_u64(21 ^ 0xBEEF);
        let views = bootstrap_views(n, &config.view, &mut rng);
        let nodes: Vec<EgmNode> = views
            .into_iter()
            .enumerate()
            .map(|(i, view)| {
                let mut node = EgmNode::new(
                    NodeId(i),
                    config.clone(),
                    view,
                    StrategySpec::Flat { pi: 1.0 }.build(None),
                    Monitor::Null(NullMonitor),
                );
                node.set_publish_chain(PublishChain {
                    index: i as u64,
                    senders: n as u64,
                    total,
                    think,
                });
                node
            })
            .collect();
        let mut sim = Sim::new(SimConfig::uniform(n, 20.0), 21, nodes);
        sim.schedule_command(SimTime::from_ms(10.0), NodeId(0), 0);
        sim.run_for(SimDuration::from_ms(20_000.0));
        // Every sequence is published exactly once, by its rotation owner.
        let mut publish_time = vec![None; total as usize];
        for (id, node) in sim.nodes() {
            for m in node.multicasts() {
                assert_eq!(NodeId((m.seq % n as u64) as usize), id, "wrong owner");
                assert!(publish_time[m.seq as usize].is_none(), "duplicate publish");
                publish_time[m.seq as usize] = Some(m.time);
            }
        }
        // Each publish happens at least one think time plus one delivery
        // after the previous one — the chain is gated, not open-loop.
        for s in 1..total as usize {
            let (prev, cur) = (
                publish_time[s - 1].expect("published"),
                publish_time[s].expect("published"),
            );
            assert!(cur >= prev + think, "seq {s} not gated on {}", s - 1);
        }
        for s in 0..total {
            assert_eq!(delivery_count(&sim, s), n, "seq {s} delivered everywhere");
        }
    }

    #[test]
    fn scheduler_stats_reflect_strategy() {
        let mut sim = build_sim(10, StrategySpec::Flat { pi: 0.0 }, 6);
        sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
        sim.run_for(SimDuration::from_ms(3000.0));
        let totals = sim.nodes().fold((0u64, 0u64), |acc, (_, n)| {
            let s = n.scheduler_stats();
            (acc.0 + s.eager_sends, acc.1 + s.lazy_advertisements)
        });
        assert_eq!(totals.0, 0, "pi=0 never sends eagerly");
        assert!(totals.1 > 0, "pi=0 advertises");
    }

    #[test]
    fn cancelled_request_timers_never_reach_the_scheduler() {
        // Pure lazy push is the request-timer-heavy regime: every delivery
        // is preceded by IHAVE → timer → IWANT, and every arriving payload
        // must retire its pending retry timer. With index-free
        // cancellation no resolved message may ever pop a stale request
        // timer into `PayloadScheduler::on_request_timer`.
        let mut sim = build_sim(20, StrategySpec::Flat { pi: 0.0 }, 8);
        for k in 0..5 {
            sim.schedule_command(
                SimTime::from_ms(10.0 + 40.0 * k as f64),
                NodeId(k),
                k as u64,
            );
        }
        sim.run_for(SimDuration::from_ms(8000.0));
        let resolved_pops: u64 = sim
            .nodes()
            .map(|(_, n)| n.scheduler_stats().resolved_timer_pops)
            .sum();
        assert_eq!(
            resolved_pops, 0,
            "a resolved message popped a request timer that should have been cancelled"
        );
        assert!(
            sim.timers_cancelled() > 0,
            "lazy runs must exercise cancellation"
        );
        assert_eq!(
            sim.stale_timer_drops(),
            sim.timers_cancelled(),
            "every cancelled timer is dropped at pop, never dispatched"
        );
        // And the protocol still works.
        for k in 0..5 {
            assert_eq!(delivery_count(&sim, k), 20, "message {k} delivered");
        }
    }

    #[test]
    fn ping_monitor_learns_rtt() {
        let config = ProtocolConfig {
            fanout: 2,
            rounds: 2,
            view: ViewConfig {
                capacity: 4,
                shuffle_size: 2,
            },
            shuffle_interval: None,
            ping_interval: Some(SimDuration::from_ms(100.0)),
            ..ProtocolConfig::default()
        };
        let mut rng = Rng::seed_from_u64(77);
        let views = bootstrap_views(4, &config.view, &mut rng);
        let nodes: Vec<EgmNode> = views
            .into_iter()
            .enumerate()
            .map(|(i, view)| {
                EgmNode::new(
                    NodeId(i),
                    config.clone(),
                    view,
                    StrategySpec::Flat { pi: 1.0 }.build(None),
                    Monitor::Runtime(crate::monitor::RuntimeMonitor::new()),
                )
            })
            .collect();
        let mut sim = Sim::new(SimConfig::uniform(4, 25.0), 8, nodes);
        sim.run_for(SimDuration::from_ms(1000.0));
        // After several ping rounds every node has RTT samples; one-way
        // metric should approximate the 25ms link delay.
        use crate::monitor::PerformanceMonitor;
        let node = sim.node(NodeId(0));
        let peer = node.view().peers()[0];
        let metric = node.monitor().metric(NodeId(0), peer);
        assert!(
            (metric - 25.0).abs() < 1.0,
            "learned one-way delay {metric}"
        );
    }

    #[test]
    fn shuffling_keeps_views_valid() {
        let config = ProtocolConfig {
            fanout: 3,
            rounds: 3,
            view: ViewConfig {
                capacity: 5,
                shuffle_size: 2,
            },
            shuffle_interval: Some(SimDuration::from_ms(50.0)),
            ..ProtocolConfig::default()
        };
        let mut rng = Rng::seed_from_u64(99);
        let views = bootstrap_views(10, &config.view, &mut rng);
        let nodes: Vec<EgmNode> = views
            .into_iter()
            .enumerate()
            .map(|(i, view)| {
                EgmNode::new(
                    NodeId(i),
                    config.clone(),
                    view,
                    StrategySpec::Flat { pi: 1.0 }.build(None),
                    Monitor::Null(NullMonitor),
                )
            })
            .collect();
        let mut sim = Sim::new(SimConfig::uniform(10, 10.0), 10, nodes);
        sim.run_for(SimDuration::from_ms(2000.0));
        for (id, node) in sim.nodes() {
            assert!(node.view().len() <= 5);
            assert!(!node.view().contains(id), "view must not contain the owner");
        }
        assert!(sim.traffic().total_messages() > 0, "shuffles exchanged");
    }
}
