//! The Radius strategy (§4.1): eager push to nearby peers only.

use super::{nearest_source, StrategyCtx, TransmissionStrategy};
use crate::id::MsgId;
use egm_simnet::{NodeId, SimDuration};

/// `Eager?` returns `true` iff `Metric(p) < ρ`.
///
/// Gossip eagerly with close nodes to minimize per-hop latency; the
/// expected emergent structure is a *mesh* carried by short links
/// (Fig. 4(b)). Retransmission scheduling differs from Flat: the first
/// request is delayed by `T0` — an estimate of the latency to nodes within
/// the radius — giving eager copies a chance to arrive first, and the
/// *nearest* known source is selected for each request.
///
/// The paper's negative result (§6.2) is that Radius does not improve
/// end-to-end latency: shorter hops are offset by needing more rounds.
///
/// # Examples
///
/// ```
/// use egm_core::strategy::Radius;
/// use egm_core::TransmissionStrategy;
/// use egm_simnet::SimDuration;
///
/// let s = Radius::new(25.0, SimDuration::from_ms(30.0));
/// assert_eq!(s.first_request_delay(), SimDuration::from_ms(30.0));
/// ```
#[derive(Debug, Clone)]
pub struct Radius {
    rho: f64,
    t0: SimDuration,
}

impl Radius {
    /// Creates the strategy with radius `rho` (monitor units) and first
    /// request delay `t0`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is negative or non-finite.
    pub fn new(rho: f64, t0: SimDuration) -> Self {
        assert!(
            rho.is_finite() && rho >= 0.0,
            "radius must be non-negative, got {rho}"
        );
        Radius { rho, t0 }
    }

    /// The configured radius.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl TransmissionStrategy for Radius {
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, to: NodeId, _id: MsgId, _round: u32) -> bool {
        ctx.monitor.metric(ctx.me, to) < self.rho
    }

    fn first_request_delay(&self) -> SimDuration {
        self.t0
    }

    fn pick_source(&mut self, ctx: &mut StrategyCtx<'_>, sources: &[NodeId]) -> usize {
        nearest_source(ctx, sources)
    }

    fn label(&self) -> String {
        format!("radius rho={:.1}", self.rho)
    }
}

#[cfg(test)]
mod tests {
    use super::Radius;
    use crate::id::MsgId;
    use crate::monitor::{NullMonitor, PerformanceMonitor};
    use crate::strategy::{StrategyCtx, TransmissionStrategy};
    use egm_rng::Rng;
    use egm_simnet::{NodeId, SimDuration};

    #[derive(Debug)]
    struct Linear;
    impl PerformanceMonitor for Linear {
        fn metric(&self, _me: NodeId, p: NodeId) -> f64 {
            p.index() as f64 * 10.0
        }
    }

    #[test]
    fn eager_strictly_inside_radius() {
        let mut s = Radius::new(25.0, SimDuration::ZERO);
        let mut rng = Rng::seed_from_u64(1);
        let monitor = Linear;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        assert!(s.eager(&mut ctx, NodeId(0), MsgId::from_raw(1), 0)); // metric 0
        assert!(s.eager(&mut ctx, NodeId(2), MsgId::from_raw(1), 0)); // metric 20
        assert!(!s.eager(&mut ctx, NodeId(3), MsgId::from_raw(1), 0)); // metric 30
    }

    #[test]
    fn unknown_peers_are_lazy() {
        // NullMonitor returns infinity: fail closed.
        let mut s = Radius::new(1e9, SimDuration::ZERO);
        let mut rng = Rng::seed_from_u64(2);
        let monitor = NullMonitor;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        assert!(!s.eager(&mut ctx, NodeId(1), MsgId::from_raw(1), 0));
    }

    #[test]
    fn requests_prefer_nearest_source() {
        let mut s = Radius::new(25.0, SimDuration::from_ms(30.0));
        let mut rng = Rng::seed_from_u64(3);
        let monitor = Linear;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        let sources = [NodeId(9), NodeId(4), NodeId(6)];
        assert_eq!(s.pick_source(&mut ctx, &sources), 1);
        assert_eq!(s.first_request_delay(), SimDuration::from_ms(30.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Radius::new(-1.0, SimDuration::ZERO);
    }
}
