//! Transmission strategies (§4): the policy deciding, per gossip exchange,
//! whether to push the payload eagerly or advertise it lazily.
//!
//! A strategy answers the two questions of the Payload Scheduler:
//!
//! 1. `Eager?(i, d, r, p)` — should this `L-Send` carry the payload now?
//! 2. scheduling of lazy requests — how long to wait before the first
//!    `IWANT`, and which known source to ask.
//!
//! Any strategy is *safe*: it only shifts the latency/bandwidth tradeoff,
//! never correctness (§6.4: *"one can easily try new strategies without
//! endangering the correctness of the protocol"*). The paper's strategies
//! are [`Flat`], [`Ttl`], [`Radius`], [`Ranked`] and the hybrid
//! [`Combined`]; [`Noisy`] degrades any of them in a traffic-preserving
//! way (§4.3).

mod adaptive;
mod flat;
mod hybrid;
mod noise;
mod radius;
mod ranked;
mod ttl;

pub use adaptive::Adaptive;
pub use flat::Flat;
pub use hybrid::Combined;
pub use noise::Noisy;
pub use radius::Radius;
pub use ranked::Ranked;
pub use ttl::Ttl;

use crate::id::MsgId;
use crate::monitor::PerformanceMonitor;
use crate::rank::BestSet;
use egm_rng::Rng;
use egm_simnet::{NodeId, SimDuration};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything a strategy may consult while deciding.
///
/// Borrowed for the duration of one decision; the monitor is the node's
/// [`PerformanceMonitor`] (§3.2).
pub struct StrategyCtx<'a> {
    /// The deciding node.
    pub me: NodeId,
    /// The node's private RNG stream.
    pub rng: &'a mut Rng,
    /// The node's performance monitor.
    pub monitor: &'a dyn PerformanceMonitor,
}

impl std::fmt::Debug for StrategyCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyCtx")
            .field("me", &self.me)
            .finish_non_exhaustive()
    }
}

/// A payload transmission strategy (the Transmission Strategy module of
/// Fig. 1).
///
/// `Send` is required so nodes — and the strategies they own — can be
/// partitioned across the sharded simulator's worker threads.
pub trait TransmissionStrategy: std::fmt::Debug + Send {
    /// `Eager?(i, d, r, p)`: whether to send the payload of message `id`
    /// at round `round` to peer `to` eagerly (`true`) or advertise it
    /// lazily (`false`).
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, to: NodeId, id: MsgId, round: u32) -> bool;

    /// Delay between the first `IHAVE` for a missing message and the first
    /// `IWANT`. `ZERO` (the Flat/TTL/Ranked behaviour) requests
    /// immediately; Radius-style strategies wait `T0`, the latency to
    /// nodes within the radius, hoping an eager copy arrives first.
    fn first_request_delay(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// Picks which known source to request a missing payload from:
    /// returns an index into `sources` (non-empty). The default takes the
    /// oldest advertisement (FIFO); environment-aware strategies pick the
    /// nearest source.
    fn pick_source(&mut self, ctx: &mut StrategyCtx<'_>, sources: &[NodeId]) -> usize {
        let _ = ctx;
        debug_assert!(!sources.is_empty());
        0
    }

    /// Feedback: the node received the payload of a message for the
    /// first time from `from`. Default: ignored. Adaptive strategies use
    /// this together with [`TransmissionStrategy::on_duplicate`] to
    /// estimate redundancy.
    fn on_payload(&mut self, from: NodeId) {
        let _ = from;
    }

    /// Feedback: the node received a *redundant* payload copy from
    /// `from`. Default: ignored.
    fn on_duplicate(&mut self, from: NodeId) {
        let _ = from;
    }

    /// Replaces the strategy's shared [`BestSet`], if it holds one — the
    /// online re-ranking hook: when hubs are re-ranked mid-run (e.g.
    /// under churn) every node is handed the fresh set through this
    /// method. Strategies without rank state (Flat, TTL, Radius,
    /// Adaptive) ignore it.
    fn rebind_best(&mut self, best: Arc<BestSet>) {
        let _ = best;
    }

    /// Human-readable label for reports.
    fn label(&self) -> String;
}

/// Picks the source with the smallest monitor metric (ties to the first).
pub(crate) fn nearest_source(ctx: &mut StrategyCtx<'_>, sources: &[NodeId]) -> usize {
    debug_assert!(!sources.is_empty());
    let mut best = 0;
    let mut best_metric = f64::INFINITY;
    for (i, &s) in sources.iter().enumerate() {
        let m = ctx.monitor.metric(ctx.me, s);
        if m < best_metric {
            best_metric = m;
            best = i;
        }
    }
    best
}

/// Declarative strategy configuration, buildable into per-node strategy
/// instances. This is what experiment scenarios serialize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// [`Flat`] with eager probability `pi`.
    Flat {
        /// Probability of eager push per `L-Send`.
        pi: f64,
    },
    /// [`Ttl`]: eager while `round < u`.
    Ttl {
        /// Eager-round threshold `u`.
        u: u32,
    },
    /// [`Radius`]: eager while `Metric(p) < rho`.
    Radius {
        /// The radius `ρ` in monitor units.
        rho: f64,
        /// First-request delay `T0` in milliseconds.
        t0_ms: f64,
    },
    /// [`Ranked`]: eager when either endpoint is a best node.
    Ranked {
        /// Fraction of nodes ranked best (hub share), in `(0, 1]`.
        best_fraction: f64,
    },
    /// [`Adaptive`] (extension): Flat whose eager probability is tuned at
    /// runtime from the observed duplicate ratio.
    Adaptive {
        /// Starting eager probability.
        initial_pi: f64,
        /// Target fraction of received payloads that are duplicates.
        target_duplicate_ratio: f64,
    },
    /// [`Combined`] hybrid of TTL, Radius and Ranked (§6.4).
    Combined {
        /// Fraction of nodes ranked best.
        best_fraction: f64,
        /// Radius `ρ`; doubled while `round < u`.
        rho: f64,
        /// Round threshold `u` below which the radius is `2ρ`.
        u: u32,
        /// First-request delay `T0` in milliseconds.
        t0_ms: f64,
    },
}

impl StrategySpec {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            StrategySpec::Flat { pi } => format!("flat pi={pi:.2}"),
            StrategySpec::Ttl { u } => format!("ttl u={u}"),
            StrategySpec::Radius { rho, .. } => format!("radius rho={rho:.1}"),
            StrategySpec::Ranked { best_fraction } => {
                format!("ranked best={:.0}%", best_fraction * 100.0)
            }
            StrategySpec::Adaptive {
                target_duplicate_ratio,
                ..
            } => {
                format!("adaptive target={target_duplicate_ratio:.2}")
            }
            StrategySpec::Combined { rho, u, .. } => format!("combined rho={rho:.1} u={u}"),
        }
    }

    /// Whether this strategy requires a [`BestSet`].
    pub fn needs_best_set(&self) -> bool {
        matches!(
            self,
            StrategySpec::Ranked { .. } | StrategySpec::Combined { .. }
        )
    }

    /// The best-node fraction, if the strategy uses one.
    pub fn best_fraction(&self) -> Option<f64> {
        match self {
            StrategySpec::Ranked { best_fraction }
            | StrategySpec::Combined { best_fraction, .. } => Some(*best_fraction),
            _ => None,
        }
    }

    /// Builds the per-node strategy instance.
    ///
    /// `best` must contain the shared best set when
    /// [`StrategySpec::needs_best_set`] is true.
    ///
    /// # Panics
    ///
    /// Panics if a required best set is missing or a parameter is out of
    /// range (e.g. `pi` outside `[0, 1]`).
    pub fn build(&self, best: Option<Arc<BestSet>>) -> Box<dyn TransmissionStrategy> {
        match self {
            StrategySpec::Flat { pi } => Box::new(Flat::new(*pi)),
            StrategySpec::Ttl { u } => Box::new(Ttl::new(*u)),
            StrategySpec::Radius { rho, t0_ms } => {
                Box::new(Radius::new(*rho, SimDuration::from_ms(*t0_ms)))
            }
            StrategySpec::Ranked { .. } => {
                let best = best.expect("Ranked strategy requires a best set");
                Box::new(Ranked::new(best))
            }
            StrategySpec::Adaptive {
                initial_pi,
                target_duplicate_ratio,
            } => Box::new(Adaptive::new(*initial_pi, *target_duplicate_ratio)),
            StrategySpec::Combined { rho, u, t0_ms, .. } => {
                let best = best.expect("Combined strategy requires a best set");
                Box::new(Combined::new(best, *rho, *u, SimDuration::from_ms(*t0_ms)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NullMonitor;

    pub(crate) fn ctx_with<'a>(
        rng: &'a mut Rng,
        monitor: &'a dyn PerformanceMonitor,
    ) -> StrategyCtx<'a> {
        StrategyCtx {
            me: NodeId(0),
            rng,
            monitor,
        }
    }

    #[test]
    fn spec_labels_are_descriptive() {
        assert_eq!(StrategySpec::Flat { pi: 0.25 }.label(), "flat pi=0.25");
        assert_eq!(StrategySpec::Ttl { u: 2 }.label(), "ttl u=2");
        assert!(StrategySpec::Radius {
            rho: 25.0,
            t0_ms: 30.0
        }
        .label()
        .contains("radius"));
        assert!(StrategySpec::Ranked { best_fraction: 0.2 }
            .label()
            .contains("20%"));
        assert!(StrategySpec::Combined {
            best_fraction: 0.2,
            rho: 25.0,
            u: 2,
            t0_ms: 30.0
        }
        .label()
        .contains("combined"));
    }

    #[test]
    fn needs_best_set_only_for_ranked_family() {
        assert!(!StrategySpec::Flat { pi: 0.5 }.needs_best_set());
        assert!(!StrategySpec::Ttl { u: 1 }.needs_best_set());
        assert!(!StrategySpec::Radius {
            rho: 1.0,
            t0_ms: 1.0
        }
        .needs_best_set());
        assert!(StrategySpec::Ranked { best_fraction: 0.2 }.needs_best_set());
        assert!(StrategySpec::Combined {
            best_fraction: 0.2,
            rho: 1.0,
            u: 1,
            t0_ms: 1.0
        }
        .needs_best_set());
    }

    #[test]
    #[should_panic(expected = "requires a best set")]
    fn building_ranked_without_best_set_panics() {
        let _ = StrategySpec::Ranked { best_fraction: 0.2 }.build(None);
    }

    #[test]
    fn build_produces_labelled_strategies() {
        let best = BestSet::from_ids(4, &[NodeId(0)]).shared();
        for spec in [
            StrategySpec::Flat { pi: 0.5 },
            StrategySpec::Ttl { u: 2 },
            StrategySpec::Radius {
                rho: 10.0,
                t0_ms: 15.0,
            },
            StrategySpec::Ranked {
                best_fraction: 0.25,
            },
            StrategySpec::Combined {
                best_fraction: 0.25,
                rho: 10.0,
                u: 2,
                t0_ms: 15.0,
            },
        ] {
            let s = spec.build(Some(Arc::clone(&best)));
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn nearest_source_picks_minimum_metric() {
        #[derive(Debug)]
        struct FakeMonitor;
        impl PerformanceMonitor for FakeMonitor {
            fn metric(&self, _me: NodeId, p: NodeId) -> f64 {
                // node 2 is closest
                match p.index() {
                    2 => 1.0,
                    _ => 10.0 + p.index() as f64,
                }
            }
        }
        let mut rng = Rng::seed_from_u64(1);
        let monitor = FakeMonitor;
        let mut ctx = ctx_with(&mut rng, &monitor);
        let sources = [NodeId(5), NodeId(2), NodeId(7)];
        assert_eq!(nearest_source(&mut ctx, &sources), 1);
    }

    #[test]
    fn default_pick_source_is_fifo() {
        let mut flat = Flat::new(0.5);
        let mut rng = Rng::seed_from_u64(2);
        let monitor = NullMonitor;
        let mut ctx = ctx_with(&mut rng, &monitor);
        assert_eq!(flat.pick_source(&mut ctx, &[NodeId(9), NodeId(1)]), 0);
    }
}
