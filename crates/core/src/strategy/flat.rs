//! The Flat strategy (§4.1): Bernoulli eager push.

use super::{StrategyCtx, TransmissionStrategy};
use crate::id::MsgId;
use egm_simnet::NodeId;

/// `Eager?` returns `true` with probability `pi`.
///
/// With `pi = 1` this is pure eager push gossip; with `pi = 0`, pure lazy
/// push; in between it trades bandwidth for latency uniformly, with no
/// knowledge of the environment — the paper's baseline (Fig. 5(a)).
///
/// Retransmission scheduling: the first request is issued immediately upon
/// the first `IHAVE`; further requests every `T` (the node's retry
/// interval) while sources are known.
///
/// # Examples
///
/// ```
/// use egm_core::strategy::Flat;
/// use egm_core::TransmissionStrategy;
///
/// let eager = Flat::new(1.0);
/// assert_eq!(eager.label(), "flat pi=1.00");
/// ```
#[derive(Debug, Clone)]
pub struct Flat {
    pi: f64,
}

impl Flat {
    /// Creates the strategy with eager probability `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is outside `[0, 1]`.
    pub fn new(pi: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pi),
            "pi must be a probability, got {pi}"
        );
        Flat { pi }
    }

    /// The configured eager probability.
    pub fn pi(&self) -> f64 {
        self.pi
    }
}

impl TransmissionStrategy for Flat {
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, _to: NodeId, _id: MsgId, _round: u32) -> bool {
        ctx.rng.bool(self.pi)
    }

    fn label(&self) -> String {
        format!("flat pi={:.2}", self.pi)
    }
}

#[cfg(test)]
mod tests {
    use super::Flat;
    use crate::id::MsgId;
    use crate::monitor::NullMonitor;
    use crate::strategy::{StrategyCtx, TransmissionStrategy};
    use egm_rng::Rng;
    use egm_simnet::NodeId;

    fn eager_fraction(pi: f64, trials: u32) -> f64 {
        let mut s = Flat::new(pi);
        let mut rng = Rng::seed_from_u64(7);
        let monitor = NullMonitor;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        let hits = (0..trials)
            .filter(|_| s.eager(&mut ctx, NodeId(1), MsgId::from_raw(1), 0))
            .count();
        hits as f64 / trials as f64
    }

    #[test]
    fn extremes_are_pure_eager_and_pure_lazy() {
        assert_eq!(eager_fraction(1.0, 1000), 1.0);
        assert_eq!(eager_fraction(0.0, 1000), 0.0);
    }

    #[test]
    fn intermediate_pi_is_calibrated() {
        let frac = eager_fraction(0.3, 100_000);
        assert!((frac - 0.3).abs() < 0.01, "eager fraction {frac}");
    }

    #[test]
    fn first_request_is_immediate() {
        use egm_simnet::SimDuration;
        assert_eq!(Flat::new(0.5).first_request_delay(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_pi_panics() {
        let _ = Flat::new(1.5);
    }
}
