//! The Ranked strategy (§4.1): hubs-and-spokes through best nodes.

use super::{StrategyCtx, TransmissionStrategy};
use crate::id::MsgId;
use crate::rank::BestSet;
use egm_simnet::NodeId;
use std::sync::Arc;

/// `Eager?` returns `true` iff either endpoint is a *best node*.
///
/// Payload flows eagerly whenever a hub is involved, making a small set of
/// well-provisioned nodes carry most transmissions — the emergent
/// super-node structure of Fig. 4(c). Regular-to-regular exchanges are
/// lazy, so spokes receive ≈1 payload per message.
///
/// Retransmission scheduling is as in Flat: request immediately, retry
/// every `T`.
///
/// # Examples
///
/// ```
/// use egm_core::rank::BestSet;
/// use egm_core::strategy::Ranked;
/// use egm_core::TransmissionStrategy;
/// use egm_simnet::NodeId;
///
/// let best = BestSet::from_ids(4, &[NodeId(0)]).shared();
/// let s = Ranked::new(best);
/// assert!(s.label().contains("ranked"));
/// ```
#[derive(Debug, Clone)]
pub struct Ranked {
    best: Arc<BestSet>,
}

impl Ranked {
    /// Creates the strategy over a shared best set.
    pub fn new(best: Arc<BestSet>) -> Self {
        Ranked { best }
    }

    /// The shared best set.
    pub fn best(&self) -> &BestSet {
        &self.best
    }
}

impl TransmissionStrategy for Ranked {
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, to: NodeId, _id: MsgId, _round: u32) -> bool {
        self.best.is_best(ctx.me) || self.best.is_best(to)
    }

    fn rebind_best(&mut self, best: Arc<BestSet>) {
        self.best = best;
    }

    fn label(&self) -> String {
        format!("ranked best={}", self.best.best_count())
    }
}

#[cfg(test)]
mod tests {
    use super::Ranked;
    use crate::id::MsgId;
    use crate::monitor::NullMonitor;
    use crate::rank::BestSet;
    use crate::strategy::{StrategyCtx, TransmissionStrategy};
    use egm_rng::Rng;
    use egm_simnet::NodeId;

    fn decide(me: usize, to: usize) -> bool {
        let best = BestSet::from_ids(4, &[NodeId(0)]).shared();
        let mut s = Ranked::new(best);
        let mut rng = Rng::seed_from_u64(1);
        let monitor = NullMonitor;
        let mut ctx = StrategyCtx {
            me: NodeId(me),
            rng: &mut rng,
            monitor: &monitor,
        };
        s.eager(&mut ctx, NodeId(to), MsgId::from_raw(1), 0)
    }

    #[test]
    fn eager_when_sender_is_best() {
        assert!(decide(0, 1));
    }

    #[test]
    fn eager_when_receiver_is_best() {
        assert!(decide(2, 0));
    }

    #[test]
    fn lazy_between_regular_nodes() {
        assert!(!decide(1, 2));
        assert!(!decide(3, 1));
    }

    #[test]
    fn no_best_nodes_is_pure_lazy() {
        let best = BestSet::none(4).shared();
        let mut s = Ranked::new(best);
        let mut rng = Rng::seed_from_u64(2);
        let monitor = NullMonitor;
        let mut ctx = StrategyCtx {
            me: NodeId(1),
            rng: &mut rng,
            monitor: &monitor,
        };
        for to in 0..4 {
            assert!(!s.eager(&mut ctx, NodeId(to), MsgId::from_raw(1), 0));
        }
        assert_eq!(s.best().best_count(), 0);
    }
}
