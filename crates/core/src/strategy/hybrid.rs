//! The hybrid "combined" strategy of §6.4.

use super::{nearest_source, StrategyCtx, TransmissionStrategy};
use crate::id::MsgId;
use crate::rank::BestSet;
use egm_simnet::{NodeId, SimDuration};
use std::sync::Arc;

/// The paper's hybrid heuristic, leveraging TTL, Radius and Ranked at
/// once. `Eager?(i, d, r, p)` returns `true` iff
///
/// * one of the involved nodes is a best node; **or**
/// * `Metric(p) < 2ρ` when `r < u`; **or**
/// * `Metric(p) < ρ` otherwise,
///
/// i.e. the radius shrinks as the round number grows (§6.4).
/// Retransmission scheduling is as in Radius: first request after `T0`,
/// nearest source first.
///
/// # Examples
///
/// ```
/// use egm_core::rank::BestSet;
/// use egm_core::strategy::Combined;
/// use egm_core::TransmissionStrategy;
/// use egm_simnet::SimDuration;
///
/// let best = BestSet::none(8).shared();
/// let s = Combined::new(best, 20.0, 2, SimDuration::from_ms(25.0));
/// assert!(s.label().contains("combined"));
/// ```
#[derive(Debug, Clone)]
pub struct Combined {
    best: Arc<BestSet>,
    rho: f64,
    u: u32,
    t0: SimDuration,
}

impl Combined {
    /// Creates the hybrid with best set, radius `rho`, round threshold `u`
    /// and first-request delay `t0`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is negative or non-finite.
    pub fn new(best: Arc<BestSet>, rho: f64, u: u32, t0: SimDuration) -> Self {
        assert!(
            rho.is_finite() && rho >= 0.0,
            "radius must be non-negative, got {rho}"
        );
        Combined { best, rho, u, t0 }
    }
}

impl TransmissionStrategy for Combined {
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, to: NodeId, _id: MsgId, round: u32) -> bool {
        if self.best.is_best(ctx.me) || self.best.is_best(to) {
            return true;
        }
        let radius = if round < self.u {
            2.0 * self.rho
        } else {
            self.rho
        };
        ctx.monitor.metric(ctx.me, to) < radius
    }

    fn first_request_delay(&self) -> SimDuration {
        self.t0
    }

    fn pick_source(&mut self, ctx: &mut StrategyCtx<'_>, sources: &[NodeId]) -> usize {
        nearest_source(ctx, sources)
    }

    fn rebind_best(&mut self, best: Arc<BestSet>) {
        self.best = best;
    }

    fn label(&self) -> String {
        format!(
            "combined rho={:.1} u={} best={}",
            self.rho,
            self.u,
            self.best.best_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::Combined;
    use crate::id::MsgId;
    use crate::monitor::PerformanceMonitor;
    use crate::rank::BestSet;
    use crate::strategy::{StrategyCtx, TransmissionStrategy};
    use egm_rng::Rng;
    use egm_simnet::{NodeId, SimDuration};

    #[derive(Debug)]
    struct Linear;
    impl PerformanceMonitor for Linear {
        fn metric(&self, _me: NodeId, p: NodeId) -> f64 {
            p.index() as f64 * 10.0
        }
    }

    fn decide(me: usize, to: usize, round: u32) -> bool {
        // node 9 is best; rho = 25, u = 2.
        let best = BestSet::from_ids(10, &[NodeId(9)]).shared();
        let mut s = Combined::new(best, 25.0, 2, SimDuration::from_ms(25.0));
        let mut rng = Rng::seed_from_u64(1);
        let monitor = Linear;
        let mut ctx = StrategyCtx {
            me: NodeId(me),
            rng: &mut rng,
            monitor: &monitor,
        };
        s.eager(&mut ctx, NodeId(to), MsgId::from_raw(1), round)
    }

    #[test]
    fn best_node_involvement_is_always_eager() {
        assert!(decide(9, 8, 5), "best sender");
        assert!(decide(1, 9, 5), "best receiver (metric 90 > radius)");
    }

    #[test]
    fn radius_is_doubled_in_early_rounds() {
        // metric(4) = 40: inside 2ρ=50 but outside ρ=25.
        assert!(decide(0, 4, 0));
        assert!(decide(0, 4, 1));
        assert!(!decide(0, 4, 2), "radius shrinks at round u");
        assert!(!decide(0, 4, 3));
    }

    #[test]
    fn close_peers_stay_eager_in_late_rounds() {
        // metric(2) = 20 < ρ.
        assert!(decide(0, 2, 5));
        // metric(6) = 60 > 2ρ: never eager for regular nodes.
        assert!(!decide(0, 6, 0));
    }

    #[test]
    fn scheduling_matches_radius_behaviour() {
        let best = BestSet::none(4).shared();
        let mut s = Combined::new(best, 25.0, 2, SimDuration::from_ms(30.0));
        assert_eq!(s.first_request_delay(), SimDuration::from_ms(30.0));
        let mut rng = Rng::seed_from_u64(2);
        let monitor = Linear;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        assert_eq!(s.pick_source(&mut ctx, &[NodeId(3), NodeId(1)]), 1);
    }
}
