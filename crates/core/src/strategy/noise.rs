//! Traffic-preserving noise injection (§4.3).

use super::{StrategyCtx, TransmissionStrategy};
use crate::id::MsgId;
use crate::rank::BestSet;
use egm_simnet::{NodeId, SimDuration};
use std::sync::Arc;

/// Wraps a strategy and blurs its `Eager?` decisions without changing the
/// expected amount of eager traffic.
///
/// Each query's crisp outcome `v ∈ {0, 1}` is remapped to
/// `v' = c + (v − c)(1 − o)` and a Bernoulli draw with probability `v'`
/// becomes the answer. `c` is the strategy's overall eager rate
/// (calibrated by `egm-workload::calibrate`), so the expected number of
/// eager transmissions is unchanged; `o` is the noise ratio: at `o = 0`
/// decisions are untouched, at `o = 1` the strategy degenerates to
/// `Flat(c)` and all structure is erased (Fig. 6).
///
/// # Examples
///
/// ```
/// use egm_core::strategy::{Flat, Noisy};
/// use egm_core::TransmissionStrategy;
///
/// let s = Noisy::new(Flat::new(0.2), 0.2, 0.5);
/// assert!(s.label().contains("noise=50%"));
/// ```
#[derive(Debug, Clone)]
pub struct Noisy<S> {
    inner: S,
    c: f64,
    o: f64,
}

impl<S: TransmissionStrategy> Noisy<S> {
    /// Wraps `inner` with calibration constant `c` (its overall eager
    /// rate) and noise ratio `o`.
    ///
    /// # Panics
    ///
    /// Panics if `c` or `o` is outside `[0, 1]`.
    pub fn new(inner: S, c: f64, o: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&c),
            "calibration constant must be a probability"
        );
        assert!((0.0..=1.0).contains(&o), "noise ratio must be in [0, 1]");
        Noisy { inner, c, o }
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The noise ratio `o`.
    pub fn noise(&self) -> f64 {
        self.o
    }
}

impl<S: TransmissionStrategy> TransmissionStrategy for Noisy<S> {
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, to: NodeId, id: MsgId, round: u32) -> bool {
        let v = if self.inner.eager(ctx, to, id, round) {
            1.0
        } else {
            0.0
        };
        let v_prime = self.c + (v - self.c) * (1.0 - self.o);
        ctx.rng.bool(v_prime)
    }

    fn first_request_delay(&self) -> SimDuration {
        self.inner.first_request_delay()
    }

    fn pick_source(&mut self, ctx: &mut StrategyCtx<'_>, sources: &[NodeId]) -> usize {
        self.inner.pick_source(ctx, sources)
    }

    fn on_payload(&mut self, from: NodeId) {
        self.inner.on_payload(from);
    }

    fn on_duplicate(&mut self, from: NodeId) {
        self.inner.on_duplicate(from);
    }

    fn rebind_best(&mut self, best: Arc<BestSet>) {
        self.inner.rebind_best(best);
    }

    fn label(&self) -> String {
        format!("{} noise={:.0}%", self.inner.label(), self.o * 100.0)
    }
}

/// Boxed-strategy convenience: noise over an already-built strategy.
impl Noisy<Box<dyn TransmissionStrategy>> {
    /// Wraps a boxed strategy (used by the experiment runner, which builds
    /// strategies from [`StrategySpec`](crate::StrategySpec)s).
    pub fn boxed(
        inner: Box<dyn TransmissionStrategy>,
        c: f64,
        o: f64,
    ) -> Box<dyn TransmissionStrategy> {
        assert!(
            (0.0..=1.0).contains(&c),
            "calibration constant must be a probability"
        );
        assert!((0.0..=1.0).contains(&o), "noise ratio must be in [0, 1]");
        Box::new(Noisy { inner, c, o })
    }
}

impl TransmissionStrategy for Box<dyn TransmissionStrategy> {
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, to: NodeId, id: MsgId, round: u32) -> bool {
        (**self).eager(ctx, to, id, round)
    }

    fn first_request_delay(&self) -> SimDuration {
        (**self).first_request_delay()
    }

    fn pick_source(&mut self, ctx: &mut StrategyCtx<'_>, sources: &[NodeId]) -> usize {
        (**self).pick_source(ctx, sources)
    }

    fn on_payload(&mut self, from: NodeId) {
        (**self).on_payload(from);
    }

    fn on_duplicate(&mut self, from: NodeId) {
        (**self).on_duplicate(from);
    }

    fn rebind_best(&mut self, best: Arc<BestSet>) {
        (**self).rebind_best(best);
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

#[cfg(test)]
mod tests {
    use super::Noisy;
    use crate::id::MsgId;
    use crate::monitor::NullMonitor;
    use crate::strategy::{Flat, StrategyCtx, TransmissionStrategy, Ttl};
    use egm_rng::Rng;
    use egm_simnet::NodeId;

    fn eager_rate<S: TransmissionStrategy>(mut s: S, round: u32, trials: u32) -> f64 {
        let mut rng = Rng::seed_from_u64(5);
        let monitor = NullMonitor;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        let hits = (0..trials)
            .filter(|_| s.eager(&mut ctx, NodeId(1), MsgId::from_raw(1), round))
            .count();
        hits as f64 / trials as f64
    }

    #[test]
    fn zero_noise_is_transparent() {
        // TTL at round 0 with u=1 is always eager; noise 0 keeps it so.
        assert_eq!(eager_rate(Noisy::new(Ttl::new(1), 0.3, 0.0), 0, 1000), 1.0);
        assert_eq!(eager_rate(Noisy::new(Ttl::new(1), 0.3, 0.0), 5, 1000), 0.0);
    }

    #[test]
    fn full_noise_degenerates_to_flat_c() {
        // o=1: outcome is Bernoulli(c) regardless of the inner decision.
        let rate_eager_round = eager_rate(Noisy::new(Ttl::new(1), 0.3, 1.0), 0, 100_000);
        let rate_lazy_round = eager_rate(Noisy::new(Ttl::new(1), 0.3, 1.0), 5, 100_000);
        assert!((rate_eager_round - 0.3).abs() < 0.01, "{rate_eager_round}");
        assert!((rate_lazy_round - 0.3).abs() < 0.01, "{rate_lazy_round}");
    }

    #[test]
    fn expected_traffic_is_preserved_at_intermediate_noise() {
        // Inner eager rate is 0.3 (round 0 of a Flat(0.3) proxy: use TTL
        // mix). Use a strategy whose rate is exactly c and check the
        // blurred rate stays c: with v ~ Bernoulli(c),
        // E[v'] = c + (c - c)(1 - o) = c.
        for o in [0.25, 0.5, 0.75] {
            let rate = eager_rate(Noisy::new(Flat::new(0.3), 0.3, o), 0, 200_000);
            assert!((rate - 0.3).abs() < 0.01, "o={o}: rate {rate}");
        }
    }

    #[test]
    fn intermediate_noise_blurs_decisions() {
        // At o=0.5, an always-eager inner with c=0.3 should be eager with
        // probability 0.3 + 0.7*0.5 = 0.65.
        let rate = eager_rate(Noisy::new(Ttl::new(1), 0.3, 0.5), 0, 100_000);
        assert!((rate - 0.65).abs() < 0.01, "rate {rate}");
        // and a never-eager inner: 0.3*0.5 = 0.15.
        let rate = eager_rate(Noisy::new(Ttl::new(1), 0.3, 0.5), 5, 100_000);
        assert!((rate - 0.15).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn scheduling_is_delegated() {
        use egm_simnet::SimDuration;
        let s = Noisy::new(
            crate::strategy::Radius::new(10.0, SimDuration::from_ms(20.0)),
            0.1,
            0.5,
        );
        assert_eq!(s.first_request_delay(), SimDuration::from_ms(20.0));
        assert_eq!(s.inner().rho(), 10.0);
        assert_eq!(s.noise(), 0.5);
    }

    #[test]
    #[should_panic(expected = "noise ratio")]
    fn invalid_noise_panics() {
        let _ = Noisy::new(Flat::new(0.5), 0.5, 1.5);
    }
}
