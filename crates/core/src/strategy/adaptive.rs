//! Adaptive eagerness (extension beyond the paper).
//!
//! §8 of the paper calls the approach *"a promising base for building
//! large scale adaptive protocols, given that its operation does not
//! require tight global coordination"*. This strategy demonstrates that:
//! each node tunes its own Flat-style eager probability from purely local
//! feedback — the fraction of received payloads that were duplicates — so
//! the swarm converges toward a chosen redundancy budget without any
//! coordination. Correctness is unaffected by construction (any `Eager?`
//! policy is safe, §6.4).

use super::{StrategyCtx, TransmissionStrategy};
use crate::id::MsgId;
use egm_simnet::NodeId;

/// Number of payload receptions between adjustments.
const WINDOW: u64 = 16;

/// Proportional gain applied to the duplicate-ratio error.
const GAIN: f64 = 0.5;

/// Flat-style strategy whose eager probability follows the observed
/// duplicate ratio.
///
/// After every `WINDOW` (16) payload receptions the node compares the
/// windowed duplicate ratio `d / (d + p)` against the target and moves
/// `pi` proportionally: too many duplicates → push less eagerly; too few
/// (while below the eager ceiling) → push more.
///
/// # Examples
///
/// ```
/// use egm_core::strategy::Adaptive;
/// use egm_core::TransmissionStrategy;
///
/// let s = Adaptive::new(1.0, 0.3);
/// assert!(s.label().contains("adaptive"));
/// assert_eq!(s.pi(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adaptive {
    pi: f64,
    target: f64,
    fresh: u64,
    duplicates: u64,
}

impl Adaptive {
    /// Creates the strategy with a starting probability and a target
    /// duplicate ratio.
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside `[0, 1]`.
    pub fn new(initial_pi: f64, target_duplicate_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&initial_pi),
            "pi must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&target_duplicate_ratio),
            "target ratio must be in [0, 1]"
        );
        Adaptive {
            pi: initial_pi,
            target: target_duplicate_ratio,
            fresh: 0,
            duplicates: 0,
        }
    }

    /// The current eager probability.
    pub fn pi(&self) -> f64 {
        self.pi
    }

    /// The configured target duplicate ratio.
    pub fn target(&self) -> f64 {
        self.target
    }

    fn maybe_adjust(&mut self) {
        let total = self.fresh + self.duplicates;
        if total < WINDOW {
            return;
        }
        let ratio = self.duplicates as f64 / total as f64;
        self.pi = (self.pi - GAIN * (ratio - self.target)).clamp(0.0, 1.0);
        self.fresh = 0;
        self.duplicates = 0;
    }
}

impl TransmissionStrategy for Adaptive {
    fn eager(&mut self, ctx: &mut StrategyCtx<'_>, _to: NodeId, _id: MsgId, _round: u32) -> bool {
        ctx.rng.bool(self.pi)
    }

    fn on_payload(&mut self, _from: NodeId) {
        self.fresh += 1;
        self.maybe_adjust();
    }

    fn on_duplicate(&mut self, _from: NodeId) {
        self.duplicates += 1;
        self.maybe_adjust();
    }

    fn label(&self) -> String {
        format!("adaptive target={:.2}", self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::Adaptive;
    use crate::strategy::TransmissionStrategy;
    use egm_simnet::NodeId;

    #[test]
    fn high_duplication_lowers_pi() {
        let mut s = Adaptive::new(1.0, 0.2);
        // Feed a window dominated by duplicates.
        for _ in 0..4 {
            s.on_payload(NodeId(1));
        }
        for _ in 0..16 {
            s.on_duplicate(NodeId(1));
        }
        assert!(s.pi() < 1.0, "pi should fall, got {}", s.pi());
    }

    #[test]
    fn low_duplication_raises_pi() {
        let mut s = Adaptive::new(0.2, 0.5);
        for _ in 0..20 {
            s.on_payload(NodeId(1));
        }
        assert!(s.pi() > 0.2, "pi should rise, got {}", s.pi());
    }

    #[test]
    fn pi_stays_in_unit_interval() {
        let mut s = Adaptive::new(0.0, 0.0);
        for _ in 0..100 {
            s.on_duplicate(NodeId(1));
        }
        assert!(s.pi() >= 0.0);
        let mut s = Adaptive::new(1.0, 1.0);
        for _ in 0..100 {
            s.on_payload(NodeId(1));
        }
        assert!(s.pi() <= 1.0);
    }

    #[test]
    fn adjustment_waits_for_a_full_window() {
        let mut s = Adaptive::new(0.5, 0.0);
        for _ in 0..5 {
            s.on_duplicate(NodeId(1));
        }
        assert_eq!(s.pi(), 0.5, "no adjustment before the window fills");
    }

    #[test]
    #[should_panic(expected = "target ratio")]
    fn invalid_target_panics() {
        let _ = Adaptive::new(0.5, 2.0);
    }
}
