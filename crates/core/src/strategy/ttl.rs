//! The Time-To-Live strategy (§4.1): eager for the first rounds.

use super::{StrategyCtx, TransmissionStrategy};
use crate::id::MsgId;
use egm_simnet::NodeId;

/// `Eager?` returns `true` iff `round < u`.
///
/// The intuition (§4.1): during the first rounds the chance that a target
/// already holds the payload is small, so lazy push would only add
/// latency; duplicates concentrate in the later rounds, which is where
/// deferring pays. Note that `L-Send` rounds are 1-based (Fig. 2 relays at
/// `r + 1`, so even the source's own sends travel at round 1): `u <= 1` is
/// pure lazy push and `u > t` is pure eager push.
///
/// # Examples
///
/// ```
/// use egm_core::strategy::Ttl;
/// use egm_core::TransmissionStrategy;
///
/// let s = Ttl::new(2);
/// assert_eq!(s.label(), "ttl u=2");
/// ```
#[derive(Debug, Clone)]
pub struct Ttl {
    u: u32,
}

impl Ttl {
    /// Creates the strategy with eager-round threshold `u`.
    pub fn new(u: u32) -> Self {
        Ttl { u }
    }

    /// The configured threshold.
    pub fn u(&self) -> u32 {
        self.u
    }
}

impl TransmissionStrategy for Ttl {
    fn eager(&mut self, _ctx: &mut StrategyCtx<'_>, _to: NodeId, _id: MsgId, round: u32) -> bool {
        round < self.u
    }

    fn label(&self) -> String {
        format!("ttl u={}", self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::Ttl;
    use crate::id::MsgId;
    use crate::monitor::NullMonitor;
    use crate::strategy::{StrategyCtx, TransmissionStrategy};
    use egm_rng::Rng;
    use egm_simnet::NodeId;

    fn decide(u: u32, round: u32) -> bool {
        let mut s = Ttl::new(u);
        let mut rng = Rng::seed_from_u64(1);
        let monitor = NullMonitor;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        s.eager(&mut ctx, NodeId(1), MsgId::from_raw(1), round)
    }

    #[test]
    fn eager_strictly_below_threshold() {
        assert!(decide(2, 0));
        assert!(decide(2, 1));
        assert!(!decide(2, 2));
        assert!(!decide(2, 5));
    }

    #[test]
    fn zero_threshold_is_pure_lazy() {
        for r in 0..5 {
            assert!(!decide(0, r));
        }
    }

    #[test]
    fn huge_threshold_is_pure_eager() {
        for r in 0..10 {
            assert!(decide(100, r));
        }
    }
}
