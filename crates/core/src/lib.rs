//! Epidemic multicast with emergent structure — a Rust reproduction of
//! *"Emergent Structure in Unstructured Epidemic Multicast"* (Carvalho,
//! Pereira, Oliveira, Rodrigues — DSN 2007).
//!
//! Epidemic (gossip) multicast relays every message to `f` random peers,
//! achieving resilience and balanced load at the cost of many redundant
//! payload transmissions. Structured multicast builds a spanning tree for
//! efficiency but must rebuild it on failure. The paper combines both: a
//! **Payload Scheduler** below an unmodified push gossip layer decides,
//! per exchange, whether to push the payload *eagerly* or merely advertise
//! it (*lazy push*, `IHAVE`/`IWANT`). Because lazy paths lose the race
//! against eager ones, scheduling payload onto selected nodes and links
//! makes an efficient dissemination structure **emerge** from the gossip
//! protocol — without tree maintenance, and without touching gossip's
//! probabilistic guarantees.
//!
//! # Crate layout
//!
//! * [`gossip`] — the push gossip protocol (paper Fig. 2), strategy
//!   oblivious.
//! * [`scheduler`] — the Lazy Point-to-Point module (paper Fig. 3).
//! * [`strategy`] — `Eager?` policies: [`strategy::Flat`],
//!   [`strategy::Ttl`], [`strategy::Radius`], [`strategy::Ranked`], the
//!   hybrid [`strategy::Combined`] (§6.4) and the traffic-preserving
//!   [`strategy::Noisy`] wrapper (§4.3).
//! * [`monitor`] — `Metric(p)` providers: model-file oracles (latency /
//!   distance) and a ping-based runtime monitor.
//! * [`rank`] — best-node (hub) selection for Ranked/Combined: the
//!   O(n²) oracle, sampled centrality, and the decentralized
//!   gossip-sorted ranking, behind one [`RankSource`] switch.
//! * [`node`] — [`EgmNode`], the full protocol node running on
//!   [`egm_simnet`].
//!
//! # Examples
//!
//! Disseminate one message among 16 nodes with the Ranked strategy:
//!
//! ```
//! use egm_core::monitor::{Monitor, NullMonitor};
//! use egm_core::{EgmNode, ProtocolConfig, StrategySpec};
//! use egm_membership::bootstrap_views;
//! use egm_rng::Rng;
//! use egm_simnet::{NodeId, Sim, SimConfig, SimDuration, SimTime};
//!
//! let config = ProtocolConfig::default().with_fanout(5).with_shuffle_interval(None);
//! let spec = StrategySpec::Ranked { best_fraction: 0.25 };
//! let best = egm_core::rank::BestSet::from_ids(16, &[NodeId(0), NodeId(1)]).shared();
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let views = bootstrap_views(16, &config.view, &mut rng);
//! let nodes: Vec<EgmNode> = views
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, view)| {
//!         EgmNode::new(
//!             NodeId(i),
//!             config.clone(),
//!             view,
//!             spec.build(Some(best.clone())),
//!             Monitor::Null(NullMonitor),
//!         )
//!     })
//!     .collect();
//!
//! let mut sim = Sim::new(SimConfig::uniform(16, 10.0), 42, nodes);
//! sim.schedule_command(SimTime::from_ms(1.0), NodeId(3), 0);
//! sim.run_for(SimDuration::from_ms(5000.0));
//!
//! let delivered = sim.nodes().filter(|(_, n)| !n.deliveries().is_empty()).count();
//! assert_eq!(delivered, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod gossip;
pub mod id;
pub mod monitor;
pub mod msg;
pub mod node;
pub mod rank;
pub mod scheduler;
pub mod strategy;
pub mod util;

pub use config::ProtocolConfig;
pub use id::MsgId;
pub use monitor::MonitorSpec;
pub use msg::{EgmMessage, Payload};
pub use node::{DeliveryRecord, EgmNode, MulticastRecord, PublishChain};
pub use rank::{BestSet, RankSource};
pub use scheduler::SchedulerStats;
pub use strategy::{StrategySpec, TransmissionStrategy};
