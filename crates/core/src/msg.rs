//! Wire messages of the combined gossip + payload-scheduler protocol.

use crate::config::ProtocolConfig;
use crate::id::MsgId;
use egm_membership::ShuffleMsg;
use egm_simnet::Wire;
use serde::{Deserialize, Serialize};

/// Application payload descriptor.
///
/// The simulator does not ship actual bytes; a payload is its experiment
/// sequence number (used by the measurement harness to match deliveries to
/// multicasts) plus its declared size, which drives byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Payload {
    /// Harness-assigned multicast sequence number.
    pub seq: u64,
    /// Application payload size in bytes (256 in the paper, §5.3).
    pub bytes: u32,
}

/// Messages exchanged by protocol nodes.
///
/// `Msg`, `IHave` and `IWant` are the three message kinds of the Lazy
/// Point-to-Point module (Fig. 3); `Shuffle` carries the peer sampling
/// service; `Ping`/`Pong` feed the runtime performance monitor (§3.2's
/// note that the monitor *"may be required to exchange messages with its
/// peers, for instance, to measure roundtrip delays"*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EgmMessage {
    /// `MSG(i, d, r)` — full payload transmission at gossip round `r`.
    Msg {
        /// Message identifier.
        id: MsgId,
        /// The payload.
        payload: Payload,
        /// Gossip round the payload is travelling at.
        round: u32,
    },
    /// `IHAVE(i)` — advertisement that the sender holds payload `i`.
    IHave {
        /// Advertised message identifier.
        id: MsgId,
    },
    /// `IWANT(i)` — request for the payload of a previously advertised
    /// message.
    IWant {
        /// Requested message identifier.
        id: MsgId,
    },
    /// Membership shuffle traffic.
    ///
    /// Boxed: shuffles are rare (one per node per shuffle interval)
    /// compared to payload/advertisement traffic, and inlining the
    /// entry vector would widen every `EgmMessage` — and with it every
    /// event-queue entry in the simulator — for the common variants.
    Shuffle(Box<ShuffleMsg>),
    /// Round-trip probe from the runtime performance monitor.
    Ping {
        /// Send time in microseconds, echoed back in the pong.
        sent_us: u64,
    },
    /// Echo of a [`EgmMessage::Ping`].
    Pong {
        /// The probe's original send time in microseconds.
        sent_us: u64,
    },
}

impl EgmMessage {
    /// Computes this message's wire size under the given protocol framing
    /// configuration.
    pub fn size_with(&self, config: &ProtocolConfig) -> u32 {
        match self {
            EgmMessage::Msg { payload, .. } => config.header_bytes + payload.bytes,
            EgmMessage::IHave { .. } | EgmMessage::IWant { .. } => {
                config.header_bytes + MsgId::WIRE_BYTES
            }
            EgmMessage::Shuffle(s) => config.header_bytes + s.wire_bytes(),
            EgmMessage::Ping { .. } | EgmMessage::Pong { .. } => config.header_bytes + 8,
        }
    }
}

impl Wire for EgmMessage {
    fn wire_bytes(&self) -> u32 {
        // Wire accounting must not depend on per-node configuration, so
        // the default NeEM framing (24-byte header, §5.3) is used here;
        // `size_with` exists for configurations that change framing.
        self.size_with(&ProtocolConfig::default())
    }

    fn is_payload(&self) -> bool {
        matches!(self, EgmMessage::Msg { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::{EgmMessage, Payload};
    use crate::config::ProtocolConfig;
    use crate::id::MsgId;
    use egm_membership::ShuffleMsg;
    use egm_simnet::{NodeId, Wire};

    fn msg() -> EgmMessage {
        EgmMessage::Msg {
            id: MsgId::from_raw(1),
            payload: Payload { seq: 0, bytes: 256 },
            round: 2,
        }
    }

    #[test]
    fn payload_carries_neem_header() {
        // §5.3: 256-byte payload + 24-byte NeEM header.
        assert_eq!(msg().wire_bytes(), 280);
        assert!(msg().is_payload());
    }

    #[test]
    fn control_messages_are_small_and_not_payload() {
        let ihave = EgmMessage::IHave {
            id: MsgId::from_raw(2),
        };
        let iwant = EgmMessage::IWant {
            id: MsgId::from_raw(2),
        };
        assert_eq!(ihave.wire_bytes(), 40);
        assert_eq!(iwant.wire_bytes(), 40);
        assert!(!ihave.is_payload());
        assert!(!iwant.is_payload());
        let ping = EgmMessage::Ping { sent_us: 5 };
        assert_eq!(ping.wire_bytes(), 32);
        assert!(!ping.is_payload());
    }

    #[test]
    fn shuffle_size_scales_with_entries() {
        let s = EgmMessage::Shuffle(Box::new(ShuffleMsg::Request {
            entries: vec![NodeId(1), NodeId(2), NodeId(3)],
        }));
        assert_eq!(s.wire_bytes(), 24 + 4 + 24);
        assert!(!s.is_payload());
    }

    #[test]
    fn message_stays_small_for_the_event_queue() {
        // Every in-flight message sits in the simulator's event heap;
        // regressions here directly slow the event loop. 40 bytes =
        // 16 (MsgId) + 16 (Payload) + 4 (round) + discriminant, with the
        // rare Shuffle variant boxed down to a pointer.
        assert!(
            std::mem::size_of::<EgmMessage>() <= 40,
            "EgmMessage grew to {} bytes",
            std::mem::size_of::<EgmMessage>()
        );
        assert!(
            std::mem::align_of::<EgmMessage>() <= 8,
            "EgmMessage alignment grew (u128 field crept back in?)"
        );
    }

    #[test]
    fn size_with_respects_custom_header() {
        let config = ProtocolConfig {
            header_bytes: 100,
            ..ProtocolConfig::default()
        };
        assert_eq!(msg().size_with(&config), 356);
    }
}
