//! The Payload Scheduler's Lazy Point-to-Point module — Fig. 3 of the
//! paper.
//!
//! Sits between the gossip layer and the transport: every `L-Send` is
//! either materialized as a full `MSG` (eager push) or replaced by an
//! `IHAVE` advertisement with the payload cached for later `IWANT`
//! requests (lazy push). The receiving side queues advertised-but-missing
//! messages and schedules `IWANT`s according to the Transmission Strategy:
//! first request after [`TransmissionStrategy::first_request_delay`], then
//! periodically every `T` while sources are known, rotating through
//! sources so that *"a queue eventually clears itself as requests on all
//! known sources for a given message identifier are scheduled"*.
//!
//! All per-message state — the received set `R`, payload cache `C`,
//! missing-message queue and holder lists — lives in the node's
//! [`MsgArena`], so the scheduler itself is just the policy plus its
//! counters: an event pays one arena slot access instead of several hash
//! probes.

use crate::arena::MsgArena;
use crate::config::ProtocolConfig;
use crate::id::MsgId;
use crate::msg::{EgmMessage, Payload};
use crate::strategy::{StrategyCtx, TransmissionStrategy};
use egm_simnet::{NodeId, SimDuration};

/// Per-node scheduler counters, exposed for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Payloads pushed eagerly.
    pub eager_sends: u64,
    /// `IHAVE` advertisements sent instead of payload.
    pub lazy_advertisements: u64,
    /// `IWANT` requests issued.
    pub requests_sent: u64,
    /// Payload transmissions answering `IWANT`s.
    pub request_replies: u64,
    /// `IWANT`s that missed the cache (payload already evicted).
    pub request_misses: u64,
    /// Payloads received more than once.
    pub duplicate_payloads: u64,
    /// Transmissions skipped because the target was already known to hold
    /// the message (NeEM-style suppression, off by default).
    pub suppressed_sends: u64,
    /// Request-timer expiries that found the message already resolved
    /// (payload arrived or entry vanished). With index-free timer
    /// cancellation in the embedding node these pops should never happen:
    /// the node cancels the retry timer the moment the payload resolves,
    /// so the stale heap event is dropped before dispatch. A non-zero
    /// count means dead timer events are reaching the scheduler again.
    pub resolved_timer_pops: u64,
}

/// Outcome of a request-timer expiry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestAction {
    /// Payload arrived meanwhile (or the entry vanished): stop requesting.
    Resolved,
    /// Send `IWANT(id)` to the node and re-check after the retry interval.
    Request(NodeId, SimDuration),
}

/// The Lazy Point-to-Point module (Fig. 3).
///
/// A pure state machine over the node's [`MsgArena`]: the embedding node
/// owns the timers and the transport, and translates the returned values
/// into sends and timer arms. See `egm-core`'s `node` module for the full
/// wiring.
#[derive(Debug)]
pub struct PayloadScheduler {
    suppress_known: bool,
    retry_interval: SimDuration,
    stats: SchedulerStats,
    /// Scratch for [`MsgArena::missing_candidates_into`], reused across
    /// request-timer expiries to keep the retry path allocation-free.
    scratch_idx: Vec<usize>,
    /// Scratch candidate sources handed to the strategy's `pick_source`.
    scratch_sources: Vec<NodeId>,
}

impl PayloadScheduler {
    /// Creates the scheduler from the node configuration.
    pub fn new(config: &ProtocolConfig) -> Self {
        PayloadScheduler {
            suppress_known: config.suppress_known,
            retry_interval: config.retry_interval,
            stats: SchedulerStats::default(),
            scratch_idx: Vec::new(),
            scratch_sources: Vec::new(),
        }
    }

    /// Scheduler counters.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// `L-Send(i, d, r, p)` (line 19): consult `Eager?` and produce either
    /// the full `MSG` or an `IHAVE` (caching the payload for later
    /// requests). Returns `None` when NeEM-style suppression is enabled
    /// and the target is already known to hold the message.
    #[allow(clippy::too_many_arguments)]
    pub fn l_send(
        &mut self,
        ctx: &mut StrategyCtx<'_>,
        strategy: &mut dyn TransmissionStrategy,
        arena: &mut MsgArena,
        slot: u32,
        id: MsgId,
        payload: Payload,
        round: u32,
        to: NodeId,
    ) -> Option<EgmMessage> {
        if self.suppress_known && arena.is_holder(slot, to) {
            self.stats.suppressed_sends += 1;
            return None;
        }
        if strategy.eager(ctx, to, id, round) {
            self.stats.eager_sends += 1;
            Some(EgmMessage::Msg { id, payload, round })
        } else {
            arena.cache_put(slot, payload, round); // line 23: C[i] = (d, r)
            self.stats.lazy_advertisements += 1;
            Some(EgmMessage::IHave { id })
        }
    }

    /// `Receive(MSG(i, d, r), s)` (line 28): returns the payload to hand
    /// to the gossip layer (`L-Receive`), or `None` for duplicates.
    pub fn on_msg(
        &mut self,
        arena: &mut MsgArena,
        slot: u32,
        payload: Payload,
        round: u32,
    ) -> Option<(Payload, u32)> {
        if !arena.mark_received(slot) {
            self.stats.duplicate_payloads += 1;
            return None; // line 29: i ∈ R
        }
        arena.missing_clear(slot); // line 31: Clear(i)
        Some((payload, round))
    }

    /// `Receive(IHAVE(i), s)` (line 25): queue the source; returns the
    /// delay after which the *first* request should fire when this is a
    /// newly missing message (the caller arms a timer), or `None` when a
    /// timer is already pending or the payload is already here.
    pub fn on_ihave(
        &mut self,
        strategy: &dyn TransmissionStrategy,
        arena: &mut MsgArena,
        slot: u32,
        from: NodeId,
    ) -> Option<SimDuration> {
        if arena.is_received(slot) {
            return None; // line 26: i ∈ R
        }
        if arena.is_missing(slot) {
            arena.missing_add_source(slot, from); // Queue(i, s), timer armed
            None
        } else {
            arena.missing_start(slot, from);
            Some(strategy.first_request_delay())
        }
    }

    /// `Receive(IWANT(i), s)` (line 33): answer from the cache.
    ///
    /// The paper notes a request can only follow our own advertisement, so
    /// the payload "is guaranteed to be locally known" — with a bounded
    /// cache an eviction can break that guarantee, which is counted in
    /// [`SchedulerStats::request_misses`].
    pub fn on_iwant(&mut self, arena: &MsgArena, id: MsgId) -> Option<EgmMessage> {
        match arena.lookup(&id).and_then(|slot| arena.cache_get(slot)) {
            Some((payload, round)) => {
                self.stats.request_replies += 1;
                Some(EgmMessage::Msg { id, payload, round })
            }
            None => {
                self.stats.request_misses += 1;
                None
            }
        }
    }

    /// Request-timer expiry for the message in `slot` — the body of Task
    /// 2's `ScheduleNext()` loop (line 38): pick a source via the
    /// strategy, emit `IWANT`, and reschedule.
    pub fn on_request_timer(
        &mut self,
        ctx: &mut StrategyCtx<'_>,
        strategy: &mut dyn TransmissionStrategy,
        arena: &mut MsgArena,
        slot: u32,
    ) -> RequestAction {
        if arena.is_received(slot) {
            arena.missing_clear(slot);
            self.stats.resolved_timer_pops += 1;
            return RequestAction::Resolved;
        }
        if !arena.is_missing(slot) {
            self.stats.resolved_timer_pops += 1;
            return RequestAction::Resolved;
        }
        arena.missing_candidates_into(slot, &mut self.scratch_idx, &mut self.scratch_sources);
        debug_assert!(
            !self.scratch_idx.is_empty(),
            "missing entries always have a source"
        );
        let choice = strategy.pick_source(ctx, &self.scratch_sources);
        let source_idx = self.scratch_idx[choice.min(self.scratch_idx.len() - 1)];
        let source = arena.missing_mark_requested(slot, source_idx);
        self.stats.requests_sent += 1;
        RequestAction::Request(source, self.retry_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::{PayloadScheduler, RequestAction};
    use crate::arena::MsgArena;
    use crate::config::ProtocolConfig;
    use crate::id::MsgId;
    use crate::monitor::NullMonitor;
    use crate::msg::{EgmMessage, Payload};
    use crate::strategy::{Flat, StrategyCtx};
    use egm_rng::Rng;
    use egm_simnet::{NodeId, SimDuration};

    fn scheduler() -> (PayloadScheduler, MsgArena) {
        let config = ProtocolConfig::default();
        (
            PayloadScheduler::new(&config),
            MsgArena::new(
                config.known_capacity,
                config.cache_capacity,
                config.suppress_known,
            ),
        )
    }

    fn payload() -> Payload {
        Payload { seq: 1, bytes: 256 }
    }

    fn with_ctx<R>(f: impl FnOnce(&mut StrategyCtx<'_>) -> R) -> R {
        let mut rng = Rng::seed_from_u64(4);
        let monitor = NullMonitor;
        let mut ctx = StrategyCtx {
            me: NodeId(0),
            rng: &mut rng,
            monitor: &monitor,
        };
        f(&mut ctx)
    }

    #[test]
    fn eager_strategy_sends_full_message() {
        let (mut sched, mut arena) = scheduler();
        let mut eager = Flat::new(1.0);
        let id = MsgId::from_raw(1);
        let slot = arena.intern(id);
        let out = with_ctx(|ctx| {
            sched.l_send(
                ctx,
                &mut eager,
                &mut arena,
                slot,
                id,
                payload(),
                1,
                NodeId(2),
            )
        })
        .expect("not suppressed");
        assert!(matches!(out, EgmMessage::Msg { round: 1, .. }));
        assert_eq!(sched.stats().eager_sends, 1);
        assert_eq!(sched.stats().lazy_advertisements, 0);
    }

    #[test]
    fn lazy_strategy_advertises_and_caches() {
        let (mut sched, mut arena) = scheduler();
        let mut lazy = Flat::new(0.0);
        let id = MsgId::from_raw(2);
        let slot = arena.intern(id);
        let out = with_ctx(|ctx| {
            sched.l_send(
                ctx,
                &mut lazy,
                &mut arena,
                slot,
                id,
                payload(),
                2,
                NodeId(3),
            )
        })
        .expect("not suppressed");
        assert_eq!(out, EgmMessage::IHave { id });
        assert_eq!(sched.stats().lazy_advertisements, 1);
        // the cached payload answers IWANT with the original round
        let reply = sched.on_iwant(&arena, id).expect("cache hit");
        assert!(matches!(reply, EgmMessage::Msg { round: 2, .. }));
        assert_eq!(sched.stats().request_replies, 1);
    }

    #[test]
    fn iwant_miss_is_counted_not_fatal() {
        let (mut sched, arena) = scheduler();
        assert!(sched.on_iwant(&arena, MsgId::from_raw(99)).is_none());
        assert_eq!(sched.stats().request_misses, 1);
    }

    #[test]
    fn duplicate_payloads_are_dropped() {
        let (mut sched, mut arena) = scheduler();
        let id = MsgId::from_raw(3);
        let slot = arena.intern(id);
        assert!(sched.on_msg(&mut arena, slot, payload(), 1).is_some());
        assert!(sched.on_msg(&mut arena, slot, payload(), 2).is_none());
        assert_eq!(sched.stats().duplicate_payloads, 1);
        assert!(arena.has_received(&id));
    }

    #[test]
    fn first_ihave_arms_timer_with_strategy_delay() {
        let (mut sched, mut arena) = scheduler();
        let lazy = Flat::new(0.0);
        let id = MsgId::from_raw(4);
        let slot = arena.intern(id);
        let delay = sched.on_ihave(&lazy, &mut arena, slot, NodeId(5));
        assert_eq!(delay, Some(SimDuration::ZERO), "flat requests immediately");
        // second advertisement only queues the source, no new timer
        assert_eq!(sched.on_ihave(&lazy, &mut arena, slot, NodeId(6)), None);
        assert_eq!(arena.missing_count(), 1);
    }

    #[test]
    fn ihave_after_payload_is_ignored() {
        let (mut sched, mut arena) = scheduler();
        let lazy = Flat::new(0.0);
        let id = MsgId::from_raw(5);
        let slot = arena.intern(id);
        sched.on_msg(&mut arena, slot, payload(), 1);
        assert_eq!(sched.on_ihave(&lazy, &mut arena, slot, NodeId(5)), None);
        assert_eq!(arena.missing_count(), 0);
    }

    #[test]
    fn request_timer_rotates_through_sources() {
        let (mut sched, mut arena) = scheduler();
        let mut lazy = Flat::new(0.0);
        let id = MsgId::from_raw(6);
        let slot = arena.intern(id);
        sched.on_ihave(&lazy, &mut arena, slot, NodeId(10));
        sched.on_ihave(&lazy, &mut arena, slot, NodeId(11));
        let first = with_ctx(|ctx| sched.on_request_timer(ctx, &mut lazy, &mut arena, slot));
        let RequestAction::Request(s1, t) = first else {
            panic!("expected a request");
        };
        assert_eq!(t, SimDuration::from_ms(400.0));
        let second = with_ctx(|ctx| sched.on_request_timer(ctx, &mut lazy, &mut arena, slot));
        let RequestAction::Request(s2, _) = second else {
            panic!("expected a request");
        };
        assert_ne!(s1, s2, "rotation must try the other source");
        // Third request wraps around the rotation.
        let third = with_ctx(|ctx| sched.on_request_timer(ctx, &mut lazy, &mut arena, slot));
        assert!(matches!(third, RequestAction::Request(_, _)));
        assert_eq!(sched.stats().requests_sent, 3);
    }

    #[test]
    fn request_timer_resolves_after_payload_arrives() {
        let (mut sched, mut arena) = scheduler();
        let mut lazy = Flat::new(0.0);
        let id = MsgId::from_raw(7);
        let slot = arena.intern(id);
        sched.on_ihave(&lazy, &mut arena, slot, NodeId(10));
        sched.on_msg(&mut arena, slot, payload(), 1);
        let action = with_ctx(|ctx| sched.on_request_timer(ctx, &mut lazy, &mut arena, slot));
        assert_eq!(action, RequestAction::Resolved);
        assert_eq!(arena.missing_count(), 0);
        assert_eq!(sched.stats().requests_sent, 0);
    }

    #[test]
    fn suppression_skips_known_holders() {
        let config = ProtocolConfig {
            suppress_known: true,
            ..ProtocolConfig::default()
        };
        let mut sched = PayloadScheduler::new(&config);
        let mut arena = MsgArena::new(
            config.known_capacity,
            config.cache_capacity,
            config.suppress_known,
        );
        let mut eager = Flat::new(1.0);
        let id = MsgId::from_raw(50);
        let slot = arena.intern(id);
        arena.note_holder(slot, NodeId(7));
        assert!(arena.is_holder(slot, NodeId(7)));
        assert!(!arena.is_holder(slot, NodeId(8)));
        let to_holder = with_ctx(|ctx| {
            sched.l_send(
                ctx,
                &mut eager,
                &mut arena,
                slot,
                id,
                payload(),
                1,
                NodeId(7),
            )
        });
        assert!(
            to_holder.is_none(),
            "send to a known holder must be suppressed"
        );
        assert_eq!(sched.stats().suppressed_sends, 1);
        let to_other = with_ctx(|ctx| {
            sched.l_send(
                ctx,
                &mut eager,
                &mut arena,
                slot,
                id,
                payload(),
                1,
                NodeId(8),
            )
        });
        assert!(to_other.is_some());
    }

    #[test]
    fn suppression_is_off_by_default() {
        let (mut sched, mut arena) = scheduler();
        let mut eager = Flat::new(1.0);
        let id = MsgId::from_raw(51);
        let slot = arena.intern(id);
        arena.note_holder(slot, NodeId(7));
        let out = with_ctx(|ctx| {
            sched.l_send(
                ctx,
                &mut eager,
                &mut arena,
                slot,
                id,
                payload(),
                1,
                NodeId(7),
            )
        });
        assert!(out.is_some(), "pseudocode-faithful mode pushes regardless");
        assert_eq!(sched.stats().suppressed_sends, 0);
    }

    #[test]
    fn unknown_timer_is_resolved_quietly() {
        let (mut sched, mut arena) = scheduler();
        let mut lazy = Flat::new(0.0);
        let slot = arena.intern(MsgId::from_raw(77));
        let action = with_ctx(|ctx| sched.on_request_timer(ctx, &mut lazy, &mut arena, slot));
        assert_eq!(action, RequestAction::Resolved);
    }
}
