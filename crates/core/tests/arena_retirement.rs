//! Slot-reuse safety of horizon-based arena retirement.
//!
//! Retirement frees slots while handles (timer tags, FIFO entries) minted
//! for the old occupant may still be outstanding. The generation stamp is
//! the only thing standing between a recycled slot and state corruption,
//! so this suite drives the arena through random interleavings of
//! interning (with capacity-pressure eviction), delivery, retirement
//! scheduling and sweeps, and checks that
//!
//! 1. a handle minted before its slot was freed never validates again,
//! 2. the interning map and the slot array always agree, and
//! 3. the live/retired counters stay consistent with observable state.

use egm_core::arena::MsgArena;
use egm_core::MsgId;
use egm_simnet::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recycled_slots_never_validate_stale_handles(
        ops in proptest::collection::vec((0u32..8, 0u64..24, 0u64..50), 1..400),
    ) {
        // Small capacity so FIFO eviction and retirement race over the
        // same slots.
        let mut arena = MsgArena::new(6, 6, false);
        // Handles minted at intern time: (id, slot, generation, freed?).
        let mut handles: Vec<(u128, u32, u32)> = Vec::new();
        let mut now = 0u64;
        let mut retired_before = 0u64;
        for &(op, id_raw, dt) in &ops {
            now += dt; // virtual microseconds, monotone like sim time
            let now_t = SimTime::from_micros(now);
            let id = MsgId::from_raw(u128::from(id_raw));
            match op {
                // Intern (possibly evicting) and mint a handle.
                0..=3 => {
                    let slot = arena.intern(id);
                    handles.push((u128::from(id_raw), slot, arena.generation(slot)));
                }
                // Deliver: mark received and schedule retirement shortly
                // after "now".
                4 | 5 => {
                    if let Some(slot) = arena.lookup(&id) {
                        if !arena.is_received(slot) {
                            prop_assert!(arena.mark_received(slot));
                            arena.schedule_retire(slot, SimTime::from_micros(now + 20));
                        }
                    }
                }
                // Sweep.
                _ => {
                    let freed = arena.retire_expired(now_t);
                    let stats = arena.stats();
                    prop_assert_eq!(stats.retired, retired_before + freed as u64);
                    retired_before = stats.retired;
                }
            }
            // Invariant: every handle either still points at its message
            // (same generation, id agrees) or is detectably stale.
            for &(hid, slot, gen) in &handles {
                if arena.check_generation(slot, gen) {
                    // A valid handle must still name its message.
                    prop_assert_eq!(arena.slot_id(slot), MsgId::from_raw(hid));
                } else {
                    // Stale: the slot was freed (and possibly recycled for
                    // a different id). lookup() must never return it for
                    // the old id with the old generation.
                    if let Some(s) = arena.lookup(&MsgId::from_raw(hid)) {
                        prop_assert!(
                            s != slot || arena.generation(slot) != gen,
                            "freed handle resurrected"
                        );
                    }
                }
            }
            let stats = arena.stats();
            prop_assert!(stats.live <= 6, "live slots exceed capacity");
            prop_assert!(stats.high_water <= 6);
        }
    }
}
