//! Protocol-level trace tests: verify the Fig. 2 / Fig. 3 message flows
//! end-to-end on tiny deterministic networks.

use egm_core::monitor::{Monitor, NullMonitor};
use egm_core::{EgmNode, ProtocolConfig, StrategySpec};
use egm_membership::{PartialView, ViewConfig};
use egm_simnet::{NodeId, Sim, SimConfig, SimDuration, SimTime};

/// Builds an n-node chainable simulation with explicit views.
fn build(
    n: usize,
    spec: StrategySpec,
    views: Vec<Vec<usize>>,
    config: ProtocolConfig,
    delay_ms: f64,
) -> Sim<EgmNode> {
    let nodes: Vec<EgmNode> = views
        .into_iter()
        .enumerate()
        .map(|(i, peers)| {
            let mut view = PartialView::new(NodeId(i), config.view);
            for p in peers {
                view.insert(NodeId(p));
            }
            view.set_static(true);
            EgmNode::new(
                NodeId(i),
                config.clone(),
                view,
                spec.build(None),
                Monitor::Null(NullMonitor),
            )
        })
        .collect();
    Sim::new(SimConfig::uniform(n, delay_ms), 5, nodes)
}

fn base_config() -> ProtocolConfig {
    ProtocolConfig {
        fanout: 1,
        rounds: 4,
        view: ViewConfig {
            capacity: 2,
            shuffle_size: 1,
        },
        retry_interval: SimDuration::from_ms(100.0),
        shuffle_interval: None,
        ..ProtocolConfig::default()
    }
}

/// Eager chain: 0 → 1 → 2 → 3, one hop of 10 ms each. The MSG flow of
/// Fig. 2/Fig. 3 with `Eager?` always true.
#[test]
fn eager_chain_delivers_hop_by_hop() {
    let views = vec![vec![1], vec![2], vec![3], vec![2]];
    let mut sim = build(
        4,
        StrategySpec::Flat { pi: 1.0 },
        views,
        base_config(),
        10.0,
    );
    sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
    sim.run_for(SimDuration::from_ms(500.0));
    for (i, expect_ms) in [(0usize, 0.0), (1, 10.0), (2, 20.0), (3, 30.0)] {
        let d = sim.node(NodeId(i)).deliveries();
        assert_eq!(d.len(), 1, "node {i} must deliver once");
        assert_eq!(d[0].time, SimTime::from_ms(expect_ms), "node {i}");
        assert_eq!(d[0].round, i as u32);
    }
}

/// Lazy chain: each hop becomes IHAVE (10ms) + IWANT (10ms) + MSG (10ms),
/// i.e. 30ms per hop instead of 10 — the paper's "additional round-trip".
#[test]
fn lazy_chain_pays_one_round_trip_per_hop() {
    let views = vec![vec![1], vec![2], vec![0], vec![0]];
    let mut sim = build(
        4,
        StrategySpec::Flat { pi: 0.0 },
        views,
        base_config(),
        10.0,
    );
    sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
    sim.run_for(SimDuration::from_ms(1000.0));
    let d1 = sim.node(NodeId(1)).deliveries();
    assert_eq!(d1.len(), 1);
    assert_eq!(
        d1[0].time,
        SimTime::from_ms(30.0),
        "IHAVE+IWANT+MSG = 3 one-way delays"
    );
    let d2 = sim.node(NodeId(2)).deliveries();
    assert_eq!(d2.len(), 1);
    assert_eq!(d2[0].time, SimTime::from_ms(60.0));
}

/// Duplicate suppression: two eager senders targeting the same node yield
/// exactly one delivery and one duplicate tally.
#[test]
fn duplicates_are_absorbed_by_the_scheduler() {
    // 0 and 1 both know only 2; both multicast the relay of the same
    // message is impossible here, so instead node 2 receives two distinct
    // messages — use a diamond: 0 → {1, 2} → 3.
    let config = ProtocolConfig {
        fanout: 2,
        ..base_config()
    };
    let views = vec![vec![1, 2], vec![3, 0], vec![3, 0], vec![0, 1]];
    let mut sim = build(4, StrategySpec::Flat { pi: 1.0 }, views, config, 10.0);
    sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
    sim.run_for(SimDuration::from_ms(500.0));
    let d3 = sim.node(NodeId(3)).deliveries();
    assert_eq!(d3.len(), 1, "exactly one delivery despite two eager paths");
    assert_eq!(
        sim.node(NodeId(3)).scheduler_stats().duplicate_payloads,
        1,
        "the second copy is counted as a duplicate"
    );
}

/// Lost IWANT replies are recovered by the periodic retry (the `T`
/// parameter of §5.2).
#[test]
fn retries_recover_from_total_first_loss() {
    // With 60% loss the first IHAVE/IWANT/MSG exchange often fails;
    // retries every 100ms must still deliver eventually.
    let views = vec![vec![1], vec![0]];
    let nodes: Vec<EgmNode> = views
        .into_iter()
        .enumerate()
        .map(|(i, peers)| {
            let config = base_config();
            let mut view = PartialView::new(NodeId(i), config.view);
            for p in peers {
                view.insert(NodeId(p));
            }
            view.set_static(true);
            EgmNode::new(
                NodeId(i),
                config,
                view,
                StrategySpec::Flat { pi: 0.0 }.build(None),
                Monitor::Null(NullMonitor),
            )
        })
        .collect();
    let mut sim = Sim::new(SimConfig::uniform(2, 10.0).with_loss(0.4), 11, nodes);
    sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
    sim.run_for(SimDuration::from_ms(20_000.0));
    assert_eq!(
        sim.node(NodeId(1)).deliveries().len(),
        1,
        "retries must eventually get the payload through"
    );
    assert!(
        sim.node(NodeId(1)).scheduler_stats().requests_sent >= 1,
        "at least one IWANT was needed"
    );
}

/// The gossip layer stops relaying at round `t` even under eager push.
#[test]
fn relay_stops_at_round_limit() {
    // Chain of 6 nodes but rounds = 4: nodes 5+ never hear the message.
    let config = ProtocolConfig {
        rounds: 4,
        ..base_config()
    };
    let views = vec![vec![1], vec![2], vec![3], vec![4], vec![5], vec![0]];
    let mut sim = build(6, StrategySpec::Flat { pi: 1.0 }, views, config, 10.0);
    sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
    sim.run_for(SimDuration::from_ms(1000.0));
    assert_eq!(
        sim.node(NodeId(4)).deliveries().len(),
        1,
        "round 4 still delivers"
    );
    assert_eq!(
        sim.node(NodeId(5)).deliveries().len(),
        0,
        "round 4 arrivals do not relay further (r < t fails)"
    );
}
