//! §5.1 / §5.4 statistics: network-model properties paper-vs-measured,
//! plus the eager reference run, and a timing of topology generation.

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_topology::TransitStubConfig;
use egm_workload::experiments::{netstats, Scale};

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let stats = netstats::run(&scale);
    print_figure(
        "§5.1/§5.4 network model statistics",
        &scale,
        &stats.render(),
    );

    let mut group = c.benchmark_group("netstats");
    group.sample_size(10);
    group.bench_function("generate_and_route_topology", |b| {
        b.iter(|| {
            TransitStubConfig::default()
                .with_clients(scale.nodes)
                .with_seed(scale.seed)
                .build()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
