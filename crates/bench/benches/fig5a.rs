//! Fig. 5(a): the latency/bandwidth tradeoff across strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_core::StrategySpec;
use egm_workload::experiments::{fig5a, Scale};

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let points = fig5a::run(&scale);
    print_figure(
        "Fig. 5(a): latency vs payload/msg",
        &scale,
        &fig5a::render(&points),
    );

    let mut group = c.benchmark_group("fig5a");
    group.sample_size(10);
    let model = egm_workload::experiments::shared_model(&scale);
    for (name, pi) in [("pure_lazy", 0.0), ("pure_eager", 1.0)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                egm_workload::experiments::base_scenario(&scale)
                    .with_strategy(StrategySpec::Flat { pi })
                    .run_with_model(model.clone())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
