//! Fig. 5(b): reliability under correlated node failures.

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_core::StrategySpec;
use egm_workload::experiments::{fig5b, Scale};
use egm_workload::{FaultPlan, FaultSelection};

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let points = fig5b::run(&scale);
    print_figure(
        "Fig. 5(b): mean deliveries vs dead nodes",
        &scale,
        &fig5b::render(&points),
    );

    let mut group = c.benchmark_group("fig5b");
    group.sample_size(10);
    let model = egm_workload::experiments::shared_model(&scale);
    group.bench_function("ranked_with_hub_failures", |b| {
        b.iter(|| {
            egm_workload::experiments::base_scenario(&scale)
                .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
                .with_faults(Some(FaultPlan::new(0.4, FaultSelection::BestRanked)))
                .run_with_model(model.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
