//! Fig. 5(c): the hybrid (combined) strategy tradeoff.

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_core::StrategySpec;
use egm_workload::experiments::{fig5c, Scale};

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let points = fig5c::run(&scale);
    print_figure(
        "Fig. 5(c): hybrid strategy",
        &scale,
        &fig5c::render(&points),
    );

    let mut group = c.benchmark_group("fig5c");
    group.sample_size(10);
    let model = egm_workload::experiments::shared_model(&scale);
    group.bench_function("combined_run", |b| {
        b.iter(|| {
            egm_workload::experiments::base_scenario(&scale)
                .with_strategy(StrategySpec::Combined {
                    best_fraction: 0.2,
                    rho: 20.0,
                    u: 2,
                    t0_ms: 20.0,
                })
                .run_with_model(model.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
