//! Fig. 6(a–c): degradation of structure under monitor noise.

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_core::StrategySpec;
use egm_workload::experiments::{fig6, Scale};
use egm_workload::NoiseConfig;

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let points = fig6::run(&scale);
    print_figure(
        "Fig. 6: structure degradation under noise (a: payload, b: latency, c: top5% share)",
        &scale,
        &fig6::render(&points),
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let model = egm_workload::experiments::shared_model(&scale);
    group.bench_function("ranked_full_noise", |b| {
        b.iter(|| {
            egm_workload::experiments::base_scenario(&scale)
                .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
                .with_noise(Some(NoiseConfig { o: 1.0, c: 0.36 }))
                .run_with_model(model.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
