//! Extension bench: ranking quality — oracle vs decentralized estimates.

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_core::BestSet;
use egm_workload::experiments::{rank_quality, Scale};

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let rows = rank_quality::run(&scale);
    print_figure(
        "Extension: decentralized ranking quality",
        &scale,
        &rank_quality::render(&rows),
    );

    let mut group = c.benchmark_group("rank_quality");
    group.sample_size(10);
    let model = egm_workload::experiments::shared_model(&scale);
    group.bench_function("oracle_centrality_ranking", |b| {
        b.iter(|| BestSet::by_centrality(&model, 0.2))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
