//! Ablation bench: NeEM-style redundancy suppression on/off.

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_core::StrategySpec;
use egm_workload::experiments::{ablation, Scale};

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let rows = ablation::run(&scale);
    print_figure(
        "Ablation: NeEM redundancy suppression",
        &scale,
        &ablation::render(&rows),
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let model = egm_workload::experiments::shared_model(&scale);
    group.bench_function("ranked_with_suppression", |b| {
        b.iter(|| {
            let mut scenario = egm_workload::experiments::base_scenario(&scale)
                .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 });
            scenario.protocol.suppress_known = true;
            scenario.run_with_model(model.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
