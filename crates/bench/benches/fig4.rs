//! Fig. 4: emergent structure (top-5 % connection share per strategy).

use criterion::{criterion_group, criterion_main, Criterion};
use egm_bench::print_figure;
use egm_core::StrategySpec;
use egm_workload::experiments::{fig4, Scale};

fn bench(c: &mut Criterion) {
    let scale = Scale::from_env();
    let rows = fig4::run(&scale);
    print_figure("Fig. 4: emergent structure", &scale, &fig4::render(&rows));

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    let model = egm_workload::experiments::shared_model(&scale);
    group.bench_function("ranked_run", |b| {
        b.iter(|| {
            egm_workload::experiments::base_scenario(&scale)
                .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
                .run_with_model(model.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
