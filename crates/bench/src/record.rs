//! `BENCH_events_per_sec.json` bin handling.
//!
//! The trajectory file is a JSON object of named bins (see the crate
//! docs for the schema). The workspace deliberately carries no JSON
//! parser dependency, so this module implements the minimal subset the
//! bins format needs: top-level string keys mapping to balanced-brace
//! object values (string contents are skipped while balancing). Each
//! bench binary replaces only its own bin and preserves the rest.

/// Splits a bins file into `(name, raw object text)` pairs, in file
/// order.
///
/// A legacy flat single-bench file (pre-bins schema: scalar fields at the
/// top level, including a `"bench": "<name>"` field) is returned as one
/// bin named after its `bench` field, so the first upsert migrates it.
/// Unparseable text yields an empty list (the file is then rebuilt).
pub fn parse_bins(text: &str) -> Vec<(String, String)> {
    let bytes = text.as_bytes();
    let mut bins = Vec::new();
    let mut i = match text.find('{') {
        Some(p) => p + 1,
        None => return bins,
    };
    while i < bytes.len() {
        // Next top-level key.
        let Some(key_start) = text[i..].find('"').map(|p| i + p + 1) else {
            break;
        };
        let Some(key_end) = text[key_start..].find('"').map(|p| key_start + p) else {
            break;
        };
        let key = &text[key_start..key_end];
        let Some(colon) = text[key_end..].find(':').map(|p| key_end + p) else {
            break;
        };
        let value_start = match text[colon + 1..].find(|c: char| !c.is_whitespace()) {
            Some(p) => colon + 1 + p,
            None => break,
        };
        if bytes[value_start] != b'{' {
            // Scalar value at the top level: legacy flat schema.
            return parse_legacy(text);
        }
        // Balance braces, skipping string contents.
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        let mut end = None;
        for (off, &b) in bytes[value_start..].iter().enumerate() {
            if in_string {
                match b {
                    _ if escaped => escaped = false,
                    b'\\' => escaped = true,
                    b'"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match b {
                b'"' => in_string = true,
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(value_start + off + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        bins.push((key.to_string(), text[value_start..end].to_string()));
        i = end;
    }
    bins
}

/// Wraps a legacy flat single-bench object as one bin named after its
/// `"bench"` field.
fn parse_legacy(text: &str) -> Vec<(String, String)> {
    let Some(tag) = text.find("\"bench\"") else {
        return Vec::new();
    };
    let rest = &text[tag + "\"bench\"".len()..];
    let Some(open) = rest.find('"') else {
        return Vec::new();
    };
    let Some(close) = rest[open + 1..].find('"') else {
        return Vec::new();
    };
    let name = rest[open + 1..open + 1 + close].to_string();
    let trimmed = text.trim();
    vec![(name, trimmed.to_string())]
}

/// Renders bins (sorted by name for deterministic files) as the
/// trajectory JSON document.
///
/// Every bin body is re-indented through `reindent`, so the file has
/// one canonical layout no matter how a bench binary formatted the body
/// it handed to [`upsert_bin`] — repeated parse/render round trips are
/// byte-stable, and bins with nested sub-objects (the A/B benches) get
/// the same two-space-per-level indentation as flat ones.
pub fn render_bins(bins: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = bins.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (name, body)) in sorted.iter().enumerate() {
        out.push_str(&format!("  \"{name}\": {}", reindent(body)));
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Pretty-prints one bin body in the canonical layout: objects break
/// onto one line per member at two spaces of indentation per nesting
/// level (the bin itself sits one level inside the document), arrays
/// stay inline. Existing whitespace outside strings is discarded and
/// re-derived, so any syntactically valid input yields the same output.
fn reindent(body: &str) -> String {
    let mut out = String::with_capacity(body.len() * 2);
    // The bin object is one level inside the trajectory document.
    let mut depth = 1usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut arrays = 0usize;
    let indent = |out: &mut String, depth: usize| {
        for _ in 0..depth * 2 {
            out.push(' ');
        }
    };
    for c in body.chars() {
        if in_string {
            out.push(c);
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            c if c.is_whitespace() => {}
            '[' => {
                arrays += 1;
                out.push('[');
            }
            ']' => {
                arrays = arrays.saturating_sub(1);
                out.push(']');
            }
            '{' if arrays == 0 => {
                depth += 1;
                out.push('{');
                out.push('\n');
                indent(&mut out, depth);
            }
            '}' if arrays == 0 => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                indent(&mut out, depth);
                out.push('}');
            }
            ',' if arrays == 0 => {
                out.push(',');
                out.push('\n');
                indent(&mut out, depth);
            }
            ':' if arrays == 0 => out.push_str(": "),
            ',' => out.push_str(", "),
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

/// Inserts or replaces the named bin in the trajectory file at `path`,
/// preserving every other bin (and migrating a legacy flat file).
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn upsert_bin(path: &str, name: &str, body: &str) {
    let mut bins = std::fs::read_to_string(path)
        .map(|text| parse_bins(&text))
        .unwrap_or_default();
    bins.retain(|(k, _)| k != name);
    bins.push((name.to_string(), body.trim().to_string()));
    std::fs::write(path, render_bins(&bins)).expect("write bench json");
}

/// Peak resident set size of this process in MB (`VmHWM`), or `None`
/// where procfs is unavailable. Used by the scale bench bin to record —
/// and, under `EGM_SCALE_RSS_BUDGET_MB`, assert — the memory budget per
/// scenario size.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024.0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::{parse_bins, render_bins, upsert_bin};

    #[test]
    fn round_trips_two_bins() {
        let a = ("alpha".to_string(), "{\n  \"x\": 1\n}".to_string());
        let b = ("beta".to_string(), "{\n  \"y\": \"s{}\"\n}".to_string());
        let text = render_bins(&[b.clone(), a.clone()]);
        let parsed = parse_bins(&text);
        // Sorted on render.
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "alpha");
        assert_eq!(parsed[1].0, "beta");
        assert!(parsed[0].1.contains("\"x\": 1"));
        assert!(parsed[1].1.contains("s{}"), "braces in strings survive");
    }

    #[test]
    fn nested_bins_render_canonically_and_stably() {
        // A sloppily formatted nested body (the A/B bench shape) gets
        // two-space-per-level indentation, inline arrays, and is a fixed
        // point of parse/render.
        let body = "{ \"preset\":\"1k\",\n\"seq\":{\"ms\": 1.5,\"eps\": 2},\n  \
                    \"per_shard_events\": [ 1,2 , 3 ] }";
        let text = render_bins(&[("shard".to_string(), body.to_string())]);
        let expected = "{\n  \"shard\": {\n    \"preset\": \"1k\",\n    \"seq\": {\n      \
                        \"ms\": 1.5,\n      \"eps\": 2\n    },\n    \
                        \"per_shard_events\": [1, 2, 3]\n  }\n}\n";
        assert_eq!(text, expected);
        let again = render_bins(&parse_bins(&text));
        assert_eq!(again, text, "render is a fixed point");
    }

    #[test]
    fn legacy_flat_file_becomes_one_bin() {
        let legacy = "{\n  \"bench\": \"events_per_sec\",\n  \"nodes\": 100,\n  \"events_per_sec\": 3794504\n}\n";
        let parsed = parse_bins(legacy);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "events_per_sec");
        assert!(parsed[0].1.contains("\"nodes\": 100"));
    }

    #[test]
    fn garbage_yields_no_bins() {
        assert!(parse_bins("").is_empty());
        assert!(parse_bins("not json").is_empty());
    }

    #[test]
    fn upsert_replaces_only_its_bin() {
        let dir = std::env::temp_dir().join("egm_bench_record_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("bins.json");
        let path = path.to_str().expect("utf-8 path");
        let _ = std::fs::remove_file(path);

        upsert_bin(path, "events_per_sec", "{\n  \"events\": 1\n}");
        upsert_bin(path, "scale_events_per_sec_1k", "{\n  \"events\": 2\n}");
        upsert_bin(path, "events_per_sec", "{\n  \"events\": 3\n}");

        let text = std::fs::read_to_string(path).expect("read back");
        let bins = parse_bins(&text);
        assert_eq!(bins.len(), 2);
        let events: Vec<&str> = bins.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(events, vec!["events_per_sec", "scale_events_per_sec_1k"]);
        assert!(bins[0].1.contains("\"events\": 3"), "replaced in place");
        assert!(bins[1].1.contains("\"events\": 2"), "other bin preserved");
        let _ = std::fs::remove_file(path);
    }
}
