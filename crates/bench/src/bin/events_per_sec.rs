//! Event-loop throughput microbenchmark.
//!
//! Runs the representative 100-node Ranked scenario (paper §5.2/§5.3
//! parameters, Ranked best=20 % under the latency oracle) several times,
//! measures wall-clock per run and simulator events per second, and
//! writes `BENCH_events_per_sec.json` so successive PRs can track the
//! event-loop perf trajectory. See `egm_bench`'s crate docs for the JSON
//! schema.
//!
//! ```sh
//! cargo run --release -p egm_bench --bin events_per_sec
//! ```
//!
//! Environment:
//! * `EGM_BENCH_RUNS` — timed runs after one warm-up (default 3).
//! * `EGM_BENCH_MESSAGES` — multicasts per run (default 150).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).
//! * `EGM_MIN_EVENTS_PER_SEC` — when set, *assert* the measured best
//!   events/s stays at or above this floor (exit 1 otherwise), so a
//!   gross event-loop regression fails CI instead of silently updating
//!   the JSON record.

use egm_bench::env_usize;
use egm_core::{MonitorSpec, StrategySpec};
use egm_workload::Scenario;
use std::time::Instant;

fn main() {
    let runs = env_usize("EGM_BENCH_RUNS", 3).max(1);
    let messages = env_usize("EGM_BENCH_MESSAGES", 150).max(1);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());

    let scenario = Scenario::paper_default()
        .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
        .with_monitor(MonitorSpec::OracleLatency)
        .with_messages(messages);
    let nodes = scenario.node_count();

    // The topology is built once and shared so the timings below measure
    // the event loop, not Dijkstra over the transit-stub graph.
    let model = std::sync::Arc::new(scenario.build_model());

    // Warm-up run: allocator and cache warm-up; also yields the event
    // count, which is identical across runs by determinism.
    let warm = egm_workload::runner::run_detailed(&scenario, Some(model.clone()));
    let events = warm.events;
    println!("queue: {:?}", warm.queue);
    println!(
        "warm-up: {nodes} nodes, {messages} messages, {} events, delivery {:.2}%",
        events,
        warm.report.mean_delivery_fraction * 100.0
    );

    let mut wall_ms: Vec<f64> = Vec::with_capacity(runs);
    for i in 0..runs {
        let start = Instant::now();
        let outcome = egm_workload::runner::run_detailed(&scenario, Some(model.clone()));
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(outcome.events, events, "deterministic event count");
        println!(
            "run {}/{runs}: {ms:.1} ms wall, {:.0} events/sec",
            i + 1,
            events as f64 / ms * 1000.0
        );
        wall_ms.push(ms);
    }

    let best = wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = wall_ms.iter().sum::<f64>() / wall_ms.len() as f64;
    let events_per_sec = events as f64 / best * 1000.0;
    println!("best: {best:.1} ms wall ({events_per_sec:.0} events/sec)");

    if let Ok(v) = std::env::var("EGM_MIN_EVENTS_PER_SEC") {
        // A typoed gate knob must fail the job, not silently disable the
        // gate (same policy as EGM_SHARDS / EGM_EVENT_QUEUE).
        let floor: f64 = v.parse().unwrap_or_else(|_| {
            panic!("unrecognized EGM_MIN_EVENTS_PER_SEC {v:?}: use an events/sec number")
        });
        assert!(
            events_per_sec >= floor,
            "event-loop throughput regressed: {events_per_sec:.0} events/sec is below the \
             EGM_MIN_EVENTS_PER_SEC floor of {floor:.0}"
        );
        println!("throughput floor satisfied ({events_per_sec:.0} >= {floor:.0} events/sec)");
    }

    let body = format!(
        "{{\n  \"bench\": \"events_per_sec\",\n  \"scenario\": \"ranked best=20% oracle-latency transit-stub\",\n  \"nodes\": {nodes},\n  \"messages\": {messages},\n  \"runs\": {runs},\n  \"events\": {events},\n  \"best_wall_ms\": {best:.3},\n  \"mean_wall_ms\": {mean:.3},\n  \"events_per_sec\": {events_per_sec:.0}\n}}"
    );
    egm_bench::record::upsert_bin(&out_path, "events_per_sec", &body);
    println!("wrote bin events_per_sec to {out_path}");
}
