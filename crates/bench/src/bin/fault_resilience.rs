//! Fault-resilience sweep: the scheduled-fault scenario library ×
//! churn-rate grid, with online re-ranking active, on one scale preset.
//!
//! Runs [`egm_workload::experiments::fault_resilience::run_at_preset`] —
//! every [`FaultScenarioKind`] against
//! every churn level, recording delivery ratio, hub-overlap stability
//! and the p99 publish→delivery latency per cell — then re-runs one
//! representative harsh cell (domain outage × heavy churn) at every
//! shard width in `EGM_SHARD_WIDTHS`, asserting byte-identical results
//! against the sequential engine. Results are upserted as the
//! `fault_resilience_<preset>` bin of `BENCH_events_per_sec.json`
//! (schema in `egm_bench`'s crate docs).
//!
//! ```sh
//! EGM_SCALE_PRESET=1k cargo run --release -p egm_bench --bin fault_resilience
//! ```
//!
//! Environment:
//! * `EGM_SCALE_PRESET` — `1k` (default), `4k` or `10k`.
//! * `EGM_SCALE_MESSAGES` — multicasts per run (default 10).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).
//! * `EGM_MIN_DELIVERY_RATIO` — when set, *assert* every cell's delivery
//!   ratio meets this floor (the CI fault smoke job's regression guard).
//! * `EGM_SHARD_WIDTHS` — comma-separated widths for the byte-identity
//!   check on the representative cell (default `2,4`; empty to skip).

use egm_bench::{env_usize, record};
use egm_workload::experiments::fault_resilience::{
    churn_levels, render, rerank_plan, run_at_preset,
};
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::{runner, FaultScenarioKind};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let preset = ScalePreset::from_env();
    let messages = env_usize("EGM_SCALE_MESSAGES", 10).max(1);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());
    let min_delivery = std::env::var("EGM_MIN_DELIVERY_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let widths: Vec<usize> = std::env::var("EGM_SHARD_WIDTHS")
        .unwrap_or_else(|_| "2,4".to_string())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .collect();

    let nodes = preset.nodes();
    let seed = 42u64;
    println!(
        "{} preset: {nodes} nodes, {messages} messages, {} scenarios × {} churn levels",
        preset.label(),
        FaultScenarioKind::all().len(),
        churn_levels().len()
    );

    let t = Instant::now();
    let rows = run_at_preset(preset, messages, seed);
    let sweep_ms = t.elapsed().as_secs_f64() * 1000.0;
    println!("{}", render(&rows));
    println!("grid: {} cells in {sweep_ms:.0} ms", rows.len());

    if let Some(min) = min_delivery {
        for r in &rows {
            assert!(
                r.delivery >= min,
                "{} / {}: delivery {:.4} below the {min:.4} floor",
                r.scenario,
                r.churn,
                r.delivery
            );
        }
        println!("delivery floor {min:.2}: all {} cells pass", rows.len());
    }

    // Byte-identity of the harshest cell across shard widths: the same
    // fault trace, churn layout and re-rank ticks must reproduce the
    // sequential results exactly under the parallel engine.
    if !widths.is_empty() {
        let base = preset
            .scenario(messages, seed)
            .with_rerank(Some(rerank_plan()));
        let model = Arc::new(base.build_model());
        let traffic_ms = messages as f64 * base.mean_interval_ms + base.drain_ms;
        let schedule =
            FaultScenarioKind::DomainOutage.schedule(&model, base.warmup_ms, traffic_ms, seed);
        let (_, heavy) = churn_levels()[2];
        let cell = base.with_fault_schedule(Some(schedule)).with_churn(heavy);
        let seq = runner::run_detailed(&cell.clone().with_shards(Some(0)), Some(model.clone()));
        for &w in &widths {
            let sharded =
                runner::run_detailed(&cell.clone().with_shards(Some(w)), Some(model.clone()));
            assert_eq!(seq.report, sharded.report, "W={w} report diverged");
            assert_eq!(seq.log, sharded.log, "W={w} delivery log diverged");
            assert_eq!(seq.events, sharded.events, "W={w} event counts diverged");
            assert_eq!(
                seq.reranked_best_ids, sharded.reranked_best_ids,
                "W={w} re-ranked hubs diverged"
            );
        }
        println!(
            "byte-identity: domain outage × heavy churn matches seq at W ∈ {widths:?} \
             ({} events)",
            seq.events
        );
    }

    let rss_field = record::peak_rss_mb()
        .map(|mb| format!("{mb:.1}"))
        .unwrap_or_else(|| "null".to_string());
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            let key = format!(
                "{}_{}",
                r.scenario.replace(' ', "_"),
                r.churn.replace(' ', "_")
            );
            format!(
                "  \"{key}\": {{\n    \"scenario\": \"{}\",\n    \"churn\": \"{}\",\n    \"delivery\": {:.4},\n    \"hub_stability\": {:.4},\n    \"p99_ms\": {:.3}\n  }}",
                r.scenario, r.churn, r.delivery, r.hub_stability, r.p99_ms
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"fault_resilience\",\n  \"preset\": \"{}\",\n  \"scenario\": \"fault scenario library × churn, online re-rank\",\n  \"nodes\": {nodes},\n  \"messages\": {messages},\n  \"cells\": {},\n  \"sweep_ms\": {sweep_ms:.1},\n  \"peak_rss_mb\": {rss_field},\n{}\n}}",
        preset.label(),
        rows.len(),
        cells.join(",\n")
    );
    let bin = format!("fault_resilience_{}", preset.label());
    record::upsert_bin(&out_path, &bin, &body);
    println!("wrote bin {bin} to {out_path}");
}
