//! Rank-source A/B bench: fixed per-run setup cost and steady-state
//! event-loop throughput per `RankSource`, on one scale preset.
//!
//! For each source (oracle centrality, sampled centrality, the
//! gossip-sorted ranking the scale presets ship with) the bench times
//! [`egm_workload::runner::prepare`] — the fixed per-run cost: ranking
//! plus overlay-view bootstrap over a shared topology — and then the
//! steady-state run via [`egm_workload::runner::run_prepared`]. It also
//! records each source's hub-choice overlap with the oracle, so the
//! accuracy/cost tradeoff that justified retiring the O(n²) oracle on
//! the scale axis is re-measured on every refresh. Results are upserted
//! as the `rank_events_per_sec_<preset>` bin of
//! `BENCH_events_per_sec.json` (schema in `egm_bench`'s crate docs).
//!
//! ```sh
//! EGM_SCALE_PRESET=10k cargo run --release -p egm_bench --bin rank_events_per_sec
//! ```
//!
//! Environment:
//! * `EGM_SCALE_PRESET` — `1k` (default), `4k` or `10k`.
//! * `EGM_BENCH_RUNS` — timed runs after one warm-up (default 2).
//! * `EGM_SCALE_MESSAGES` — multicasts per run (default 30).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).
//! * `EGM_RANK_MIN_OVERLAP` — when set, *assert* the preset's own rank
//!   source overlaps the oracle by at least this fraction (the scale
//!   axis requires ≥ 0.8; the sampled baseline is exempt — it exists to
//!   calibrate the overlap scale).

use egm_bench::{env_usize, record};
use egm_core::BestSet;
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::runner;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let preset = ScalePreset::from_env();
    let runs = env_usize("EGM_BENCH_RUNS", 2).max(1);
    let messages = env_usize("EGM_SCALE_MESSAGES", 30).max(1);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());
    let min_overlap = std::env::var("EGM_RANK_MIN_OVERLAP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    let nodes = preset.nodes();
    let seed = 42u64;
    let base = preset.scenario(messages, seed);

    let t = Instant::now();
    let model = Arc::new(base.build_model());
    let model_ms = t.elapsed().as_secs_f64() * 1000.0;
    println!(
        "{} preset: {nodes} nodes, {messages} messages, topology {model_ms:.1} ms",
        preset.label()
    );

    let sources = preset.rank_ab_sources();

    let mut oracle_set: Option<BestSet> = None;
    let mut entries: Vec<String> = Vec::new();
    for source in sources {
        let scenario = base.clone().with_rank_source(source);

        // Fixed per-run cost: ranking + overlay-view bootstrap. Paid once
        // per prepared setup, amortized across the timed runs below.
        let t = Instant::now();
        let setup = runner::prepare(&scenario, Some(model.clone()));
        let setup_ms = t.elapsed().as_secs_f64() * 1000.0;

        let best = setup.best().expect("Ranked preset has a best set");
        let overlap = match &oracle_set {
            None => {
                assert!(source.is_oracle(), "oracle must run first");
                oracle_set = Some((**best).clone());
                1.0
            }
            Some(oracle) => best.overlap(oracle),
        };

        // Warm-up run: allocator/caches, deterministic event count.
        let warm = runner::run_prepared(&scenario, &setup);
        let events = warm.events;

        let mut wall_ms: Vec<f64> = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t = Instant::now();
            let outcome = runner::run_prepared(&scenario, &setup);
            wall_ms.push(t.elapsed().as_secs_f64() * 1000.0);
            assert_eq!(outcome.events, events, "deterministic event count");
        }
        let best_wall = wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let events_per_sec = events as f64 / best_wall * 1000.0;
        println!(
            "{:<14} setup {setup_ms:>8.1} ms | overlap {:>5.1}% | run {best_wall:>8.1} ms \
             ({events_per_sec:>9.0} events/s, {events} events, delivery {:.2}%)",
            source.label(),
            overlap * 100.0,
            warm.report.mean_delivery_fraction * 100.0
        );

        // The floor gates the source the presets actually ship with —
        // the sampled baseline is *meant* to be weaker, it calibrates
        // the overlap scale.
        if let Some(min) = min_overlap {
            if source == preset.rank_source() {
                assert!(
                    overlap >= min,
                    "{} overlap {overlap:.3} below the {min:.3} floor",
                    source.label()
                );
            }
        }

        let key = source.label().replace([' ', '='], "_");
        entries.push(format!(
            "  \"{key}\": {{\n    \"source\": \"{}\",\n    \"oracle_overlap\": {overlap:.4},\n    \"setup_ms\": {setup_ms:.3},\n    \"events\": {events},\n    \"best_wall_ms\": {best_wall:.3},\n    \"events_per_sec\": {events_per_sec:.0}\n  }}",
            source.label()
        ));
    }

    let body = format!(
        "{{\n  \"bench\": \"rank_events_per_sec\",\n  \"preset\": \"{}\",\n  \"scenario\": \"ranked best=20% scaled transit-stub, rank-source A/B\",\n  \"nodes\": {nodes},\n  \"messages\": {messages},\n  \"runs\": {runs},\n  \"topology_ms\": {model_ms:.3},\n{}\n}}",
        preset.label(),
        entries.join(",\n")
    );
    let bin = format!("rank_events_per_sec_{}", preset.label());
    record::upsert_bin(&out_path, &bin, &body);
    println!("wrote bin {bin} to {out_path}");
}
