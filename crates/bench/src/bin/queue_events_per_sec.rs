//! Queue-comparison throughput bench: heap vs calendar on one scale
//! preset, over a shared topology.
//!
//! Runs the selected `egm_workload::experiments::scale` preset once per
//! [`QueueKind`], asserts the runs are event-for-event identical (the
//! equivalence contract), and upserts the `queue_events_per_sec_<preset>`
//! bin into `BENCH_events_per_sec.json` (schema in `egm_bench`'s crate
//! docs) with both rates, the speedup, and the calendar geometry.
//!
//! ```sh
//! EGM_SCALE_PRESET=10k cargo run --release -p egm_bench --bin queue_events_per_sec
//! ```
//!
//! Environment:
//! * `EGM_SCALE_PRESET` — `1k` (default), `4k` or `10k`.
//! * `EGM_BENCH_RUNS` — timed runs per queue after one warm-up (default 2).
//! * `EGM_SCALE_MESSAGES` — multicasts per run (default 30).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).

use egm_bench::{env_usize, record};
use egm_simnet::QueueKind;
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::runner::run_detailed;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let preset = ScalePreset::from_env();
    let runs = env_usize("EGM_BENCH_RUNS", 2).max(1);
    let messages = env_usize("EGM_SCALE_MESSAGES", 30).max(1);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());

    let nodes = preset.nodes();
    let seed = 42u64;
    let base = preset.scenario(messages, seed);
    let model = Arc::new(base.build_model());

    // Warm-up (also yields the reference event count and delivery log
    // digest the per-queue runs must reproduce).
    let warm = run_detailed(&base, Some(model.clone()));
    let events = warm.events;
    println!(
        "warm-up: {nodes} nodes ({} preset), {messages} messages, {events} events, \
         delivery {:.2}%",
        preset.label(),
        warm.report.mean_delivery_fraction * 100.0
    );

    let mut best_ms = [f64::INFINITY; 2];
    let mut calendar_stats = None;
    for (slot, kind) in [QueueKind::Heap, QueueKind::Calendar]
        .into_iter()
        .enumerate()
    {
        let scenario = base.clone().with_event_queue(Some(kind));
        for i in 0..runs {
            let start = Instant::now();
            let outcome = run_detailed(&scenario, Some(model.clone()));
            let ms = start.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(
                outcome.events, events,
                "queue implementations must dispatch identical events"
            );
            assert_eq!(
                outcome.report, warm.report,
                "queue implementations must produce identical reports"
            );
            println!(
                "{kind:?} run {}/{runs}: {ms:.1} ms wall, {:.0} events/sec",
                i + 1,
                events as f64 / ms * 1000.0
            );
            best_ms[slot] = best_ms[slot].min(ms);
            if kind == QueueKind::Calendar {
                calendar_stats = Some(outcome.queue);
            }
        }
    }

    let heap_eps = events as f64 / best_ms[0] * 1000.0;
    let calendar_eps = events as f64 / best_ms[1] * 1000.0;
    let speedup = calendar_eps / heap_eps;
    let cal = calendar_stats.expect("calendar ran");
    println!(
        "heap best {:.1} ms ({heap_eps:.0} ev/s) | calendar best {:.1} ms \
         ({calendar_eps:.0} ev/s) | speedup {speedup:.2}x",
        best_ms[0], best_ms[1]
    );

    let body = format!(
        "{{\n  \"bench\": \"queue_events_per_sec\",\n  \"preset\": \"{}\",\n  \"scenario\": \"ranked best=20% oracle-latency scaled transit-stub\",\n  \"nodes\": {nodes},\n  \"messages\": {messages},\n  \"runs\": {runs},\n  \"events\": {events},\n  \"heap_best_wall_ms\": {:.3},\n  \"heap_events_per_sec\": {heap_eps:.0},\n  \"calendar_best_wall_ms\": {:.3},\n  \"calendar_events_per_sec\": {calendar_eps:.0},\n  \"calendar_speedup\": {speedup:.3},\n  \"calendar_bucket_count\": {},\n  \"calendar_bucket_width_us\": {},\n  \"calendar_resizes\": {},\n  \"calendar_year_scans\": {}\n}}",
        preset.label(),
        best_ms[0],
        best_ms[1],
        cal.bucket_count,
        cal.bucket_width_us,
        cal.resizes,
        cal.year_scans,
    );
    let bin = format!("queue_events_per_sec_{}", preset.label());
    record::upsert_bin(&out_path, &bin, &body);
    println!("wrote bin {bin} to {out_path}");
}
