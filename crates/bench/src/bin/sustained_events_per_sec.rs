//! Sustained heavy-traffic throughput bench: open-loop arrival process +
//! tail-latency percentiles on a scale preset.
//!
//! Runs a scale preset under the open-loop arrival axis
//! (`egm_workload::arrival`) — a fixed offered rate that never backs off
//! — once per shard width W ∈ {0 (sequential), 1, 2, 4}, asserting every
//! width reproduces the sequential run byte for byte (report, event
//! count, latency histogram, steady-state block), then upserts the
//! `sustained_events_per_sec_<preset>` bin into
//! `BENCH_events_per_sec.json` with the p50/p99/p999 publish→delivery
//! percentiles and the steady-state delivery rate alongside the usual
//! wall-clock events/sec.
//!
//! ```sh
//! EGM_SCALE_PRESET=1k cargo run --release -p egm_bench --bin sustained_events_per_sec
//! ```
//!
//! Environment:
//! * `EGM_SCALE_PRESET` — `1k` (default), `4k`, `10k`, `100k` or `1m`.
//! * `EGM_SCALE_MESSAGES` — multicasts per run (default 120).
//! * `EGM_SUSTAINED_RATE` — offered rate in messages per simulated
//!   second (default 20).
//! * `EGM_SUSTAINED_PROCESS` — `poisson` (default), `bursty` (4× the
//!   rate in 1-of-4 duty-cycle bursts) or `diurnal` (rate/10 → rate over
//!   a 10 s ramp; the ramp is excluded from the percentile window).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).
//! * `EGM_MIN_SUSTAINED_EPS` — when set, *asserts* the best wall-clock
//!   events/sec stays above this floor (the CI sustained smoke job's
//!   regression guard).
//! * `EGM_SCALE_RSS_BUDGET_MB` — when set, asserts peak RSS stays under
//!   this budget.

use egm_bench::{env_usize, record};
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::runner::RunOutcome;
use egm_workload::{Arrival, ArrivalProcess};
use std::time::Instant;

fn process_from_env(rate: f64) -> (&'static str, ArrivalProcess) {
    match std::env::var("EGM_SUSTAINED_PROCESS").as_deref() {
        Err(_) | Ok("poisson") => ("poisson", ArrivalProcess::Poisson { rate_per_sec: rate }),
        Ok("bursty") => (
            "bursty",
            ArrivalProcess::Bursty {
                rate_per_sec: rate * 4.0,
                on_ms: 250.0,
                off_ms: 750.0,
            },
        ),
        Ok("diurnal") => (
            "diurnal",
            ArrivalProcess::Diurnal {
                low_rate: rate / 10.0,
                high_rate: rate,
                ramp_ms: 10_000.0,
            },
        ),
        Ok(v) => panic!("unrecognized EGM_SUSTAINED_PROCESS {v:?}: poisson, bursty or diurnal"),
    }
}

fn assert_matches(reference: &RunOutcome, run: &RunOutcome, label: &str) {
    assert_eq!(reference.report, run.report, "reports diverged ({label})");
    assert_eq!(
        reference.events, run.events,
        "event counts diverged ({label})"
    );
    assert_eq!(
        reference.latency, run.latency,
        "latency histograms diverged ({label})"
    );
    assert_eq!(
        reference.steady, run.steady,
        "steady blocks diverged ({label})"
    );
}

fn main() {
    let preset = ScalePreset::from_env();
    let messages = env_usize("EGM_SCALE_MESSAGES", 120).max(1);
    let rate: f64 = std::env::var("EGM_SUSTAINED_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let (process_label, process) = process_from_env(rate);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());
    let min_eps = std::env::var("EGM_MIN_SUSTAINED_EPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let rss_budget_mb = std::env::var("EGM_SCALE_RSS_BUDGET_MB")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    let nodes = preset.nodes();
    let seed = 42u64;
    let scenario = preset
        .scenario(messages, seed)
        .with_arrival(Some(Arrival::Open(process)));

    // One prepared setup (topology + ranking + views) shared by every
    // width, so the A/B measures only the event loop.
    let setup_start = Instant::now();
    let setup = egm_workload::runner::prepare(&scenario, None);
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1000.0;
    println!(
        "{nodes} nodes ({} preset), {messages} messages, {process_label} arrival at {rate} msg/s, \
         setup {setup_ms:.1} ms",
        preset.label()
    );

    // Sequential reference, then every shard width the CI A/B covers —
    // each must reproduce the reference byte for byte.
    let mut best_wall_ms = f64::INFINITY;
    let ref_start = Instant::now();
    let reference =
        egm_workload::runner::run_prepared(&scenario.clone().with_shards(Some(0)), &setup);
    let ref_ms = ref_start.elapsed().as_secs_f64() * 1000.0;
    best_wall_ms = best_wall_ms.min(ref_ms);
    let events = reference.events;
    println!(
        "W=seq: {ref_ms:.1} ms wall, {events} events, delivery {:.2}%",
        reference.report.mean_delivery_fraction * 100.0
    );
    let mut acc_peak = reference.traffic_acc_peak;
    for w in [1usize, 2, 4] {
        let start = Instant::now();
        let run =
            egm_workload::runner::run_prepared(&scenario.clone().with_shards(Some(w)), &setup);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_matches(&reference, &run, &format!("W={w}"));
        acc_peak = acc_peak.max(run.traffic_acc_peak);
        if let Some(threshold) = scenario.link_spill_threshold {
            assert!(
                run.traffic_acc_peak <= threshold,
                "W={w} merge accumulator peaked at {} links over the {threshold} threshold",
                run.traffic_acc_peak
            );
        }
        println!(
            "W={w}: {ms:.1} ms wall, byte-identical, merge accumulator peak {}",
            run.traffic_acc_peak
        );
        best_wall_ms = best_wall_ms.min(ms);
    }

    let events_per_sec = events as f64 / best_wall_ms * 1000.0;
    let latency = &reference.latency;
    let steady = &reference.steady;
    println!(
        "sustained: {:.0} published/s offered, {:.0} deliveries/s steady, latency p50 {:.1} ms \
         p99 {:.1} ms p999 {:.1} ms (window {:.0}–{:.0} ms, {} publishes)",
        steady.publishes_per_sec,
        steady.deliveries_per_sec,
        latency.p50_ms(),
        latency.p99_ms(),
        latency.p999_ms(),
        steady.window_start_ms,
        steady.window_end_ms,
        steady.published
    );
    let peak_rss = record::peak_rss_mb();
    println!(
        "best: {best_wall_ms:.1} ms wall ({events_per_sec:.0} events/sec), peak RSS {}",
        peak_rss
            .map(|mb| format!("{mb:.1} MB"))
            .unwrap_or_else(|| "unavailable".to_string())
    );

    if let Some(floor) = min_eps {
        assert!(
            events_per_sec >= floor,
            "sustained throughput {events_per_sec:.0} events/sec fell below the \
             EGM_MIN_SUSTAINED_EPS floor of {floor:.0}"
        );
        println!("throughput floor met ({events_per_sec:.0} >= {floor:.0} events/sec)");
    }
    if let Some(budget) = rss_budget_mb {
        let peak = peak_rss.expect("RSS budget asserted but /proc unavailable");
        assert!(
            peak <= budget,
            "peak RSS {peak:.1} MB exceeds the {budget:.1} MB budget for the {} preset",
            preset.label()
        );
        println!("peak RSS within budget ({peak:.1} <= {budget:.1} MB)");
    }

    let rss_field = peak_rss
        .map(|mb| format!("{mb:.1}"))
        .unwrap_or_else(|| "null".to_string());
    let body = format!(
        "{{\n  \"bench\": \"sustained_events_per_sec\",\n  \"preset\": \"{}\",\n  \"process\": \"{process_label}\",\n  \"rate_per_sec\": {rate},\n  \"nodes\": {nodes},\n  \"messages\": {messages},\n  \"events\": {events},\n  \"setup_ms\": {setup_ms:.3},\n  \"best_wall_ms\": {best_wall_ms:.3},\n  \"events_per_sec\": {events_per_sec:.0},\n  \"steady_publishes_per_sec\": {:.3},\n  \"steady_deliveries_per_sec\": {:.3},\n  \"latency_p50_ms\": {:.3},\n  \"latency_p99_ms\": {:.3},\n  \"latency_p999_ms\": {:.3},\n  \"traffic_acc_peak\": {},\n  \"peak_rss_mb\": {rss_field}\n}}",
        preset.label(),
        steady.publishes_per_sec,
        steady.deliveries_per_sec,
        latency.p50_ms(),
        latency.p99_ms(),
        latency.p999_ms(),
        acc_peak
    );
    let bin = format!("sustained_events_per_sec_{}", preset.label());
    record::upsert_bin(&out_path, &bin, &body);
    println!("wrote bin {bin} to {out_path}");
}
