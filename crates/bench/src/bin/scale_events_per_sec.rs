//! Scale-axis event-loop throughput bench: 1k … 1M-node presets.
//!
//! Runs a `egm_workload::experiments::scale` preset through the parallel
//! sweep runner, measures wall clock, simulator events per second and
//! process peak RSS, and upserts the `scale_events_per_sec_<preset>` bin
//! into `BENCH_events_per_sec.json` (schema in `egm_bench`'s crate docs).
//!
//! ```sh
//! EGM_SCALE_PRESET=1k cargo run --release -p egm_bench --bin scale_events_per_sec
//! ```
//!
//! Environment:
//! * `EGM_SCALE_PRESET` — `1k` (default), `4k`, `10k`, `100k` or `1m`.
//! * `EGM_BENCH_RUNS` — timed runs after one warm-up (default 2).
//! * `EGM_SCALE_MESSAGES` — multicasts per run (default 30).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).
//! * `EGM_SCALE_RSS_BUDGET_MB` — when set, the bench *asserts* peak RSS
//!   stays under this budget (exit 1 otherwise); the CI smoke jobs rely
//!   on this to catch accidental O(n²) allocations.
//!   [`ScalePreset::rss_budget_mb`] is the suggested value per preset.
//! * `EGM_SCALE_PLATEAU_MAX` — switches to *plateau mode*: instead of
//!   the timed loop, run the preset at 1× and then 2× the message count
//!   in the same process and assert the 2× peak RSS stays within this
//!   factor of the 1× peak (e.g. `1.15`). Peak RSS is process-monotone,
//!   so the ratio isolates exactly the memory the extra messages added —
//!   with horizon-based retirement on, total traffic volume must not
//!   move the plateau.
//!
//! Determinism is pinned run-over-run: every timed run must reproduce
//! the warm-up's full report, not just its event count.

use egm_bench::{env_usize, record};
use egm_workload::experiments::scale::{run_presets, ScalePreset};
use std::time::Instant;

/// Plateau mode: the steady-state working set must not scale with total
/// messages sent. Runs 1× then 2× messages in one process; peak RSS is
/// monotone per process, so `peak(2×)/peak(1×)` measures only what the
/// second, doubled run added on top.
///
/// Two knobs differ from the timed mode, both to make the measurement a
/// steady-state one:
/// * the traffic spool is forced on regardless of preset size (the
///   in-memory compaction window and its flatten transient are the
///   dominant non-plateau term below 100k — exactly the subsystem the
///   ≥100k presets stream to disk);
/// * `messages` should put the traffic phase well past the retirement
///   horizon (≥ ~120 at the default 250 ms interval), or the 1× run
///   never reaches steady state and the ratio pins nothing.
fn run_plateau(preset: ScalePreset, messages: usize, seed: u64, max_ratio: f64) {
    let run = |messages: usize| {
        let scenario = preset.scenario(messages, seed).with_traffic_spool(true);
        egm_workload::runner::run_detailed(&scenario, None)
    };
    let base = run(messages);
    let peak1 = record::peak_rss_mb().expect("plateau mode needs /proc RSS");
    println!(
        "plateau 1x: {messages} messages, {} events, {} retired, arena high water {}, \
         peak RSS {peak1:.1} MB",
        base.events, base.retired_messages, base.arena_high_water
    );
    let base_retired = base.retired_messages;
    // The plateau claim is about one run's working set; holding the 1×
    // outcome (delivery log + link table) across the 2× run would charge
    // the ratio for two materialized result sets at once.
    drop(base);

    let doubled = run(messages * 2);
    let peak2 = record::peak_rss_mb().expect("plateau mode needs /proc RSS");
    println!(
        "plateau 2x: {} messages, {} events, {} retired, arena high water {}, \
         peak RSS {peak2:.1} MB",
        messages * 2,
        doubled.events,
        doubled.retired_messages,
        doubled.arena_high_water
    );

    assert!(
        doubled.retired_messages > base_retired,
        "plateau mode expects retirement to engage (preset horizon crossed)"
    );
    let ratio = peak2 / peak1;
    assert!(
        ratio <= max_ratio,
        "steady-state memory did not plateau: 2x-message peak RSS {peak2:.1} MB is {ratio:.3}x \
         the 1x peak {peak1:.1} MB (budget {max_ratio:.3}x) on the {} preset",
        preset.label()
    );
    println!("peak RSS plateaued: 2x messages cost {ratio:.3}x RSS (budget {max_ratio:.3}x)");
}

fn main() {
    let preset = ScalePreset::from_env();
    let runs = env_usize("EGM_BENCH_RUNS", 2).max(1);
    let messages = env_usize("EGM_SCALE_MESSAGES", 30).max(1);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());
    let rss_budget_mb = std::env::var("EGM_SCALE_RSS_BUDGET_MB")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    let nodes = preset.nodes();
    let seed = 42u64;

    if let Ok(v) = std::env::var("EGM_SCALE_PLATEAU_MAX") {
        let max_ratio: f64 = v.parse().expect("EGM_SCALE_PLATEAU_MAX must be a number");
        run_plateau(preset, messages, seed, max_ratio);
        return;
    }

    // Warm-up run (allocator/caches), which also yields the deterministic
    // event count and the cancellation/retirement counters.
    let warm = run_presets(&[(preset, seed)], messages)
        .pop()
        .expect("one outcome");
    let events = warm.events;
    let timers_cancelled = warm.timers_cancelled;
    let stale_timer_drops = warm.stale_timer_drops;
    let retired_messages = warm.retired_messages;
    let arena_high_water = warm.arena_high_water;
    let traffic_spill_bytes = warm.traffic_spill_bytes;
    assert_eq!(
        warm.model.memory_shape().dense_cells,
        0,
        "scale presets must use the two-level routed model"
    );
    assert_eq!(
        warm.payload_vec_growths, 0,
        "the per-node payload table must stay pre-sized on the hot path"
    );
    println!(
        "warm-up: {nodes} nodes ({} preset), {messages} messages, {events} events, \
         delivery {:.2}%, {timers_cancelled} timers cancelled",
        preset.label(),
        warm.report.mean_delivery_fraction * 100.0
    );
    println!(
        "steady state: {retired_messages} messages retired, arena high water {arena_high_water}, \
         {traffic_spill_bytes} traffic bytes spooled"
    );
    println!("queue: {:?}", warm.queue);

    // Timed runs share the warm-up's topology plus one prepared setup
    // (ranking + overlay views), so the measurement is the steady-state
    // event loop — the fixed per-run cost is paid once and reported as
    // `setup_ms`. The `rank_events_per_sec` bin breaks that fixed cost
    // down per rank source.
    let scenario = preset.scenario(messages, seed);
    let setup_start = Instant::now();
    let setup = egm_workload::runner::prepare(&scenario, Some(warm.model.clone()));
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1000.0;
    println!(
        "setup (ranking [{}] + views): {setup_ms:.1} ms, amortized over {runs} runs",
        scenario.rank_source.label()
    );
    let mut wall_ms: Vec<f64> = Vec::with_capacity(runs);
    for i in 0..runs {
        let start = Instant::now();
        let outcome = egm_workload::runner::run_prepared(&scenario, &setup);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(outcome.events, events, "deterministic event count");
        assert_eq!(
            outcome.report,
            warm.report,
            "deterministic report (run {} diverged from warm-up)",
            i + 1
        );
        println!(
            "run {}/{runs}: {ms:.1} ms wall, {:.0} events/sec",
            i + 1,
            events as f64 / ms * 1000.0
        );
        wall_ms.push(ms);
    }

    let best = wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = wall_ms.iter().sum::<f64>() / wall_ms.len() as f64;
    let events_per_sec = events as f64 / best * 1000.0;
    let peak_rss = record::peak_rss_mb();
    println!(
        "best: {best:.1} ms wall ({events_per_sec:.0} events/sec), peak RSS {}",
        peak_rss
            .map(|mb| format!("{mb:.1} MB"))
            .unwrap_or_else(|| "unavailable".to_string())
    );

    if let Some(budget) = rss_budget_mb {
        let peak = peak_rss.expect("RSS budget asserted but /proc unavailable");
        assert!(
            peak <= budget,
            "peak RSS {peak:.1} MB exceeds the {budget:.1} MB budget for the {} preset",
            preset.label()
        );
        println!("peak RSS within budget ({peak:.1} <= {budget:.1} MB)");
    }

    let rss_field = peak_rss
        .map(|mb| format!("{mb:.1}"))
        .unwrap_or_else(|| "null".to_string());
    let body = format!(
        "{{\n  \"bench\": \"scale_events_per_sec\",\n  \"preset\": \"{}\",\n  \"scenario\": \"ranked best=20% scaled transit-stub\",\n  \"rank_source\": \"{}\",\n  \"nodes\": {nodes},\n  \"messages\": {messages},\n  \"runs\": {runs},\n  \"events\": {events},\n  \"setup_ms\": {setup_ms:.3},\n  \"best_wall_ms\": {best:.3},\n  \"mean_wall_ms\": {mean:.3},\n  \"events_per_sec\": {events_per_sec:.0},\n  \"timers_cancelled\": {timers_cancelled},\n  \"stale_timer_drops\": {stale_timer_drops},\n  \"retired_messages\": {retired_messages},\n  \"arena_high_water\": {arena_high_water},\n  \"traffic_spill_bytes\": {traffic_spill_bytes},\n  \"peak_rss_mb\": {rss_field}\n}}",
        preset.label(),
        scenario.rank_source.label()
    );
    let bin = format!("scale_events_per_sec_{}", preset.label());
    record::upsert_bin(&out_path, &bin, &body);
    println!("wrote bin {bin} to {out_path}");
}
