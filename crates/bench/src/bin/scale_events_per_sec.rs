//! Scale-axis event-loop throughput bench: 1k / 4k / 10k-node presets.
//!
//! Runs a `egm_workload::experiments::scale` preset through the parallel
//! sweep runner, measures wall clock, simulator events per second and
//! process peak RSS, and upserts the `scale_events_per_sec_<preset>` bin
//! into `BENCH_events_per_sec.json` (schema in `egm_bench`'s crate docs).
//!
//! ```sh
//! EGM_SCALE_PRESET=1k cargo run --release -p egm_bench --bin scale_events_per_sec
//! ```
//!
//! Environment:
//! * `EGM_SCALE_PRESET` — `1k` (default), `4k` or `10k`.
//! * `EGM_BENCH_RUNS` — timed runs after one warm-up (default 2).
//! * `EGM_SCALE_MESSAGES` — multicasts per run (default 30).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).
//! * `EGM_SCALE_RSS_BUDGET_MB` — when set, the bench *asserts* peak RSS
//!   stays under this budget (exit 1 otherwise); the CI 1k smoke job
//!   relies on this to catch accidental O(n²) allocations.

use egm_bench::{env_usize, record};
use egm_workload::experiments::scale::{run_presets, ScalePreset};
use std::time::Instant;

fn main() {
    let preset = ScalePreset::from_env();
    let runs = env_usize("EGM_BENCH_RUNS", 2).max(1);
    let messages = env_usize("EGM_SCALE_MESSAGES", 30).max(1);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());
    let rss_budget_mb = std::env::var("EGM_SCALE_RSS_BUDGET_MB")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    let nodes = preset.nodes();
    let seed = 42u64;

    // Warm-up run (allocator/caches), which also yields the deterministic
    // event count and the cancellation counters.
    let warm = run_presets(&[(preset, seed)], messages)
        .pop()
        .expect("one outcome");
    let events = warm.events;
    let timers_cancelled = warm.timers_cancelled;
    let stale_timer_drops = warm.stale_timer_drops;
    assert_eq!(
        warm.model.memory_shape().dense_cells,
        0,
        "scale presets must use the two-level routed model"
    );
    println!(
        "warm-up: {nodes} nodes ({} preset), {messages} messages, {events} events, \
         delivery {:.2}%, {timers_cancelled} timers cancelled",
        preset.label(),
        warm.report.mean_delivery_fraction * 100.0
    );
    println!("queue: {:?}", warm.queue);

    // Timed runs share the warm-up's topology plus one prepared setup
    // (ranking + overlay views), so the measurement is the steady-state
    // event loop — the fixed per-run cost is paid once and reported as
    // `setup_ms`. The `rank_events_per_sec` bin breaks that fixed cost
    // down per rank source.
    let scenario = preset.scenario(messages, seed);
    let setup_start = Instant::now();
    let setup = egm_workload::runner::prepare(&scenario, Some(warm.model.clone()));
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1000.0;
    println!(
        "setup (ranking [{}] + views): {setup_ms:.1} ms, amortized over {runs} runs",
        scenario.rank_source.label()
    );
    let mut wall_ms: Vec<f64> = Vec::with_capacity(runs);
    for i in 0..runs {
        let start = Instant::now();
        let outcome = egm_workload::runner::run_prepared(&scenario, &setup);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(outcome.events, events, "deterministic event count");
        println!(
            "run {}/{runs}: {ms:.1} ms wall, {:.0} events/sec",
            i + 1,
            events as f64 / ms * 1000.0
        );
        wall_ms.push(ms);
    }

    let best = wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = wall_ms.iter().sum::<f64>() / wall_ms.len() as f64;
    let events_per_sec = events as f64 / best * 1000.0;
    let peak_rss = record::peak_rss_mb();
    println!(
        "best: {best:.1} ms wall ({events_per_sec:.0} events/sec), peak RSS {}",
        peak_rss
            .map(|mb| format!("{mb:.1} MB"))
            .unwrap_or_else(|| "unavailable".to_string())
    );

    if let Some(budget) = rss_budget_mb {
        let peak = peak_rss.expect("RSS budget asserted but /proc unavailable");
        assert!(
            peak <= budget,
            "peak RSS {peak:.1} MB exceeds the {budget:.1} MB budget for the {} preset",
            preset.label()
        );
        println!("peak RSS within budget ({peak:.1} <= {budget:.1} MB)");
    }

    let rss_field = peak_rss
        .map(|mb| format!("{mb:.1}"))
        .unwrap_or_else(|| "null".to_string());
    let body = format!(
        "{{\n  \"bench\": \"scale_events_per_sec\",\n  \"preset\": \"{}\",\n  \"scenario\": \"ranked best=20% scaled transit-stub\",\n  \"rank_source\": \"{}\",\n  \"nodes\": {nodes},\n  \"messages\": {messages},\n  \"runs\": {runs},\n  \"events\": {events},\n  \"setup_ms\": {setup_ms:.3},\n  \"best_wall_ms\": {best:.3},\n  \"mean_wall_ms\": {mean:.3},\n  \"events_per_sec\": {events_per_sec:.0},\n  \"timers_cancelled\": {timers_cancelled},\n  \"stale_timer_drops\": {stale_timer_drops},\n  \"peak_rss_mb\": {rss_field}\n}}",
        preset.label(),
        scenario.rank_source.label()
    );
    let bin = format!("scale_events_per_sec_{}", preset.label());
    record::upsert_bin(&out_path, &bin, &body);
    println!("wrote bin {bin} to {out_path}");
}
