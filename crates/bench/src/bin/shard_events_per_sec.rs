//! Sharded event-loop throughput bench: events/s vs worker count and
//! partition strategy on the scale presets.
//!
//! Runs one scale preset through the sequential engine, through the
//! sharded engine at W = 1 (the window-overhead row), and then through
//! every [`PartitionStrategy`] at each wider width, asserting
//! byte-identical results for every (width, strategy) pair — the
//! determinism bar. Per-run wall clock, events/s, window counts, lane
//! traffic (events, batched flushes, skipped exchanges), configured and
//! realized lookahead and the per-shard event balance are recorded in
//! the `shard_events_per_sec_<preset>` bin of
//! `BENCH_events_per_sec.json` (schema in `egm_bench`'s crate docs).
//!
//! ```sh
//! EGM_SCALE_PRESET=10k cargo run --release -p egm_bench --bin shard_events_per_sec
//! ```
//!
//! Environment:
//! * `EGM_SCALE_PRESET` — `1k` (default), `4k` or `10k`.
//! * `EGM_BENCH_RUNS` — timed runs per width after one warm-up (default 2).
//! * `EGM_SCALE_MESSAGES` — multicasts per run (default 30).
//! * `EGM_BENCH_OUT` — output path (default `BENCH_events_per_sec.json`).
//! * `EGM_SHARD_WIDTHS` — comma-separated widths (default `1,2,4`).
//! * `EGM_SHARD_OVERHEAD_MAX` — when set (e.g. `1.10`), assert that the
//!   W=1 sharded run takes at most this factor of the sequential wall
//!   time — the per-window overhead budget.
//! * `EGM_SHARD_MAX_WINDOWS` — when set, assert that every run whose
//!   *effective* strategy is domain-aligned (or rate-balanced) executes
//!   at most this many windows — the topology-aware partitioning win,
//!   gated.
//! * `EGM_SCALE_RSS_BUDGET_MB` — when set, assert peak RSS stays under
//!   this budget across all widths.

use egm_bench::{env_usize, record};
use egm_simnet::PartitionStrategy;
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::runner::{prepare, run_prepared, RunOutcome};
use std::fmt::Write as _;
use std::time::Instant;

fn time_runs(
    runs: usize,
    scenario: &egm_workload::Scenario,
    setup: &egm_workload::runner::RunSetup,
) -> (RunOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        let outcome = run_prepared(scenario, setup);
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
        last = Some(outcome);
    }
    (last.expect("at least one run"), best)
}

fn main() {
    let preset = ScalePreset::from_env();
    let runs = env_usize("EGM_BENCH_RUNS", 2).max(1);
    let messages = env_usize("EGM_SCALE_MESSAGES", 30).max(1);
    let out_path =
        std::env::var("EGM_BENCH_OUT").unwrap_or_else(|_| "BENCH_events_per_sec.json".to_string());
    let widths: Vec<usize> = std::env::var("EGM_SHARD_WIDTHS")
        .map(|v| {
            v.split(',')
                .map(|w| w.trim().parse().expect("EGM_SHARD_WIDTHS: bad width"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 2, 4]);
    // Typoed gate knobs must fail the job, not silently disable the
    // gate (same policy as EGM_SHARDS / EGM_EVENT_QUEUE).
    let overhead_max = std::env::var("EGM_SHARD_OVERHEAD_MAX").ok().map(|v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            panic!("unrecognized EGM_SHARD_OVERHEAD_MAX {v:?}: use a factor like 1.10")
        })
    });
    let max_windows = std::env::var("EGM_SHARD_MAX_WINDOWS").ok().map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            panic!("unrecognized EGM_SHARD_MAX_WINDOWS {v:?}: use a window count like 1297")
        })
    });
    let rss_budget_mb = std::env::var("EGM_SCALE_RSS_BUDGET_MB").ok().map(|v| {
        v.parse::<f64>()
            .unwrap_or_else(|_| panic!("unrecognized EGM_SCALE_RSS_BUDGET_MB {v:?}: use MB"))
    });

    let nodes = preset.nodes();
    let seed = 42u64;
    let base = preset.scenario(messages, seed);

    // One shared topology + prepared setup (ranking, views): the
    // comparison is purely about the event loop.
    let model = std::sync::Arc::new(base.build_model());
    let setup = prepare(&base, Some(model.clone()));

    // Sequential reference (forced: immune to EGM_SHARDS / auto).
    let seq_scenario = base.clone().with_shards(Some(0));
    let warm = run_prepared(&seq_scenario, &setup);
    let events = warm.events;
    println!(
        "warm-up: {nodes} nodes ({} preset), {messages} messages, {events} events, \
         delivery {:.2}%",
        preset.label(),
        warm.report.mean_delivery_fraction * 100.0
    );
    let (seq_out, seq_best) = time_runs(runs, &seq_scenario, &setup);
    assert_eq!(seq_out.events, events, "deterministic event count");
    let seq_eps = events as f64 / seq_best * 1000.0;
    println!("sequential: {seq_best:.1} ms wall ({seq_eps:.0} events/sec)");

    let mut width_fields = String::new();
    for &w in &widths {
        // W=1 runs windowless regardless of strategy; wider widths A/B
        // every partition strategy over the same prepared setup.
        let strategies: &[PartitionStrategy] = if w <= 1 {
            &[PartitionStrategy::Contiguous]
        } else {
            &[
                PartitionStrategy::Contiguous,
                PartitionStrategy::DomainAligned,
                PartitionStrategy::RateBalanced,
            ]
        };
        for &strategy in strategies {
            let scenario = base
                .clone()
                .with_shards(Some(w))
                .with_partition(Some(strategy));
            let (out, best) = time_runs(runs, &scenario, &setup);
            // The determinism bar: every (width, strategy) reproduces
            // the sequential run's outputs exactly.
            let tag = format!("W={w}/{strategy}");
            assert_eq!(out.events, events, "{tag} changed the event count");
            assert_eq!(out.report, seq_out.report, "{tag} changed the report");
            assert_eq!(out.log, seq_out.log, "{tag} changed the delivery log");
            assert_eq!(
                out.payload_links, seq_out.payload_links,
                "{tag} changed the link tables"
            );
            let eps = events as f64 / best * 1000.0;
            let speedup = seq_best / best;
            let stats = out.shard_stats;
            let balance = stats
                .per_shard_events
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/");
            println!(
                "{tag} (effective {eff}): {best:.1} ms wall ({eps:.0} events/sec, \
                 {speedup:.2}x seq), {windows} windows ({skipped} exchange-free), \
                 {lane} lane events in {flushes} flushes, lookahead {la} us \
                 (realized {rla} us), per-shard events {balance}",
                eff = stats.strategy,
                windows = stats.windows,
                skipped = stats.exchanges_skipped,
                lane = stats.lane_events,
                flushes = stats.lane_flushes,
                la = stats.lookahead_us,
                rla = stats.realized_lookahead_us,
            );
            if w == 1 {
                if let Some(max) = overhead_max {
                    assert!(
                        best <= seq_best * max,
                        "W=1 overhead {best:.1} ms exceeds {max:.2}x of sequential {seq_best:.1} ms"
                    );
                    println!(
                        "W=1 window overhead within budget ({:.3}x)",
                        best / seq_best
                    );
                }
            }
            if w > 1 && stats.strategy != PartitionStrategy::Contiguous {
                if let Some(max) = max_windows {
                    assert!(
                        stats.windows <= max,
                        "{tag} ran {} windows, exceeding the EGM_SHARD_MAX_WINDOWS budget of {max}",
                        stats.windows
                    );
                }
            }
            let key = if w <= 1 {
                "w1".to_string()
            } else {
                format!("w{w}_{}", strategy.name().replace('-', "_"))
            };
            let shard_events = stats
                .per_shard_events
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            write!(
                width_fields,
                ",\n  \"{key}\": {{ \"strategy\": \"{eff}\", \"best_wall_ms\": {best:.3}, \
                 \"events_per_sec\": {eps:.0}, \"speedup_vs_seq\": {speedup:.3}, \
                 \"windows\": {}, \"lane_events\": {}, \"lane_flushes\": {}, \
                 \"exchanges_skipped\": {}, \"lookahead_us\": {}, \
                 \"realized_lookahead_us\": {}, \"per_shard_events\": [{shard_events}] }}",
                stats.windows,
                stats.lane_events,
                stats.lane_flushes,
                stats.exchanges_skipped,
                stats.lookahead_us,
                stats.realized_lookahead_us,
                eff = stats.strategy,
            )
            .expect("write to String");
        }
    }

    let peak_rss = record::peak_rss_mb();
    if let Some(budget) = rss_budget_mb {
        let peak = peak_rss.expect("RSS budget asserted but /proc unavailable");
        assert!(
            peak <= budget,
            "peak RSS {peak:.1} MB exceeds the {budget:.1} MB budget for the {} preset",
            preset.label()
        );
        println!("peak RSS within budget ({peak:.1} <= {budget:.1} MB)");
    }
    let rss_field = peak_rss
        .map(|mb| format!("{mb:.1}"))
        .unwrap_or_else(|| "null".to_string());

    let body = format!(
        "{{\n  \"bench\": \"shard_events_per_sec\",\n  \"preset\": \"{}\",\n  \
         \"scenario\": \"ranked best=20% scaled transit-stub\",\n  \"nodes\": {nodes},\n  \
         \"messages\": {messages},\n  \"runs\": {runs},\n  \"events\": {events},\n  \
         \"seq\": {{ \"best_wall_ms\": {seq_best:.3}, \"events_per_sec\": {seq_eps:.0} }}\
         {width_fields},\n  \"peak_rss_mb\": {rss_field}\n}}",
        preset.label()
    );
    let bin = format!("shard_events_per_sec_{}", preset.label());
    record::upsert_bin(&out_path, &bin, &body);
    println!("wrote bin {bin} to {out_path}");
}
