//! Benchmark harnesses regenerating the paper's evaluation.
//!
//! Each Criterion bench target under `benches/` corresponds to one figure
//! (or the §5.1/§5.4 statistics): it first *prints the figure's series* —
//! the same rows the paper plots — and then times a representative
//! scenario execution so `cargo bench` doubles as both the reproduction
//! record and a performance regression guard.
//!
//! Scale is controlled by the `EGM_SCALE` environment variable: unset or
//! `quick` runs a reduced configuration (50 nodes × 120 messages);
//! `paper` reproduces the full 100 nodes × 400 messages of §5.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use egm_workload::experiments::Scale;

/// Prints a figure banner plus its rendered table.
pub fn print_figure(name: &str, scale: &Scale, table: &str) {
    println!(
        "\n=== {name} (nodes={}, messages={}, seed={}) ===",
        scale.nodes, scale.messages, scale.seed
    );
    println!("{table}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_figure_is_callable() {
        let scale = egm_workload::experiments::Scale::quick();
        super::print_figure("smoke", &scale, "a b\n---\n1 2\n");
    }
}
