//! Benchmark harnesses regenerating the paper's evaluation.
//!
//! Each Criterion bench target under `benches/` corresponds to one figure
//! (or the §5.1/§5.4 statistics): it first *prints the figure's series* —
//! the same rows the paper plots — and then times a representative
//! scenario execution so `cargo bench` doubles as both the reproduction
//! record and a performance regression guard.
//!
//! # Scale
//!
//! Scale is controlled by the `EGM_SCALE` environment variable: unset or
//! `quick` runs a reduced configuration (50 nodes × 120 messages);
//! `paper` reproduces the full 100 nodes × 400 messages of §5.3. Every
//! figure experiment reads it through
//! [`egm_workload::experiments::Scale::from_env`].
//!
//! # Parallel sweeps
//!
//! Figure experiments execute their independent points through
//! `egm_workload::runner::run_sweep`, which fans scenarios across cores
//! and returns results in input order, byte-identical to sequential
//! execution (each run forks its whole RNG tree from its own seed). Cap
//! or disable the parallelism with `RAYON_NUM_THREADS`.
//!
//! # Perf trajectory: `BENCH_events_per_sec.json`
//!
//! `BENCH_events_per_sec.json` at the repository root records the
//! event-loop perf trajectory across PRs. The file is a JSON object of
//! **named bins**, one per throughput bench binary, each bin a flat
//! object:
//!
//! ```json
//! {
//!   "events_per_sec": {
//!     "bench": "events_per_sec",
//!     "scenario": "ranked best=20% oracle-latency transit-stub",
//!     "nodes": 100,
//!     "messages": 150,
//!     "runs": 5,
//!     "events": 208898,
//!     "best_wall_ms": 55.1,
//!     "mean_wall_ms": 60.2,
//!     "events_per_sec": 3794504
//!   },
//!   "scale_events_per_sec_1k": {
//!     "bench": "scale_events_per_sec",
//!     "preset": "1k",
//!     "nodes": 1000,
//!     "messages": 30,
//!     "runs": 2,
//!     "events": 1234567,
//!     "best_wall_ms": 400.0,
//!     "mean_wall_ms": 410.0,
//!     "events_per_sec": 3000000,
//!     "timers_cancelled": 56789,
//!     "stale_timer_drops": 56789,
//!     "peak_rss_mb": 120.5
//!   }
//! }
//! ```
//!
//! * `events_per_sec` — the original 100-node Ranked scenario
//!   (`cargo run --release -p egm_bench --bin events_per_sec`). Its
//!   deterministic `events` value doubles as the cross-PR byte-identity
//!   check for the oracle-ranked path.
//! * `scale_events_per_sec_<preset>` — the 1k/4k/10k scale-axis presets
//!   (`cargo run --release -p egm_bench --bin scale_events_per_sec`,
//!   preset chosen with `EGM_SCALE_PRESET`). It additionally records the
//!   preset's `rank_source`, the fixed per-run `setup_ms` (ranking +
//!   overlay-view bootstrap, paid once via `egm_workload::runner::
//!   prepare` and amortized across the timed runs), the index-free
//!   timer-cancellation counters and the process peak RSS, so the memory
//!   budget per scenario size is tracked alongside throughput (see
//!   `egm_workload::experiments::scale` for the budget table).
//!   `EGM_SCALE_RSS_BUDGET_MB` turns the RSS record into a hard assertion
//!   — the CI scale smoke job uses this.
//! * `rank_events_per_sec_<preset>` — the rank-source A/B
//!   (`cargo run --release -p egm_bench --bin rank_events_per_sec`): one
//!   sub-object per [`RankSource`](egm_core::RankSource) (oracle /
//!   sampled / the preset's gossip-sorted source) with that source's
//!   `oracle_overlap`, fixed `setup_ms`, deterministic `events`,
//!   `best_wall_ms` and `events_per_sec` — the accuracy/cost record
//!   behind retiring the O(n²) oracle on the scale axis.
//!   `EGM_RANK_MIN_OVERLAP` asserts the overlap floor (the presets
//!   require ≥ 0.8).
//! * `shard_events_per_sec_<preset>` — the sharded-event-loop A/B
//!   (`cargo run --release -p egm_bench --bin shard_events_per_sec`):
//!   the preset once through the sequential engine (`seq` sub-object),
//!   once through the windowless W=1 sharded engine (`w1`), and then
//!   once per (width, partition strategy) pair at every wider width
//!   from `EGM_SHARD_WIDTHS` — `w2_contiguous` / `w2_domain_aligned` /
//!   `w2_rate_balanced` / `w4_…` sub-objects. Each records the
//!   *effective* `strategy` (a planned strategy falls back to
//!   contiguous on structureless topologies), `best_wall_ms`,
//!   `events_per_sec`, `speedup_vs_seq`, and the window-loop counters:
//!   `windows`, `lane_events`, the batched `lane_flushes`, the
//!   `exchanges_skipped` by the adaptive barrier, the configured
//!   `lookahead_us`, the `realized_lookahead_us` actually advanced per
//!   window, and the `per_shard_events` balance. The bench *asserts*
//!   byte-identical results for every pair (report, delivery log, link
//!   tables, event count) — the determinism record behind parallelizing
//!   one run. `EGM_SHARD_OVERHEAD_MAX` turns the W=1 window overhead
//!   into a budget assertion, and `EGM_SHARD_MAX_WINDOWS` caps the
//!   window count of every domain-aligned/rate-balanced run — the gated
//!   record that topology-aware cuts keep the conservative windows an
//!   order of magnitude coarser than contiguous ones.
//! * `sustained_events_per_sec_<preset>` — the heavy-traffic arrival
//!   axis (`cargo run --release -p egm_bench --bin
//!   sustained_events_per_sec`): one open-loop run per shard width
//!   W ∈ {seq, 1, 2, 4} over a shared prepared setup, byte-identity
//!   asserted per width (report, event count, latency histogram,
//!   steady-state block). Records the arrival `process` and offered
//!   `rate_per_sec`, the steady-state `steady_publishes_per_sec` /
//!   `steady_deliveries_per_sec` (simulated-time rates over the
//!   post-warm-up window), the `latency_p50_ms` / `latency_p99_ms` /
//!   `latency_p999_ms` publish→delivery percentiles from the mergeable
//!   log-bucketed histogram, and the `traffic_acc_peak` merge-time
//!   accumulator bound (pinned ≤ the spill threshold).
//!   `EGM_MIN_SUSTAINED_EPS` turns the wall-clock events/s into a floor
//!   assertion — the CI sustained smoke job's regression guard;
//!   `EGM_SUSTAINED_PROCESS` / `EGM_SUSTAINED_RATE` select the arrival
//!   process (poisson / bursty / diurnal) and offered rate.
//! * `fault_resilience_<preset>` — the scheduled-fault resilience grid
//!   (`cargo run --release -p egm_bench --bin fault_resilience`): every
//!   [`FaultScenarioKind`](egm_workload::FaultScenarioKind) — baseline,
//!   correlated domain outage, transit-link degradation, flash crowd,
//!   node slowdown — against every churn level (none / light / heavy
//!   overlapping outages), with online re-ranking active. One sub-object
//!   per `<scenario>_<churn>` cell holding `delivery` (mean delivery
//!   fraction), `hub_stability` (overlap between the initial and final
//!   re-ranked hub sets), and the steady-state `p99_ms`
//!   publish→delivery latency; plus the grid `cells` count, `sweep_ms`
//!   and `peak_rss_mb`. The bin re-runs the harshest cell (domain
//!   outage × heavy churn) at every `EGM_SHARD_WIDTHS` width and
//!   *asserts* byte-identity with the sequential engine.
//!   `EGM_MIN_DELIVERY_RATIO` turns every cell's delivery ratio into a
//!   floor assertion — the CI fault smoke job's regression guard.
//! * `queue_events_per_sec_<preset>` — the event-queue A/B comparison
//!   (`cargo run --release -p egm_bench --bin queue_events_per_sec`):
//!   one scale preset run per queue implementation over a shared
//!   topology, asserting event-for-event identical results at runtime. A
//!   flat object with `heap_best_wall_ms` / `heap_events_per_sec`,
//!   `calendar_best_wall_ms` / `calendar_events_per_sec`, the
//!   `calendar_speedup` ratio, and the calendar geometry
//!   (`calendar_bucket_count`, `calendar_bucket_width_us`,
//!   `calendar_resizes`, `calendar_year_scans`). On the 2026-07 10k
//!   measurement the calendar queue is ~1.7× the heap's event rate;
//!   combined with the arena-backed node state and log-based traffic
//!   accounting the `scale_events_per_sec_10k` bin moved from ~0.39 M to
//!   ~0.93 M events/s (2.4×) on the same container.
//!
//! `events` is the deterministic simulator event count of the scenario
//! (identical across runs and machines for a given code version — a
//! changed value means the protocol behaviour changed, not just its
//! speed); `events_per_sec` is computed from the best wall time. Stale
//! cancelled-timer drops are excluded from `events` — they never
//! dispatch. `EGM_BENCH_RUNS`, `EGM_BENCH_MESSAGES` and `EGM_BENCH_OUT`
//! override the run count, workload size and output path;
//! `EGM_MIN_EVENTS_PER_SEC` makes `events_per_sec` *assert* a
//! throughput floor so gross event-loop regressions fail CI instead of
//! silently updating the record.
//!
//! Each binary rewrites only its own bin through [`record::upsert_bin`],
//! preserving the others (a pre-2026-07 flat single-bench file is
//! migrated in place).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;

use egm_workload::experiments::Scale;

/// Reads a `usize` environment knob (`EGM_BENCH_RUNS`,
/// `EGM_SCALE_MESSAGES`, …), falling back to `default` when the variable
/// is unset or unparseable. Shared by every bench binary.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a figure banner plus its rendered table.
pub fn print_figure(name: &str, scale: &Scale, table: &str) {
    println!(
        "\n=== {name} (nodes={}, messages={}, seed={}) ===",
        scale.nodes, scale.messages, scale.seed
    );
    println!("{table}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_figure_is_callable() {
        let scale = egm_workload::experiments::Scale::quick();
        super::print_figure("smoke", &scale, "a b\n---\n1 2\n");
    }
}
