//! Benchmark harnesses regenerating the paper's evaluation.
//!
//! Each Criterion bench target under `benches/` corresponds to one figure
//! (or the §5.1/§5.4 statistics): it first *prints the figure's series* —
//! the same rows the paper plots — and then times a representative
//! scenario execution so `cargo bench` doubles as both the reproduction
//! record and a performance regression guard.
//!
//! # Scale
//!
//! Scale is controlled by the `EGM_SCALE` environment variable: unset or
//! `quick` runs a reduced configuration (50 nodes × 120 messages);
//! `paper` reproduces the full 100 nodes × 400 messages of §5.3. Every
//! figure experiment reads it through
//! [`egm_workload::experiments::Scale::from_env`].
//!
//! # Parallel sweeps
//!
//! Figure experiments execute their independent points through
//! `egm_workload::runner::run_sweep`, which fans scenarios across cores
//! and returns results in input order, byte-identical to sequential
//! execution (each run forks its whole RNG tree from its own seed). Cap
//! or disable the parallelism with `RAYON_NUM_THREADS`.
//!
//! # Perf trajectory: `BENCH_events_per_sec.json`
//!
//! The `events_per_sec` binary (`cargo run --release -p egm_bench --bin
//! events_per_sec`) measures raw event-loop throughput on the
//! representative 100-node Ranked scenario and writes
//! `BENCH_events_per_sec.json` at the repository root so successive PRs
//! can track the trend. The JSON schema is one flat object:
//!
//! ```json
//! {
//!   "bench": "events_per_sec",
//!   "scenario": "ranked best=20% oracle-latency transit-stub",
//!   "nodes": 100,
//!   "messages": 150,
//!   "runs": 5,
//!   "events": 208898,
//!   "best_wall_ms": 55.1,
//!   "mean_wall_ms": 60.2,
//!   "events_per_sec": 3794504
//! }
//! ```
//!
//! `events` is the deterministic simulator event count of the scenario
//! (identical across runs and machines for a given code version — a
//! changed value means the protocol behaviour changed, not just its
//! speed); `events_per_sec` is computed from the best wall time.
//! `EGM_BENCH_RUNS`, `EGM_BENCH_MESSAGES` and `EGM_BENCH_OUT` override
//! the run count, workload size and output path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use egm_workload::experiments::Scale;

/// Prints a figure banner plus its rendered table.
pub fn print_figure(name: &str, scale: &Scale, table: &str) {
    println!(
        "\n=== {name} (nodes={}, messages={}, seed={}) ===",
        scale.nodes, scale.messages, scale.seed
    );
    println!("{table}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_figure_is_callable() {
        let scale = egm_workload::experiments::Scale::quick();
        super::print_figure("smoke", &scale, "a b\n---\n1 2\n");
    }
}
