fn main() {
    for seed in [0u64, 42, 7] {
        let m = egm_topology::TransitStubConfig::default()
            .with_seed(seed)
            .build();
        println!("seed {seed}: {}", m.stats());
    }
}
