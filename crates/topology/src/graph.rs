//! Weighted undirected router graph with Dijkstra shortest paths.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a router vertex in a [`Graph`].
pub type RouterId = usize;

/// An undirected graph with millisecond edge weights, stored as adjacency
/// lists.
///
/// # Examples
///
/// ```
/// use egm_topology::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 10.0);
/// g.add_edge(1, 2, 5.0);
/// let paths = g.shortest_paths(0);
/// assert_eq!(paths.latency_ms[2], 15.0);
/// assert_eq!(paths.hops[2], 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(RouterId, f64)>>,
    edge_count: usize,
}

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Total path latency in milliseconds per destination
    /// (`f64::INFINITY` when unreachable).
    pub latency_ms: Vec<f64>,
    /// Number of edges on the latency-shortest path (`u32::MAX` when
    /// unreachable).
    pub hops: Vec<u32>,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: RouterId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a new vertex and returns its id.
    pub fn add_vertex(&mut self) -> RouterId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds an undirected edge with the given latency.
    ///
    /// Parallel edges are ignored (the first one wins), matching a router
    /// graph where a single physical link connects two routers.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `a == b`, or if
    /// `latency_ms` is not finite and positive.
    pub fn add_edge(&mut self, a: RouterId, b: RouterId, latency_ms: f64) {
        assert!(
            a < self.adj.len() && b < self.adj.len(),
            "vertex out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(
            latency_ms.is_finite() && latency_ms > 0.0,
            "latency must be finite and positive, got {latency_ms}"
        );
        if self.adj[a].iter().any(|&(n, _)| n == b) {
            return;
        }
        self.adj[a].push((b, latency_ms));
        self.adj[b].push((a, latency_ms));
        self.edge_count += 1;
    }

    /// Returns `true` if an edge between `a` and `b` exists.
    pub fn has_edge(&self, a: RouterId, b: RouterId) -> bool {
        self.adj
            .get(a)
            .is_some_and(|ns| ns.iter().any(|&(n, _)| n == b))
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: RouterId) -> usize {
        self.adj[v].len()
    }

    /// Neighbors of `v` with edge latencies.
    pub fn neighbors(&self, v: RouterId) -> &[(RouterId, f64)] {
        &self.adj[v]
    }

    /// Dijkstra from `source`, minimizing latency (hops recorded along the
    /// chosen latency-optimal paths).
    pub fn shortest_paths(&self, source: RouterId) -> ShortestPaths {
        let n = self.adj.len();
        let mut latency_ms = vec![f64::INFINITY; n];
        let mut hops = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        latency_ms[source] = 0.0;
        hops[source] = 0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist, node }) = heap.pop() {
            if dist > latency_ms[node] {
                continue;
            }
            for &(next, w) in &self.adj[node] {
                let nd = dist + w;
                let better = nd < latency_ms[next]
                    || (nd == latency_ms[next] && hops[node] + 1 < hops[next]);
                if better {
                    latency_ms[next] = nd;
                    hops[next] = hops[node] + 1;
                    heap.push(HeapEntry {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }
        ShortestPaths { latency_ms, hops }
    }

    /// Returns `true` if every vertex is reachable from vertex 0 (or the
    /// graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(n, _) in &self.adj[v] {
                if !seen[n] {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::Graph;

    fn diamond() -> Graph {
        // 0 -1ms- 1 -1ms- 3, and 0 -5ms- 2 -5ms- 3
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 5.0);
        g.add_edge(2, 3, 5.0);
        g
    }

    #[test]
    fn dijkstra_prefers_lower_latency() {
        let g = diamond();
        let sp = g.shortest_paths(0);
        assert_eq!(sp.latency_ms[3], 2.0);
        assert_eq!(sp.hops[3], 2);
        assert_eq!(sp.latency_ms[2], 5.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let sp = g.shortest_paths(0);
        assert!(sp.latency_ms[2].is_infinite());
        assert_eq!(sp.hops[2], u32::MAX);
        assert!(!g.is_connected());
    }

    #[test]
    fn parallel_edges_are_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 100.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.shortest_paths(0).latency_ms[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(1);
        g.add_edge(0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "latency must be finite")]
    fn non_positive_latency_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 0.0);
    }

    #[test]
    fn connectivity_detects_connected_ring() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5, 1.0);
        }
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn shortest_paths_from_each_source_are_symmetric() {
        let g = diamond();
        for a in 0..4 {
            let spa = g.shortest_paths(a);
            for b in 0..4 {
                let spb = g.shortest_paths(b);
                assert_eq!(spa.latency_ms[b], spb.latency_ms[a]);
            }
        }
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = Graph::new(0);
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b, 2.0);
        assert_eq!(g.vertex_count(), 2);
        assert!(g.has_edge(a, b));
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.neighbors(a), &[(b, 2.0)]);
    }
}
