//! Transit–stub Internet topology generation (Inet-3.0 substitute).
//!
//! The paper's evaluation (§5.1) runs over a ModelNet emulation of an
//! Inet-3.0 topology: 3037 routers in a transit–stub arrangement, link
//! latencies derived from pseudo-geographical distance, client nodes hanging
//! off distinct stub routers at 1 ms. What the multicast protocol actually
//! observes is the resulting *client-to-client* one-way latency and hop
//! distributions, which the paper reports as: mean hop distance 5.54 with
//! 74.28 % of pairs within 5–6 hops, and mean end-to-end latency 49.83 ms
//! with 50 % of pairs within 39–60 ms.
//!
//! This crate generates a deterministic transit–stub router graph on a 2-D
//! plane, assigns link latencies proportional to Euclidean distance, routes
//! all client pairs with Dijkstra, and exposes the resulting
//! [`RoutedModel`] — the latency/hop/coordinate oracle consumed by the
//! simulator and by the paper's distance/latency monitors. Default
//! parameters are calibrated to reproduce the distribution shape above
//! (verified by `ModelStats` tests and the `netstats` bench).
//!
//! # Examples
//!
//! ```
//! use egm_topology::{TransitStubConfig, RoutedModel};
//!
//! let model = TransitStubConfig::default()
//!     .with_clients(32)
//!     .with_seed(7)
//!     .build();
//! let stats = model.stats();
//! assert!(stats.mean_latency_ms > 0.0);
//! assert_eq!(model.client_count(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod graph;
pub mod model;
pub mod stats;
pub mod transit_stub;

pub use geometry::Point;
pub use graph::Graph;
pub use model::{MemoryShape, PartitionPlan, PlanBalance, RoutedModel};
pub use stats::ModelStats;
pub use transit_stub::TransitStubConfig;
