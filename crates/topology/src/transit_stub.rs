//! Transit–stub topology generator, the Inet-3.0 substitute.
//!
//! Inet-3.0 generates AS-level topologies with a transit–stub flavour; the
//! paper feeds its default 3037-node output to ModelNet, which assigns link
//! latencies from pseudo-geographic distance and attaches each client to a
//! distinct stub node at 1 ms. This module reproduces that pipeline:
//!
//! 1. Place transit domains on a plane; routers of a domain cluster around
//!    its center and form a full mesh (dense core).
//! 2. Connect domains by a random spanning tree plus extra random
//!    domain-to-domain links (route diversity).
//! 3. Hang stub domains off each transit router; stub routers cluster near
//!    their transit router and connect to it in a star, with optional
//!    intra-stub ring edges for redundancy.
//! 4. Attach each client to a *distinct* stub router with a 1 ms access
//!    link, then run Dijkstra from every client to produce the
//!    [`RoutedModel`].
//!
//! Link latency is `max(min_link_ms, distance × ms_per_unit)`; default
//! constants are calibrated so the 100-client default model matches the
//! shape of §5.1 (mean hops ≈ 5.5, mean latency ≈ 50 ms).

use crate::geometry::Point;
use crate::graph::Graph;
use crate::model::RoutedModel;
use egm_rng::{sample, Rng};
use serde::{Deserialize, Serialize};

/// Configuration for the transit–stub generator.
///
/// The default configuration matches the paper's default Inet-3.0 model in
/// scale (≈3000 routers) and, after routing, in latency/hop shape.
///
/// # Examples
///
/// ```
/// use egm_topology::TransitStubConfig;
///
/// // A small, fast model for tests.
/// let model = TransitStubConfig::small().with_clients(16).with_seed(3).build();
/// assert_eq!(model.client_count(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Routers per transit domain (fully meshed internally).
    pub routers_per_transit: usize,
    /// Stub domains hanging off each transit router.
    pub stubs_per_transit_router: usize,
    /// Routers per stub domain.
    pub routers_per_stub: usize,
    /// Number of protocol clients to attach (each to a distinct stub
    /// router).
    pub clients: usize,
    /// Side of the square plane in map units.
    pub plane_size: f64,
    /// Latency per map unit of distance, in milliseconds.
    pub ms_per_unit: f64,
    /// Lower bound on any router–router link latency (ms).
    pub min_link_ms: f64,
    /// Client access-link latency (ms); the paper uses 1 ms client–stub.
    pub client_stub_ms: f64,
    /// Spread (std-dev) of transit routers around their domain center.
    pub transit_spread: f64,
    /// Spread (std-dev) of stub routers around their transit router.
    pub stub_spread: f64,
    /// Extra inter-domain links added beyond the spanning tree.
    pub extra_domain_links: usize,
    /// Whether stub domains get an internal ring in addition to the star
    /// onto the transit router.
    pub stub_ring: bool,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        // ~10*10 transit + 10*10*4*7 = 2900 routers ≈ Inet-3.0's 3037.
        TransitStubConfig {
            transit_domains: 10,
            routers_per_transit: 10,
            stubs_per_transit_router: 4,
            routers_per_stub: 7,
            clients: 100,
            plane_size: 1000.0,
            ms_per_unit: 0.062,
            min_link_ms: 0.5,
            client_stub_ms: 1.0,
            transit_spread: 40.0,
            stub_spread: 25.0,
            extra_domain_links: 20,
            stub_ring: true,
            seed: 0,
        }
    }
}

impl TransitStubConfig {
    /// A reduced model (~90 routers) for fast unit and property tests.
    pub fn small() -> Self {
        TransitStubConfig {
            transit_domains: 3,
            routers_per_transit: 3,
            stubs_per_transit_router: 3,
            routers_per_stub: 3,
            clients: 16,
            extra_domain_links: 2,
            ..TransitStubConfig::default()
        }
    }

    /// Sets the number of clients (builder style).
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the generation seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of routers this configuration generates.
    pub fn router_count(&self) -> usize {
        let transit = self.transit_domains * self.routers_per_transit;
        transit + transit * self.stubs_per_transit_router * self.routers_per_stub
    }

    /// Total number of stub routers (the attachment points for clients).
    pub fn stub_router_count(&self) -> usize {
        self.transit_domains
            * self.routers_per_transit
            * self.stubs_per_transit_router
            * self.routers_per_stub
    }

    /// Generates the router graph and routes all clients, producing the
    /// [`RoutedModel`] oracle.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate: zero domains/routers/
    /// clients, or more clients than stub routers (clients must attach to
    /// *distinct* stub routers, §5.1).
    pub fn build(&self) -> RoutedModel {
        assert!(self.transit_domains > 0, "need at least one transit domain");
        assert!(
            self.routers_per_transit > 0,
            "need routers per transit domain"
        );
        assert!(self.clients > 0, "need at least one client");
        assert!(
            self.clients <= self.stub_router_count(),
            "clients ({}) exceed distinct stub routers ({})",
            self.clients,
            self.stub_router_count()
        );
        assert!(
            self.ms_per_unit > 0.0 && self.min_link_ms > 0.0,
            "latency scale must be positive"
        );

        let mut rng = Rng::seed_from_u64(self.seed);
        let mut graph = Graph::new(0);
        let mut coords: Vec<Point> = Vec::new();

        // 1. Transit domains: centers + clustered routers, full mesh inside.
        let mut domain_routers: Vec<Vec<usize>> = Vec::with_capacity(self.transit_domains);
        for _ in 0..self.transit_domains {
            let center = Point::new(
                rng.range_f64(0.1 * self.plane_size, 0.9 * self.plane_size),
                rng.range_f64(0.1 * self.plane_size, 0.9 * self.plane_size),
            );
            let mut routers = Vec::with_capacity(self.routers_per_transit);
            for _ in 0..self.routers_per_transit {
                let p = Point::new(
                    rng.normal(center.x, self.transit_spread),
                    rng.normal(center.y, self.transit_spread),
                )
                .clamped(self.plane_size);
                let v = graph.add_vertex();
                coords.push(p);
                routers.push(v);
            }
            for i in 0..routers.len() {
                for j in (i + 1)..routers.len() {
                    self.link(&mut graph, &coords, routers[i], routers[j]);
                }
            }
            domain_routers.push(routers);
        }

        // 2. Inter-domain connectivity: random spanning tree + extra links.
        let mut order: Vec<usize> = (0..self.transit_domains).collect();
        sample::shuffle(&mut rng, &mut order);
        for w in order.windows(2) {
            let a = *sample::choose(&mut rng, &domain_routers[w[0]]).expect("non-empty domain");
            let b = *sample::choose(&mut rng, &domain_routers[w[1]]).expect("non-empty domain");
            self.link(&mut graph, &coords, a, b);
        }
        if self.transit_domains > 1 {
            for _ in 0..self.extra_domain_links {
                let da = rng.range_usize(0, self.transit_domains);
                let mut db = rng.range_usize(0, self.transit_domains);
                while db == da {
                    db = rng.range_usize(0, self.transit_domains);
                }
                let a = *sample::choose(&mut rng, &domain_routers[da]).expect("non-empty");
                let b = *sample::choose(&mut rng, &domain_routers[db]).expect("non-empty");
                if !graph.has_edge(a, b) {
                    self.link(&mut graph, &coords, a, b);
                }
            }
        }

        // 3. Stub domains: star onto their transit router (+ optional ring).
        let mut stub_routers: Vec<usize> = Vec::with_capacity(self.stub_router_count());
        for domain in &domain_routers {
            for &transit in domain {
                for _ in 0..self.stubs_per_transit_router {
                    let stub_center = Point::new(
                        rng.normal(coords[transit].x, 3.0 * self.stub_spread),
                        rng.normal(coords[transit].y, 3.0 * self.stub_spread),
                    )
                    .clamped(self.plane_size);
                    let mut members = Vec::with_capacity(self.routers_per_stub);
                    for _ in 0..self.routers_per_stub {
                        let p = Point::new(
                            rng.normal(stub_center.x, self.stub_spread),
                            rng.normal(stub_center.y, self.stub_spread),
                        )
                        .clamped(self.plane_size);
                        let v = graph.add_vertex();
                        coords.push(p);
                        members.push(v);
                        self.link(&mut graph, &coords, v, transit);
                    }
                    if self.stub_ring && members.len() > 2 {
                        for i in 0..members.len() {
                            let j = (i + 1) % members.len();
                            self.link(&mut graph, &coords, members[i], members[j]);
                        }
                    }
                    stub_routers.extend(members);
                }
            }
        }
        debug_assert!(graph.is_connected(), "generated graph must be connected");

        // 4. Clients on distinct stub routers, then route everything.
        let picks = sample::distinct_indices(&mut rng, stub_routers.len(), self.clients);
        let mut client_vertices = Vec::with_capacity(self.clients);
        let mut client_coords = Vec::with_capacity(self.clients);
        for &s in &picks {
            let stub = stub_routers[s];
            let v = graph.add_vertex();
            // Clients sit at their stub router's location.
            coords.push(coords[stub]);
            // Access links have a fixed latency regardless of distance.
            graph.add_edge(v, stub, self.client_stub_ms);
            client_vertices.push(v);
            client_coords.push(coords[stub]);
        }

        let n = self.clients;
        let mut latency = vec![0.0; n * n];
        let mut hops = vec![0u32; n * n];
        for (i, &src) in client_vertices.iter().enumerate() {
            let sp = graph.shortest_paths(src);
            for (j, &dst) in client_vertices.iter().enumerate() {
                latency[i * n + j] = if i == j { 0.0 } else { sp.latency_ms[dst] };
                // Hop distance is measured between the clients' stub
                // attachment points (router-level hops), so the two client
                // access links are not counted — matching how §5.1 reports
                // "hop distance between client nodes" for ModelNet.
                hops[i * n + j] = if i == j {
                    0
                } else {
                    sp.hops[dst].saturating_sub(2)
                };
            }
        }
        // Dijkstra is deterministic and the graph undirected, but float
        // summation order differs per direction; symmetrize to the mean.
        for i in 0..n {
            for j in (i + 1)..n {
                let l = (latency[i * n + j] + latency[j * n + i]) / 2.0;
                latency[i * n + j] = l;
                latency[j * n + i] = l;
                let h = hops[i * n + j].min(hops[j * n + i]);
                hops[i * n + j] = h;
                hops[j * n + i] = h;
            }
        }
        RoutedModel::from_matrices(latency, hops, client_coords, graph.vertex_count() - n)
    }

    /// Adds a distance-proportional link between two placed routers.
    fn link(&self, graph: &mut Graph, coords: &[Point], a: usize, b: usize) {
        if a == b || graph.has_edge(a, b) {
            return;
        }
        let latency = (coords[a].distance(coords[b]) * self.ms_per_unit).max(self.min_link_ms);
        graph.add_edge(a, b, latency);
    }
}

#[cfg(test)]
mod tests {
    use super::TransitStubConfig;

    #[test]
    fn small_model_is_finite_and_symmetric() {
        let m = TransitStubConfig::small().with_seed(1).build();
        let n = m.client_count();
        assert_eq!(n, 16);
        for a in 0..n {
            for b in 0..n {
                let l = m.latency_ms(a, b);
                assert!(l.is_finite(), "unreachable pair ({a},{b})");
                assert_eq!(l, m.latency_ms(b, a));
                if a != b {
                    assert!(l >= 2.0 * 1.0, "two access links minimum, got {l}");
                    assert!(
                        m.hops(a, b) >= 1,
                        "distinct stubs are at least one router hop"
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_reproduces_model() {
        let a = TransitStubConfig::small().with_seed(7).build();
        let b = TransitStubConfig::small().with_seed(7).build();
        for i in 0..a.client_count() {
            for j in 0..a.client_count() {
                assert_eq!(a.latency_ms(i, j), b.latency_ms(i, j));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TransitStubConfig::small().with_seed(1).build();
        let b = TransitStubConfig::small().with_seed(2).build();
        let mut any_diff = false;
        for i in 0..a.client_count() {
            for j in 0..a.client_count() {
                if a.latency_ms(i, j) != b.latency_ms(i, j) {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn router_count_matches_formula() {
        let c = TransitStubConfig::default();
        assert_eq!(c.router_count(), 100 + 2800);
        let m = TransitStubConfig::small()
            .with_clients(4)
            .with_seed(0)
            .build();
        assert_eq!(m.router_count(), TransitStubConfig::small().router_count());
    }

    #[test]
    #[should_panic(expected = "exceed distinct stub routers")]
    fn too_many_clients_panics() {
        let mut c = TransitStubConfig::small();
        c.clients = c.stub_router_count() + 1;
        let _ = c.build();
    }

    #[test]
    fn default_model_matches_paper_shape() {
        // §5.1: mean hops 5.54 (74% in 5-6); mean latency 49.83ms
        // (50% in 39-60ms). We assert the calibrated shape loosely.
        let m = TransitStubConfig::default().with_seed(42).build();
        let s = m.stats();
        assert!(
            (4.0..=7.0).contains(&s.mean_hops),
            "mean hops {} out of calibration band",
            s.mean_hops
        );
        assert!(
            (38.0..=62.0).contains(&s.mean_latency_ms),
            "mean latency {} out of calibration band",
            s.mean_latency_ms
        );
        assert!(
            s.frac_latency_39_60 > 0.25,
            "band fraction {}",
            s.frac_latency_39_60
        );
        assert!(
            s.frac_hops_5_6 > 0.3,
            "hop band fraction {}",
            s.frac_hops_5_6
        );
    }
}
