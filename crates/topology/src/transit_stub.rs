//! Transit–stub topology generator, the Inet-3.0 substitute.
//!
//! Inet-3.0 generates AS-level topologies with a transit–stub flavour; the
//! paper feeds its default 3037-node output to ModelNet, which assigns link
//! latencies from pseudo-geographic distance and attaches each client to a
//! distinct stub node at 1 ms. This module reproduces that pipeline:
//!
//! 1. Place transit domains on a plane; routers of a domain cluster around
//!    its center and form a full mesh (dense core).
//! 2. Connect domains by a random spanning tree plus extra random
//!    domain-to-domain links (route diversity).
//! 3. Hang stub domains off each transit router; stub routers cluster near
//!    their transit router and connect to it in a star, with optional
//!    intra-stub ring edges for redundancy.
//! 4. Attach each client to a *distinct* stub router with a 1 ms access
//!    link, then route to produce the [`RoutedModel`].
//!
//! Link latency is `max(min_link_ms, distance × ms_per_unit)`; default
//! constants are calibrated so the 100-client default model matches the
//! shape of §5.1 (mean hops ≈ 5.5, mean latency ≈ 50 ms).
//!
//! # Routing at scale
//!
//! [`TransitStubConfig::build`] produces the *two-level* routed layout:
//! shortest paths are solved once over the transit core (a small dense
//! matrix) and once per stub domain (tiny per-domain tables), and each
//! client stores only its attachment point. This is exact — a stub domain
//! reaches the rest of the network through exactly one transit router, so
//! every inter-domain shortest path decomposes as
//! `stub → transit → core → transit → stub` — and keeps a 10k-client
//! model in the low megabytes instead of the ~1.6 GB an `n × n` client
//! matrix would need. [`TransitStubConfig::build_dense`] keeps the legacy
//! all-pairs Dijkstra path for equivalence tests at small `n`.

use crate::geometry::Point;
use crate::graph::Graph;
use crate::model::{ClientAttachment, DomainTable, RoutedModel};
use egm_rng::{sample, Rng};
use serde::{Deserialize, Serialize};

/// Configuration for the transit–stub generator.
///
/// The default configuration matches the paper's default Inet-3.0 model in
/// scale (≈3000 routers) and, after routing, in latency/hop shape.
///
/// # Examples
///
/// ```
/// use egm_topology::TransitStubConfig;
///
/// // A small, fast model for tests.
/// let model = TransitStubConfig::small().with_clients(16).with_seed(3).build();
/// assert_eq!(model.client_count(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Routers per transit domain (fully meshed internally).
    pub routers_per_transit: usize,
    /// Stub domains hanging off each transit router.
    pub stubs_per_transit_router: usize,
    /// Routers per stub domain.
    pub routers_per_stub: usize,
    /// Number of protocol clients to attach (each to a distinct stub
    /// router).
    pub clients: usize,
    /// Side of the square plane in map units.
    pub plane_size: f64,
    /// Latency per map unit of distance, in milliseconds.
    pub ms_per_unit: f64,
    /// Lower bound on any router–router link latency (ms).
    pub min_link_ms: f64,
    /// Client access-link latency (ms); the paper uses 1 ms client–stub.
    pub client_stub_ms: f64,
    /// Spread (std-dev) of transit routers around their domain center.
    pub transit_spread: f64,
    /// Spread (std-dev) of stub routers around their transit router.
    pub stub_spread: f64,
    /// Extra inter-domain links added beyond the spanning tree.
    pub extra_domain_links: usize,
    /// Whether stub domains get an internal ring in addition to the star
    /// onto the transit router.
    pub stub_ring: bool,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        // ~10*10 transit + 10*10*4*7 = 2900 routers ≈ Inet-3.0's 3037.
        TransitStubConfig {
            transit_domains: 10,
            routers_per_transit: 10,
            stubs_per_transit_router: 4,
            routers_per_stub: 7,
            clients: 100,
            plane_size: 1000.0,
            ms_per_unit: 0.062,
            min_link_ms: 0.5,
            client_stub_ms: 1.0,
            transit_spread: 40.0,
            stub_spread: 25.0,
            extra_domain_links: 20,
            stub_ring: true,
            seed: 0,
        }
    }
}

/// Intermediate output of topology generation: the router graph plus the
/// structural indices both routing backends need. Transit routers occupy
/// vertices `0..transit_count`, stub routers the next `stub_count`
/// vertices grouped by domain; clients are *not* in the graph yet.
struct Generated {
    graph: Graph,
    coords: Vec<Point>,
    transit_count: usize,
    stub_count: usize,
    /// Client attachment picks: indices into the flattened stub-router
    /// list (stub router `s` is vertex `transit_count + s`).
    picks: Vec<usize>,
}

impl TransitStubConfig {
    /// A reduced model (~90 routers) for fast unit and property tests.
    pub fn small() -> Self {
        TransitStubConfig {
            transit_domains: 3,
            routers_per_transit: 3,
            stubs_per_transit_router: 3,
            routers_per_stub: 3,
            clients: 16,
            extra_domain_links: 2,
            ..TransitStubConfig::default()
        }
    }

    /// A configuration sized for `clients` protocol nodes (the 1k–1M
    /// scale axis): the transit core stays at the default 100 routers so
    /// the two-level core matrix stays small, while stub capacity grows
    /// with the client count — at 1M clients that is ~1 430 stub domains
    /// per transit router, still O(n) routers and O(domains) tables.
    ///
    /// # Examples
    ///
    /// ```
    /// use egm_topology::TransitStubConfig;
    ///
    /// let c = TransitStubConfig::scaled(10_000);
    /// assert!(c.stub_router_count() >= 10_000);
    /// assert_eq!(c.transit_domains * c.routers_per_transit, 100);
    /// ```
    pub fn scaled(clients: usize) -> Self {
        let base = TransitStubConfig::default();
        let core = base.transit_domains * base.routers_per_transit;
        let needed = clients
            .div_ceil(core * base.routers_per_stub)
            .max(base.stubs_per_transit_router);
        TransitStubConfig {
            stubs_per_transit_router: needed,
            clients,
            ..base
        }
    }

    /// Sets the number of clients (builder style).
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the generation seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of routers this configuration generates.
    pub fn router_count(&self) -> usize {
        let transit = self.transit_domains * self.routers_per_transit;
        transit + transit * self.stubs_per_transit_router * self.routers_per_stub
    }

    /// Total number of stub routers (the attachment points for clients).
    pub fn stub_router_count(&self) -> usize {
        self.transit_domains
            * self.routers_per_transit
            * self.stubs_per_transit_router
            * self.routers_per_stub
    }

    /// Generates the router graph and routes all clients, producing the
    /// [`RoutedModel`] oracle in the compact two-level layout (see the
    /// module docs).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate: zero domains/routers/
    /// clients, or more clients than stub routers (clients must attach to
    /// *distinct* stub routers, §5.1).
    pub fn build(&self) -> RoutedModel {
        let g = self.generate();
        let transit = g.transit_count;
        let rps = self.routers_per_stub;
        let spt = self.stubs_per_transit_router;

        // Core: shortest paths over the transit mesh only. Exact because
        // stub domains are reachable solely through their own transit
        // router, so no core shortest path ever detours through a stub.
        let mut core_graph = Graph::new(transit);
        for a in 0..transit {
            for &(b, w) in g.graph.neighbors(a) {
                if b < transit && b > a {
                    core_graph.add_edge(a, b, w);
                }
            }
        }
        let mut core_latency_ms = vec![0.0; transit * transit];
        let mut core_hops = vec![0u32; transit * transit];
        for t in 0..transit {
            let sp = core_graph.shortest_paths(t);
            for u in 0..transit {
                core_latency_ms[t * transit + u] = if t == u { 0.0 } else { sp.latency_ms[u] };
                core_hops[t * transit + u] = if t == u { 0 } else { sp.hops[u] };
            }
        }
        symmetrize(&mut core_latency_ms, &mut core_hops, transit);

        // Per stub domain: shortest paths over its members plus its
        // transit router (matrix index `rps`). Domain `d` owns vertices
        // `transit + d*rps ..` and hangs off transit router `d / spt`.
        let domain_count = g.stub_count / rps;
        let mut domains = Vec::with_capacity(domain_count);
        for d in 0..domain_count {
            let base = transit + d * rps;
            let t_vertex = d / spt;
            let w = rps + 1;
            let mut dg = Graph::new(w);
            for m in 0..rps {
                for &(nb, weight) in g.graph.neighbors(base + m) {
                    if nb == t_vertex {
                        dg.add_edge(m, rps, weight);
                    } else if nb >= base && nb < base + rps && nb > base + m {
                        dg.add_edge(m, nb - base, weight);
                    }
                }
            }
            let mut latency_ms = vec![0.0; w * w];
            let mut hops = vec![0u32; w * w];
            for s in 0..w {
                let sp = dg.shortest_paths(s);
                for u in 0..w {
                    latency_ms[s * w + u] = if s == u { 0.0 } else { sp.latency_ms[u] };
                    hops[s * w + u] = if s == u { 0 } else { sp.hops[u] };
                }
            }
            symmetrize(&mut latency_ms, &mut hops, w);
            domains.push(DomainTable {
                core_index: t_vertex as u32,
                members: rps as u32,
                latency_ms,
                hops,
            });
        }

        // Clients: attachment records plus coordinates (clients sit at
        // their stub router's location). No client vertices are ever added
        // to a graph and no n×n matrix is materialized.
        let mut clients = Vec::with_capacity(self.clients);
        let mut client_coords = Vec::with_capacity(self.clients);
        for &s in &g.picks {
            clients.push(ClientAttachment {
                domain: (s / rps) as u32,
                member: (s % rps) as u32,
            });
            client_coords.push(g.coords[transit + s]);
        }

        RoutedModel::from_two_level(
            self.client_stub_ms,
            transit,
            core_latency_ms,
            core_hops,
            domains,
            &clients,
            client_coords,
            g.graph.vertex_count(),
        )
    }

    /// Legacy dense routing: adds the clients to the router graph and runs
    /// Dijkstra from every client, materializing `n × n` matrices. Kept
    /// for the equivalence tests that pin [`TransitStubConfig::build`]'s
    /// compact layout to the brute-force answer; O(n²) memory, so only
    /// suitable for small `n`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TransitStubConfig::build`].
    pub fn build_dense(&self) -> RoutedModel {
        let g = self.generate();
        let mut graph = g.graph;
        let mut coords = g.coords;
        let mut client_vertices = Vec::with_capacity(self.clients);
        let mut client_coords = Vec::with_capacity(self.clients);
        for &s in &g.picks {
            let stub = g.transit_count + s;
            let v = graph.add_vertex();
            // Clients sit at their stub router's location.
            coords.push(coords[stub]);
            // Access links have a fixed latency regardless of distance.
            graph.add_edge(v, stub, self.client_stub_ms);
            client_vertices.push(v);
            client_coords.push(coords[stub]);
        }

        let n = self.clients;
        let mut latency = vec![0.0; n * n];
        let mut hops = vec![0u32; n * n];
        for (i, &src) in client_vertices.iter().enumerate() {
            let sp = graph.shortest_paths(src);
            for (j, &dst) in client_vertices.iter().enumerate() {
                latency[i * n + j] = if i == j { 0.0 } else { sp.latency_ms[dst] };
                // Hop distance is measured between the clients' stub
                // attachment points (router-level hops), so the two client
                // access links are not counted — matching how §5.1 reports
                // "hop distance between client nodes" for ModelNet.
                hops[i * n + j] = if i == j {
                    0
                } else {
                    sp.hops[dst].saturating_sub(2)
                };
            }
        }
        // Dijkstra is deterministic and the graph undirected, but float
        // summation order differs per direction; symmetrize to the mean.
        symmetrize(&mut latency, &mut hops, n);
        RoutedModel::from_matrices(latency, hops, client_coords, graph.vertex_count() - n)
    }

    /// Generates the router graph and draws the client attachment picks
    /// (steps 1–3 plus the attachment sampling of step 4). Shared by both
    /// routing backends so they see the identical topology for a seed.
    fn generate(&self) -> Generated {
        assert!(self.transit_domains > 0, "need at least one transit domain");
        assert!(
            self.routers_per_transit > 0,
            "need routers per transit domain"
        );
        assert!(self.clients > 0, "need at least one client");
        assert!(
            self.clients <= self.stub_router_count(),
            "clients ({}) exceed distinct stub routers ({})",
            self.clients,
            self.stub_router_count()
        );
        assert!(
            self.ms_per_unit > 0.0 && self.min_link_ms > 0.0,
            "latency scale must be positive"
        );

        let mut rng = Rng::seed_from_u64(self.seed);
        let mut graph = Graph::new(0);
        let mut coords: Vec<Point> = Vec::new();

        // 1. Transit domains: centers + clustered routers, full mesh inside.
        let mut domain_routers: Vec<Vec<usize>> = Vec::with_capacity(self.transit_domains);
        for _ in 0..self.transit_domains {
            let center = Point::new(
                rng.range_f64(0.1 * self.plane_size, 0.9 * self.plane_size),
                rng.range_f64(0.1 * self.plane_size, 0.9 * self.plane_size),
            );
            let mut routers = Vec::with_capacity(self.routers_per_transit);
            for _ in 0..self.routers_per_transit {
                let p = Point::new(
                    rng.normal(center.x, self.transit_spread),
                    rng.normal(center.y, self.transit_spread),
                )
                .clamped(self.plane_size);
                let v = graph.add_vertex();
                coords.push(p);
                routers.push(v);
            }
            for i in 0..routers.len() {
                for j in (i + 1)..routers.len() {
                    self.link(&mut graph, &coords, routers[i], routers[j]);
                }
            }
            domain_routers.push(routers);
        }
        let transit_count = graph.vertex_count();

        // 2. Inter-domain connectivity: random spanning tree + extra links.
        let mut order: Vec<usize> = (0..self.transit_domains).collect();
        sample::shuffle(&mut rng, &mut order);
        for w in order.windows(2) {
            let a = *sample::choose(&mut rng, &domain_routers[w[0]]).expect("non-empty domain");
            let b = *sample::choose(&mut rng, &domain_routers[w[1]]).expect("non-empty domain");
            self.link(&mut graph, &coords, a, b);
        }
        if self.transit_domains > 1 {
            for _ in 0..self.extra_domain_links {
                let da = rng.range_usize(0, self.transit_domains);
                let mut db = rng.range_usize(0, self.transit_domains);
                while db == da {
                    db = rng.range_usize(0, self.transit_domains);
                }
                let a = *sample::choose(&mut rng, &domain_routers[da]).expect("non-empty");
                let b = *sample::choose(&mut rng, &domain_routers[db]).expect("non-empty");
                if !graph.has_edge(a, b) {
                    self.link(&mut graph, &coords, a, b);
                }
            }
        }

        // 3. Stub domains: star onto their transit router (+ optional ring).
        for domain in &domain_routers {
            for &transit in domain {
                for _ in 0..self.stubs_per_transit_router {
                    let stub_center = Point::new(
                        rng.normal(coords[transit].x, 3.0 * self.stub_spread),
                        rng.normal(coords[transit].y, 3.0 * self.stub_spread),
                    )
                    .clamped(self.plane_size);
                    let mut members = Vec::with_capacity(self.routers_per_stub);
                    for _ in 0..self.routers_per_stub {
                        let p = Point::new(
                            rng.normal(stub_center.x, self.stub_spread),
                            rng.normal(stub_center.y, self.stub_spread),
                        )
                        .clamped(self.plane_size);
                        let v = graph.add_vertex();
                        coords.push(p);
                        members.push(v);
                        self.link(&mut graph, &coords, v, transit);
                    }
                    if self.stub_ring && members.len() > 2 {
                        for i in 0..members.len() {
                            let j = (i + 1) % members.len();
                            self.link(&mut graph, &coords, members[i], members[j]);
                        }
                    }
                }
            }
        }
        debug_assert!(graph.is_connected(), "generated graph must be connected");

        // 4 (sampling only). Clients pick distinct stub routers.
        let stub_count = graph.vertex_count() - transit_count;
        let picks = sample::distinct_indices(&mut rng, stub_count, self.clients);
        Generated {
            graph,
            coords,
            transit_count,
            stub_count,
            picks,
        }
    }

    /// Adds a distance-proportional link between two placed routers.
    fn link(&self, graph: &mut Graph, coords: &[Point], a: usize, b: usize) {
        if a == b || graph.has_edge(a, b) {
            return;
        }
        let latency = (coords[a].distance(coords[b]) * self.ms_per_unit).max(self.min_link_ms);
        graph.add_edge(a, b, latency);
    }
}

/// Symmetrizes flattened `n × n` latency/hop matrices in place: latency to
/// the directional mean (float summation order differs per direction),
/// hops to the directional minimum.
fn symmetrize(latency_ms: &mut [f64], hops: &mut [u32], n: usize) {
    for i in 0..n {
        for j in (i + 1)..n {
            let l = (latency_ms[i * n + j] + latency_ms[j * n + i]) / 2.0;
            latency_ms[i * n + j] = l;
            latency_ms[j * n + i] = l;
            let h = hops[i * n + j].min(hops[j * n + i]);
            hops[i * n + j] = h;
            hops[j * n + i] = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::TransitStubConfig;

    #[test]
    fn small_model_is_finite_and_symmetric() {
        let m = TransitStubConfig::small().with_seed(1).build();
        let n = m.client_count();
        assert_eq!(n, 16);
        for a in 0..n {
            for b in 0..n {
                let l = m.latency_ms(a, b);
                assert!(l.is_finite(), "unreachable pair ({a},{b})");
                assert_eq!(l, m.latency_ms(b, a));
                if a != b {
                    assert!(l >= 2.0 * 1.0, "two access links minimum, got {l}");
                    assert!(
                        m.hops(a, b) >= 1,
                        "distinct stubs are at least one router hop"
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_reproduces_model() {
        let a = TransitStubConfig::small().with_seed(7).build();
        let b = TransitStubConfig::small().with_seed(7).build();
        for i in 0..a.client_count() {
            for j in 0..a.client_count() {
                assert_eq!(a.latency_ms(i, j), b.latency_ms(i, j));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TransitStubConfig::small().with_seed(1).build();
        let b = TransitStubConfig::small().with_seed(2).build();
        let mut any_diff = false;
        for i in 0..a.client_count() {
            for j in 0..a.client_count() {
                if a.latency_ms(i, j) != b.latency_ms(i, j) {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn router_count_matches_formula() {
        let c = TransitStubConfig::default();
        assert_eq!(c.router_count(), 100 + 2800);
        let m = TransitStubConfig::small()
            .with_clients(4)
            .with_seed(0)
            .build();
        assert_eq!(m.router_count(), TransitStubConfig::small().router_count());
    }

    #[test]
    #[should_panic(expected = "exceed distinct stub routers")]
    fn too_many_clients_panics() {
        let mut c = TransitStubConfig::small();
        c.clients = c.stub_router_count() + 1;
        let _ = c.build();
    }

    #[test]
    fn default_model_matches_paper_shape() {
        // §5.1: mean hops 5.54 (74% in 5-6); mean latency 49.83ms
        // (50% in 39-60ms). We assert the calibrated shape loosely.
        let m = TransitStubConfig::default().with_seed(42).build();
        let s = m.stats();
        assert!(
            (4.0..=7.0).contains(&s.mean_hops),
            "mean hops {} out of calibration band",
            s.mean_hops
        );
        assert!(
            (38.0..=62.0).contains(&s.mean_latency_ms),
            "mean latency {} out of calibration band",
            s.mean_latency_ms
        );
        assert!(
            s.frac_latency_39_60 > 0.25,
            "band fraction {}",
            s.frac_latency_39_60
        );
        assert!(
            s.frac_hops_5_6 > 0.3,
            "hop band fraction {}",
            s.frac_hops_5_6
        );
    }

    #[test]
    fn routed_layout_holds_no_client_matrix() {
        let m = TransitStubConfig::default()
            .with_clients(100)
            .with_seed(5)
            .build();
        let shape = m.memory_shape();
        assert_eq!(shape.dense_cells, 0, "no n×n client matrix");
        assert_eq!(shape.core_cells, 2 * 100 * 100, "10×10 transit core");
        assert_eq!(shape.client_entries, 100);
    }

    #[test]
    fn two_level_matches_dense_reference() {
        // The proptest in tests/properties.rs fuzzes this; here one fixed
        // seed guards the decomposition in the unit suite.
        let config = TransitStubConfig::small().with_clients(12).with_seed(9);
        let compact = config.build();
        let dense = config.build_dense();
        for a in 0..12 {
            for b in 0..12 {
                let dl = dense.latency_ms(a, b);
                let cl = compact.latency_ms(a, b);
                assert!(
                    (dl - cl).abs() < 1e-9,
                    "latency mismatch at ({a},{b}): dense {dl} vs two-level {cl}"
                );
                assert_eq!(
                    dense.hops(a, b),
                    compact.hops(a, b),
                    "hop mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn scaled_config_hosts_requested_clients() {
        for n in [1_000usize, 4_000, 10_000, 100_000, 1_000_000] {
            let c = TransitStubConfig::scaled(n);
            assert!(c.stub_router_count() >= n, "capacity for {n}");
            assert_eq!(
                c.transit_domains * c.routers_per_transit,
                100,
                "core stays small"
            );
            // Capacity tracks demand: never more than one extra stub
            // domain's worth per transit router, so router count (and
            // with it generation time and domain tables) stays O(n).
            let slack = c.stub_router_count() - n;
            if c.stubs_per_transit_router > TransitStubConfig::default().stubs_per_transit_router {
                assert!(
                    slack < 100 * c.routers_per_stub,
                    "overshoot for {n}: {slack}"
                );
            }
        }
        // Small client counts keep the default shape.
        assert_eq!(
            TransitStubConfig::scaled(100).stubs_per_transit_router,
            TransitStubConfig::default().stubs_per_transit_router
        );
    }
}
