//! Planar geometry for pseudo-geographical placement.

use serde::{Deserialize, Serialize};

/// A point on the pseudo-geographical plane.
///
/// Units are abstract "map units"; the generator converts distances to
/// milliseconds through [`TransitStubConfig::ms_per_unit`].
///
/// [`TransitStubConfig::ms_per_unit`]: crate::TransitStubConfig
///
/// # Examples
///
/// ```
/// use egm_topology::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in map units.
    pub x: f64,
    /// Vertical coordinate in map units.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Clamps the point into the square `[0, size] × [0, size]`.
    pub fn clamped(self, size: f64) -> Point {
        Point {
            x: self.x.clamp(0.0, size),
            y: self.y.clamp(0.0, size),
        }
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::Point;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_triangle_inequality() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let c = Point::new(5.0, 5.0);
        assert!(a.distance(b) <= a.distance(c) + c.distance(b) + 1e-12);
    }

    #[test]
    fn clamped_respects_bounds() {
        let p = Point::new(-5.0, 1500.0).clamped(1000.0);
        assert_eq!(p, Point::new(0.0, 1000.0));
        let q = Point::new(500.0, 500.0).clamped(1000.0);
        assert_eq!(q, Point::new(500.0, 500.0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Point::new(1.25, 3.0).to_string(), "(1.2, 3.0)");
    }
}
