//! Aggregate model statistics matching the figures quoted in §5.1 of the
//! paper.

use serde::{Deserialize, Serialize};

/// Distributional properties of a [`RoutedModel`](crate::RoutedModel),
/// mirroring the quantities the paper reports for its Inet-3.0 model:
/// *"average hop distance between client nodes is 5.54, with 74.28 % of
/// nodes within 5 and 6 hops; average end-to-end latency of 49.83 ms, with
/// 50 % of nodes within 39 ms and 60 ms."*
///
/// # Examples
///
/// ```
/// use egm_topology::ModelStats;
///
/// let s = ModelStats::from_pairs(&[40.0, 50.0, 60.0], &[5, 6, 7], 100);
/// assert_eq!(s.mean_latency_ms, 50.0);
/// assert_eq!(s.pair_count, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Number of distinct client pairs measured.
    pub pair_count: usize,
    /// Number of routers in the generating graph.
    pub router_count: usize,
    /// Mean client-to-client one-way latency (ms).
    pub mean_latency_ms: f64,
    /// Median client-to-client one-way latency (ms).
    pub median_latency_ms: f64,
    /// Fraction of pairs with latency within [39 ms, 60 ms] — the band the
    /// paper quotes as holding 50 % of pairs.
    pub frac_latency_39_60: f64,
    /// Mean router-level hop distance between clients.
    pub mean_hops: f64,
    /// Fraction of pairs within 5–6 hops — the band the paper quotes as
    /// holding 74.28 % of pairs.
    pub frac_hops_5_6: f64,
    /// Minimum pairwise latency (ms).
    pub min_latency_ms: f64,
    /// Maximum pairwise latency (ms).
    pub max_latency_ms: f64,
}

impl ModelStats {
    /// Computes statistics from per-pair samples.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths.
    pub fn from_pairs(latency_ms: &[f64], hops: &[u32], router_count: usize) -> Self {
        assert!(!latency_ms.is_empty(), "no pairs to summarize");
        assert_eq!(latency_ms.len(), hops.len(), "mismatched sample lengths");
        let n = latency_ms.len() as f64;
        let mean_latency_ms = latency_ms.iter().sum::<f64>() / n;
        let mut sorted = latency_ms.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let median_latency_ms = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let frac_latency_39_60 = latency_ms
            .iter()
            .filter(|&&l| (39.0..=60.0).contains(&l))
            .count() as f64
            / n;
        let mean_hops = hops.iter().map(|&h| h as f64).sum::<f64>() / n;
        let frac_hops_5_6 = hops.iter().filter(|&&h| h == 5 || h == 6).count() as f64 / n;
        ModelStats {
            pair_count: latency_ms.len(),
            router_count,
            mean_latency_ms,
            median_latency_ms,
            frac_latency_39_60,
            mean_hops,
            frac_hops_5_6,
            min_latency_ms: sorted[0],
            max_latency_ms: *sorted.last().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for ModelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} routers; mean hops {:.2} ({:.1}% in 5-6); mean latency {:.2}ms \
             (median {:.2}ms, {:.1}% in 39-60ms, range {:.1}-{:.1}ms)",
            self.router_count,
            self.mean_hops,
            self.frac_hops_5_6 * 100.0,
            self.mean_latency_ms,
            self.median_latency_ms,
            self.frac_latency_39_60 * 100.0,
            self.min_latency_ms,
            self.max_latency_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::ModelStats;

    #[test]
    fn summarizes_simple_samples() {
        let s = ModelStats::from_pairs(&[39.0, 45.0, 61.0, 100.0], &[5, 6, 4, 7], 42);
        assert_eq!(s.pair_count, 4);
        assert_eq!(s.router_count, 42);
        assert!((s.mean_latency_ms - 61.25).abs() < 1e-9);
        assert_eq!(s.median_latency_ms, 53.0);
        assert_eq!(s.frac_latency_39_60, 0.5);
        assert_eq!(s.mean_hops, 5.5);
        assert_eq!(s.frac_hops_5_6, 0.5);
        assert_eq!(s.min_latency_ms, 39.0);
        assert_eq!(s.max_latency_ms, 100.0);
    }

    #[test]
    fn odd_median() {
        let s = ModelStats::from_pairs(&[1.0, 9.0, 5.0], &[1, 1, 1], 0);
        assert_eq!(s.median_latency_ms, 5.0);
    }

    #[test]
    #[should_panic(expected = "no pairs")]
    fn empty_input_panics() {
        let _ = ModelStats::from_pairs(&[], &[], 0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        let _ = ModelStats::from_pairs(&[1.0], &[1, 2], 0);
    }

    #[test]
    fn display_mentions_key_quantities() {
        let s = ModelStats::from_pairs(&[50.0], &[5], 3037);
        let text = s.to_string();
        assert!(text.contains("3037 routers"));
        assert!(text.contains("mean hops 5.00"));
    }
}
