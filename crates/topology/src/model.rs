//! The routed network model: the latency/hop/coordinate oracle exposed to
//! the simulator and to the paper's performance monitors.

use crate::geometry::Point;
use crate::stats::ModelStats;
use egm_rng::Rng;
use serde::{Deserialize, Serialize};

/// Hard cap on the number of client pairs [`RoutedModel::stats`] measures
/// exactly; larger models are summarized over a deterministic strided
/// subsample so statistics stay O(1 M) in memory even at 10k clients.
const MAX_STATS_PAIRS: usize = 1 << 20;

/// Client-to-client routed network model.
///
/// This is the "model file" of the paper's ModelNet setup (§4.3): the
/// one-way latency and hop-count oracle between the *client* nodes that
/// run the protocol, plus each client's pseudo-geographic coordinate.
/// The simulator uses the latency oracle to delay packets; oracle monitors
/// read latency or coordinates directly, exactly as the paper extracts
/// them "directly from the model file".
///
/// Two storage layouts back the same interface:
///
/// * **Dense** — an explicit `n × n` matrix, used by the synthetic
///   constructors and [`RoutedModel::from_matrices`]. Fine for test-sized
///   models, O(n²) memory.
/// * **Two-level routed** — produced by
///   [`TransitStubConfig::build`](crate::TransitStubConfig): shortest
///   paths are stored at *router* granularity only (a transit-core matrix
///   plus per-stub-domain tables), and each client carries an attachment
///   record. A client-pair latency is composed on demand as
///   `access + router distance + access`, so memory is O(n + routers²-at-
///   core-granularity) and 1k–10k-node models stay in the low megabytes.
///   Every lookup is O(1) (three table reads), so no caching layer is
///   needed in front of [`RoutedModel::latency_ms`].
///
/// [`RoutedModel::memory_shape`] exposes which layout is in use and how
/// many cells each table holds, so scale tests can assert that no `n × n`
/// client matrix was ever allocated.
///
/// # Examples
///
/// ```
/// use egm_topology::RoutedModel;
///
/// let model = RoutedModel::uniform_synthetic(8, 39.0, 60.0, 1);
/// assert_eq!(model.client_count(), 8);
/// let l = model.latency_ms(0, 5);
/// assert!((39.0..60.0).contains(&l));
/// assert_eq!(l, model.latency_ms(5, 0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedModel {
    n: usize,
    /// Pseudo-geographic coordinate per client.
    coords: Vec<Point>,
    /// Number of routers in the underlying graph (0 for synthetic models).
    router_count: usize,
    repr: ModelRepr,
}

/// Storage layout behind the latency/hop oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ModelRepr {
    /// Flattened `n × n` client matrices.
    Dense {
        latency_ms: Vec<f64>,
        hops: Vec<u32>,
    },
    /// Router-granularity tables + client attachment records.
    Routed(TwoLevelModel),
}

/// The sparse routed layout: a dense matrix over the (small) transit core,
/// per-stub-domain shortest-path tables, and one attachment record per
/// client. Exact for transit–stub graphs because every inter-domain path
/// must traverse the attached transit routers (stub domains connect to the
/// core through exactly one transit router).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TwoLevelModel {
    /// Client access-link latency (ms), applied twice per client pair.
    pub(crate) access_ms: f64,
    /// Number of transit (core) routers.
    pub(crate) core_n: usize,
    /// Flattened `core_n × core_n` symmetric latency matrix (ms).
    pub(crate) core_latency_ms: Vec<f64>,
    /// Flattened `core_n × core_n` symmetric hop matrix.
    pub(crate) core_hops: Vec<u32>,
    /// One table per stub domain (consulted only for same-domain pairs).
    pub(crate) domains: Vec<DomainTable>,
    /// Per-client routing column. One 32-byte record per client keeps the
    /// hot cross-domain lookup at three memory touches — `cols[a]`,
    /// `cols[b]`, one core-matrix cell — which is what puts
    /// [`RoutedModel::latency_ms`] within noise of the dense matrix read
    /// it replaced on the simulator's per-transmit path.
    pub(crate) cols: Vec<ClientCol>,
}

/// Per-client routing column of the two-level layout.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct ClientCol {
    /// Stub domain index.
    pub(crate) domain: u32,
    /// Member index of the client's stub router within its domain.
    pub(crate) member: u32,
    /// Core index of the client's transit router.
    pub(crate) core: u32,
    /// Router hops from the client's stub router up to its transit router.
    pub(crate) up_hops: u32,
    /// Latency from the client's stub router up to its transit router.
    pub(crate) up_ms: f64,
}

/// Shortest paths within one stub domain (its members plus its transit
/// router, which sits at matrix index `members`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DomainTable {
    /// Core index of the transit router this domain hangs off.
    pub(crate) core_index: u32,
    /// Number of stub routers in the domain; matrices are
    /// `(members + 1) × (members + 1)` with the transit router last.
    pub(crate) members: u32,
    /// Flattened symmetric intra-domain latency matrix (ms).
    pub(crate) latency_ms: Vec<f64>,
    /// Flattened symmetric intra-domain hop matrix.
    pub(crate) hops: Vec<u32>,
}

/// Where one client attaches to the router level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct ClientAttachment {
    /// Index into [`TwoLevelModel::domains`].
    pub(crate) domain: u32,
    /// Member index of the client's stub router within its domain.
    pub(crate) member: u32,
}

/// Storage-shape summary of a [`RoutedModel`], for memory assertions.
///
/// # Examples
///
/// ```
/// use egm_topology::TransitStubConfig;
///
/// let model = TransitStubConfig::small().with_clients(16).build();
/// let shape = model.memory_shape();
/// assert_eq!(shape.dense_cells, 0, "routed models hold no n×n matrix");
/// assert_eq!(shape.client_entries, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryShape {
    /// Cells in client-granularity `n × n` matrices (0 for the routed
    /// layout).
    pub dense_cells: usize,
    /// Cells in the transit-core router matrix.
    pub core_cells: usize,
    /// Total cells across all per-stub-domain tables.
    pub domain_cells: usize,
    /// Entries in the client attachment table (== client count for the
    /// routed layout, 0 for dense).
    pub client_entries: usize,
}

impl TwoLevelModel {
    /// Builds the flattened per-client columns from attachment records.
    fn new(
        access_ms: f64,
        core_n: usize,
        core_latency_ms: Vec<f64>,
        core_hops: Vec<u32>,
        domains: Vec<DomainTable>,
        attachments: &[ClientAttachment],
    ) -> Self {
        let mut cols = Vec::with_capacity(attachments.len());
        for c in attachments {
            let d = &domains[c.domain as usize];
            assert!(c.member < d.members, "client attached outside its domain");
            let w = d.members as usize + 1;
            // member → own transit router (transit sits at index k).
            let up = c.member as usize * w + d.members as usize;
            cols.push(ClientCol {
                domain: c.domain,
                member: c.member,
                core: d.core_index,
                up_hops: d.hops[up],
                up_ms: d.latency_ms[up],
            });
        }
        TwoLevelModel {
            access_ms,
            core_n,
            core_latency_ms,
            core_hops,
            domains,
            cols,
        }
    }

    /// Router-level latency/hops between two distinct clients. The pair is
    /// canonicalized (`a < b`) so the float summation order — and thus the
    /// exact result — is identical in both directions.
    #[inline]
    fn parts(&self, a: usize, b: usize) -> PairParts {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let ca = self.cols[a];
        let cb = self.cols[b];
        if ca.domain != cb.domain {
            let core = ca.core as usize * self.core_n + cb.core as usize;
            PairParts {
                latency_ms: ca.up_ms + self.core_latency_ms[core] + cb.up_ms,
                hops: ca.up_hops + self.core_hops[core] + cb.up_hops,
            }
        } else {
            let d = &self.domains[ca.domain as usize];
            let w = d.members as usize + 1;
            let idx = ca.member as usize * w + cb.member as usize;
            PairParts {
                latency_ms: d.latency_ms[idx],
                hops: d.hops[idx],
            }
        }
    }
}

/// Latency/hops of the router-level segment of one client pair.
struct PairParts {
    latency_ms: f64,
    hops: u32,
}

/// The two smallest values offered under *distinct* keys: `best` is the
/// global minimum, `second` the minimum among offers whose key differs
/// from `best`'s. Used to find the cheapest cross-domain client pair
/// within one (transit router, shard) group without enumerating clients.
#[derive(Debug, Clone, Copy)]
struct TwoMinByKey {
    best: f64,
    best_key: u32,
    second: f64,
}

impl TwoMinByKey {
    fn new() -> Self {
        TwoMinByKey {
            best: f64::INFINITY,
            best_key: u32::MAX,
            second: f64::INFINITY,
        }
    }

    fn offer(&mut self, value: f64, key: u32) {
        if key == self.best_key {
            if value < self.best {
                self.best = value;
            }
        } else if value < self.best {
            // The displaced best is the minimum among keys != `key`
            // (it was the global minimum and its key differs).
            self.second = self.best;
            self.best = value;
            self.best_key = key;
        } else if value < self.second {
            self.second = value;
        }
    }
}

/// Folds a candidate into an optional running minimum.
fn min_opt(best: Option<f64>, candidate: f64) -> Option<f64> {
    match best {
        Some(b) if b <= candidate => Some(b),
        _ => Some(candidate),
    }
}

/// A topology-aware node→shard assignment produced by
/// [`RoutedModel::partition_plan`].
///
/// The plan's invariant is **domain alignment**: no stub domain is ever
/// split across shards, so the minimum cross-shard latency — the sharded
/// simulator's conservative lookahead — is an *inter-domain* path (two
/// access links plus up-links and a core traversal), never the ~2–3 ms
/// stub-access floor that arbitrary cuts collapse to. On top of the
/// invariant the planner clusters whole transit-router subtrees that sit
/// close on the core, so the realized floor approaches the inter-cluster
/// core distance rather than the cheapest same-router domain pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// Shard per client.
    assign: Vec<u32>,
    /// Number of shards (every one of them non-empty).
    shards: usize,
    /// Predicted load per shard in the planner's balance unit (client
    /// count under [`PlanBalance::Nodes`], estimated events per unit time
    /// under [`PlanBalance::Rate`]).
    shard_weights: Vec<f64>,
}

impl PartitionPlan {
    /// Shard per client, indexed by client id.
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// Number of shards; every shard owns at least one client.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Predicted per-shard load in the planner's balance unit.
    pub fn shard_weights(&self) -> &[f64] {
        &self.shard_weights
    }
}

/// What [`RoutedModel::partition_plan`] balances shards by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanBalance {
    /// Balance by client count.
    Nodes,
    /// Balance by the per-domain event-rate estimate
    /// ([`RoutedModel::domain_event_rates`]): each client contributes
    /// `fanout × view_degree` events per unit traffic share, so a
    /// domain's predicted rate scales with its population times the
    /// configured gossip intensity.
    Rate {
        /// Gossip fanout (eager/lazy targets per relay).
        fanout: usize,
        /// Partial-view degree (shuffle and retry traffic scale with it).
        view_degree: usize,
    },
}

/// Weight-capped single-linkage agglomeration: merges the closest pair of
/// clusters (by min inter-cluster core latency) whose combined weight
/// stays under the cap, relaxing the cap when no pair qualifies, until
/// exactly `shards` clusters remain. Single linkage maximizes the
/// *minimum* spacing between the final clusters — exactly the quantity
/// the conservative lookahead is derived from.
struct UnitClusters {
    /// Cluster id per unit (units are core routers with attached clients).
    cluster_of: Vec<usize>,
    /// Live cluster ids.
    live: Vec<usize>,
    /// Pairwise min core latency between clusters (indexed by cluster id).
    dist: Vec<Vec<f64>>,
    /// Total weight per cluster.
    weight: Vec<f64>,
}

impl UnitClusters {
    fn merge_to(&mut self, shards: usize) {
        let total: f64 = self.live.iter().map(|&c| self.weight[c]).sum();
        // 25% headroom over the ideal shard weight; relaxed geometrically
        // if the cap is infeasible (e.g. one unit heavier than the cap).
        let mut cap = total / shards as f64 * 1.25;
        while self.live.len() > shards {
            let mut best: Option<(f64, usize, usize)> = None;
            for (i, &a) in self.live.iter().enumerate() {
                for &b in &self.live[i + 1..] {
                    if self.weight[a] + self.weight[b] > cap {
                        continue;
                    }
                    let d = self.dist[a][b];
                    // Deterministic ties: smaller (distance, a, b) wins.
                    let better = match best {
                        None => true,
                        Some((bd, ba, bb)) => (d, a, b) < (bd, ba, bb),
                    };
                    if better {
                        best = Some((d, a, b));
                    }
                }
            }
            let Some((_, a, b)) = best else {
                cap *= 1.25;
                continue;
            };
            // Merge b into a: single-linkage distance update.
            self.weight[a] += self.weight[b];
            for &c in &self.live {
                if c != a && c != b {
                    let d = self.dist[b][c].min(self.dist[a][c]);
                    self.dist[a][c] = d;
                    self.dist[c][a] = d;
                }
            }
            for cl in &mut self.cluster_of {
                if *cl == b {
                    *cl = a;
                }
            }
            self.live.retain(|&c| c != b);
        }
    }
}

impl TwoLevelModel {
    /// See [`RoutedModel::min_cross_partition_latency_ms`]. Exact without
    /// enumerating client pairs: same-domain candidates come from the
    /// (member, shard) combinations present in each stub domain's table,
    /// cross-domain candidates from per-(transit router, shard) minima of
    /// the client up-link latencies (tracking the two smallest from
    /// distinct domains, since a same-domain pair must use the domain
    /// table instead of the core path).
    fn min_cross_partition_latency_ms(&self, assignment: &[u32]) -> Option<f64> {
        let mut best: Option<f64> = None;
        // (member, shard) combinations per domain; (transit, shard)
        // up-latency minima across domains. `aligned` tracks whether the
        // cut respects stub-domain boundaries — the invariant every
        // [`PartitionPlan`] guarantees — in which case no same-domain
        // cross-shard pair exists and the quadratic per-domain scan below
        // is skipped outright: the lookahead is the inter-domain floor.
        let mut aligned = true;
        let mut domain_groups: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.domains.len()];
        let mut core_groups: std::collections::BTreeMap<(u32, u32), TwoMinByKey> =
            std::collections::BTreeMap::new();
        for (i, col) in self.cols.iter().enumerate() {
            let shard = assignment[i];
            let dg = &mut domain_groups[col.domain as usize];
            if !dg.is_empty() && dg[0].1 != shard {
                aligned = false;
            }
            if !dg.contains(&(col.member, shard)) {
                dg.push((col.member, shard));
            }
            core_groups
                .entry((col.core, shard))
                .or_insert_with(TwoMinByKey::new)
                .offer(col.up_ms, col.domain);
        }
        // Same-domain, cross-shard pairs (including two clients on the
        // same stub router split across shards: table diagonal is zero,
        // leaving just the two access links). Domain-aligned cuts have
        // none, by construction.
        if !aligned {
            for (d_idx, groups) in domain_groups.iter().enumerate() {
                let d = &self.domains[d_idx];
                let w = d.members as usize + 1;
                for (i, &(m1, s1)) in groups.iter().enumerate() {
                    for &(m2, s2) in &groups[i..] {
                        if s1 == s2 {
                            continue;
                        }
                        let v = 2.0 * self.access_ms + d.latency_ms[m1 as usize * w + m2 as usize];
                        best = min_opt(best, v);
                    }
                }
            }
        }
        // Cross-domain, cross-shard pairs.
        let groups: Vec<((u32, u32), TwoMinByKey)> = core_groups.into_iter().collect();
        for (i, &((r1, s1), t1)) in groups.iter().enumerate() {
            for &((r2, s2), t2) in &groups[i..] {
                if s1 == s2 {
                    continue;
                }
                let core = self.core_latency_ms[r1 as usize * self.core_n + r2 as usize];
                let mut pairs: [Option<(f64, f64)>; 2] = [None, None];
                if t1.best_key != t2.best_key {
                    pairs[0] = Some((t1.best, t2.best));
                } else {
                    pairs[0] = Some((t1.best, t2.second));
                    pairs[1] = Some((t1.second, t2.best));
                }
                for (u1, u2) in pairs.into_iter().flatten() {
                    if !u1.is_finite() || !u2.is_finite() {
                        continue;
                    }
                    // `parts()` sums in ascending-client-index order,
                    // which group minima cannot recover; evaluating both
                    // orders and keeping the smaller can undershoot the
                    // true pair latency by at most float-rounding, never
                    // overshoot — the safe direction for a lookahead.
                    let a = 2.0 * self.access_ms + (u1 + core + u2);
                    let b = 2.0 * self.access_ms + (u2 + core + u1);
                    best = min_opt(best, a.min(b));
                }
            }
        }
        best
    }
}

impl RoutedModel {
    /// Builds a model from dense matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix sizes do not match `n × n`, if any latency is
    /// negative or non-finite, if the diagonal is non-zero, or if the
    /// matrices are asymmetric.
    pub fn from_matrices(
        latency_ms: Vec<f64>,
        hops: Vec<u32>,
        coords: Vec<Point>,
        router_count: usize,
    ) -> Self {
        let n = coords.len();
        assert_eq!(latency_ms.len(), n * n, "latency matrix must be n×n");
        assert_eq!(hops.len(), n * n, "hop matrix must be n×n");
        for a in 0..n {
            assert_eq!(latency_ms[a * n + a], 0.0, "diagonal must be zero");
            for b in 0..n {
                let l = latency_ms[a * n + b];
                assert!(l.is_finite() && l >= 0.0, "bad latency {l} at ({a},{b})");
                assert_eq!(l, latency_ms[b * n + a], "asymmetric latency at ({a},{b})");
                assert_eq!(
                    hops[a * n + b],
                    hops[b * n + a],
                    "asymmetric hops at ({a},{b})"
                );
            }
        }
        RoutedModel {
            n,
            coords,
            router_count,
            repr: ModelRepr::Dense { latency_ms, hops },
        }
    }

    /// Builds the two-level routed layout; used by the transit–stub
    /// generator. Validation is structural (table sizes), not O(n²).
    ///
    /// # Panics
    ///
    /// Panics if table dimensions are inconsistent with the attachment
    /// records.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_two_level(
        access_ms: f64,
        core_n: usize,
        core_latency_ms: Vec<f64>,
        core_hops: Vec<u32>,
        domains: Vec<DomainTable>,
        attachments: &[ClientAttachment],
        coords: Vec<Point>,
        router_count: usize,
    ) -> Self {
        let n = coords.len();
        assert_eq!(attachments.len(), n, "one attachment per client");
        assert_eq!(
            core_latency_ms.len(),
            core_n * core_n,
            "core matrix must be square"
        );
        assert_eq!(core_hops.len(), core_latency_ms.len());
        for d in &domains {
            let w = d.members as usize + 1;
            assert_eq!(d.latency_ms.len(), w * w, "domain table must be square");
            assert_eq!(d.hops.len(), w * w);
            assert!(
                (d.core_index as usize) < core_n,
                "domain transit router out of core range"
            );
        }
        let two_level = TwoLevelModel::new(
            access_ms,
            core_n,
            core_latency_ms,
            core_hops,
            domains,
            attachments,
        );
        RoutedModel {
            n,
            coords,
            router_count,
            repr: ModelRepr::Routed(two_level),
        }
    }

    /// Synthetic model with i.i.d. uniform pairwise latencies in
    /// `[lo_ms, hi_ms)` and no geographic structure.
    ///
    /// Hop counts are fixed at 1 and coordinates are placed on a circle so
    /// distance-based monitors remain usable in tests.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the latency range is empty or negative.
    pub fn uniform_synthetic(n: usize, lo_ms: f64, hi_ms: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one client");
        assert!(0.0 <= lo_ms && lo_ms < hi_ms, "bad latency range");
        let mut rng = Rng::seed_from_u64(seed);
        let mut latency_ms = vec![0.0; n * n];
        let mut hops = vec![0u32; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let l = rng.range_f64(lo_ms, hi_ms);
                latency_ms[a * n + b] = l;
                latency_ms[b * n + a] = l;
                hops[a * n + b] = 1;
                hops[b * n + a] = 1;
            }
        }
        let coords = (0..n)
            .map(|i| {
                let theta = i as f64 / n as f64 * std::f64::consts::TAU;
                Point::new(500.0 + 400.0 * theta.cos(), 500.0 + 400.0 * theta.sin())
            })
            .collect();
        RoutedModel {
            n,
            coords,
            router_count: 0,
            repr: ModelRepr::Dense { latency_ms, hops },
        }
    }

    /// Synthetic model where latency is proportional to distance between
    /// points uniformly placed on the plane (`ms_per_unit` scaling).
    ///
    /// Useful for testing distance-driven strategies (Radius) with an exact
    /// latency/distance correspondence.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `ms_per_unit <= 0`.
    pub fn planar_synthetic(n: usize, plane: f64, ms_per_unit: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one client");
        assert!(ms_per_unit > 0.0, "ms_per_unit must be positive");
        let mut rng = Rng::seed_from_u64(seed);
        let coords: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.range_f64(0.0, plane), rng.range_f64(0.0, plane)))
            .collect();
        let mut latency_ms = vec![0.0; n * n];
        let mut hops = vec![0u32; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let l = coords[a].distance(coords[b]) * ms_per_unit;
                latency_ms[a * n + b] = l;
                latency_ms[b * n + a] = l;
                hops[a * n + b] = 1;
                hops[b * n + a] = 1;
            }
        }
        RoutedModel {
            n,
            coords,
            router_count: 0,
            repr: ModelRepr::Dense { latency_ms, hops },
        }
    }

    /// Number of client nodes in the model.
    pub fn client_count(&self) -> usize {
        self.n
    }

    /// Number of routers in the generating graph (0 for synthetic models).
    pub fn router_count(&self) -> usize {
        self.router_count
    }

    /// One-way latency between two clients in milliseconds.
    ///
    /// O(1) for both layouts: a matrix read for dense models, three table
    /// reads composed as `access + router distance + access` for routed
    /// ones.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn latency_ms(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.n && b < self.n, "client index out of range");
        match &self.repr {
            ModelRepr::Dense { latency_ms, .. } => latency_ms[a * self.n + b],
            ModelRepr::Routed(tl) => {
                if a == b {
                    0.0
                } else {
                    2.0 * tl.access_ms + tl.parts(a, b).latency_ms
                }
            }
        }
    }

    /// Router-level hop count between two clients.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.n && b < self.n, "client index out of range");
        match &self.repr {
            ModelRepr::Dense { hops, .. } => hops[a * self.n + b],
            ModelRepr::Routed(tl) => {
                if a == b {
                    0
                } else {
                    tl.parts(a, b).hops
                }
            }
        }
    }

    /// Pseudo-geographic coordinate of a client.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn coord(&self, a: usize) -> Point {
        self.coords[a]
    }

    /// Euclidean pseudo-geographic distance between two clients.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.coords[a].distance(self.coords[b])
    }

    /// Storage-shape summary: which layout backs the oracle and how big
    /// each table is. Scale tests assert `dense_cells == 0` for generated
    /// models so no refactor can silently reintroduce an `n × n` client
    /// matrix.
    pub fn memory_shape(&self) -> MemoryShape {
        match &self.repr {
            ModelRepr::Dense { latency_ms, hops } => MemoryShape {
                dense_cells: latency_ms.len() + hops.len(),
                core_cells: 0,
                domain_cells: 0,
                client_entries: 0,
            },
            ModelRepr::Routed(tl) => MemoryShape {
                dense_cells: 0,
                core_cells: tl.core_latency_ms.len() + tl.core_hops.len(),
                domain_cells: tl
                    .domains
                    .iter()
                    .map(|d| d.latency_ms.len() + d.hops.len())
                    .sum(),
                client_entries: tl.cols.len(),
            },
        }
    }

    /// Minimum one-way latency over all client pairs assigned to
    /// *different* shards, or `None` when every client shares one shard.
    ///
    /// `assignment[c]` is client `c`'s shard. This is the lookahead bound
    /// of the sharded simulator's conservative windows: no message between
    /// shards can arrive sooner than this. Dense layouts scan their
    /// matrix; the two-level routed layout computes the exact minimum
    /// from domain tables and per-(transit, shard) up-link minima without
    /// touching client pairs, so a 10k-node derivation stays sub-
    /// millisecond. The result can differ from the pairwise scan by
    /// float-summation order only, and then only *downward* — never above
    /// the true minimum (the safe direction for a lookahead).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every client.
    pub fn min_cross_partition_latency_ms(&self, assignment: &[u32]) -> Option<f64> {
        assert_eq!(assignment.len(), self.n, "one shard per client");
        match &self.repr {
            ModelRepr::Dense { latency_ms, .. } => {
                let mut best: Option<f64> = None;
                for a in 0..self.n {
                    for b in (a + 1)..self.n {
                        if assignment[a] != assignment[b] {
                            best = min_opt(best, latency_ms[a * self.n + b]);
                        }
                    }
                }
                best
            }
            ModelRepr::Routed(tl) => tl.min_cross_partition_latency_ms(assignment),
        }
    }

    /// Stub-domain index of a client, or `None` for dense layouts (which
    /// carry no domain structure).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn client_domain(&self, client: usize) -> Option<u32> {
        assert!(client < self.n, "client index out of range");
        match &self.repr {
            ModelRepr::Dense { .. } => None,
            ModelRepr::Routed(tl) => Some(tl.cols[client].domain),
        }
    }

    /// Clients that live in stub domain `domain`, in ascending id order,
    /// or `None` for dense layouts. The fault-scenario library uses this
    /// to build correlated whole-domain outages.
    pub fn domain_clients(&self, domain: u32) -> Option<Vec<usize>> {
        let tl = match &self.repr {
            ModelRepr::Dense { .. } => return None,
            ModelRepr::Routed(tl) => tl,
        };
        Some(
            tl.cols
                .iter()
                .enumerate()
                .filter_map(|(i, col)| (col.domain == domain).then_some(i))
                .collect(),
        )
    }

    /// Stub-domain ids that hold at least one client, ascending, or
    /// `None` for dense layouts. Domain ids index into the layout's
    /// domain table; unpopulated domains are skipped.
    pub fn populated_domains(&self) -> Option<Vec<u32>> {
        let tl = match &self.repr {
            ModelRepr::Dense { .. } => return None,
            ModelRepr::Routed(tl) => tl,
        };
        let mut populated = vec![false; tl.domains.len()];
        for col in &tl.cols {
            populated[col.domain as usize] = true;
        }
        Some(
            populated
                .iter()
                .enumerate()
                .filter_map(|(d, &p)| p.then_some(d as u32))
                .collect(),
        )
    }

    /// Per-stub-domain event-rate estimate, indexed by domain id, or
    /// `None` for dense layouts.
    ///
    /// Each client relays to `fanout` gossip targets and maintains
    /// `view_degree` partial-view peers (shuffle and lazy-retry traffic
    /// scale with the view), and under the paper's homogeneous workload
    /// every client carries an expected traffic share of `1/n` of the
    /// multicast stream. A domain's predicted rate is therefore
    /// `clients_in_domain × fanout × view_degree / n` — proportional to
    /// population under homogeneous parameters, but expressed in rate
    /// units so heterogeneous per-domain gossip intensities slot in
    /// without an interface change.
    pub fn domain_event_rates(&self, fanout: usize, view_degree: usize) -> Option<Vec<f64>> {
        let tl = match &self.repr {
            ModelRepr::Dense { .. } => return None,
            ModelRepr::Routed(tl) => tl,
        };
        let per_client = fanout as f64 * view_degree as f64 / self.n as f64;
        let mut rates = vec![0.0; tl.domains.len()];
        for col in &tl.cols {
            rates[col.domain as usize] += per_client;
        }
        Some(rates)
    }

    /// Plans a domain-aligned cut of the client set into `shards` shards,
    /// or `None` when the layout exposes no domain structure (dense
    /// models) or has too few populated domains to fill every shard.
    ///
    /// The plan never splits a stub domain across shards, and it goes
    /// further than the minimal invariant: populated transit routers are
    /// clustered by weight-capped single-linkage agglomeration over the
    /// core latency matrix, so each shard is a spatially coherent region
    /// of the core and the minimum cross-shard latency — the conservative
    /// lookahead of the sharded simulator — approaches the *inter-region*
    /// core floor instead of the cheapest same-router domain pair.
    /// Balance weights come from `balance`: client count, or the
    /// [`RoutedModel::domain_event_rates`] estimate.
    ///
    /// Deterministic: identical inputs produce identical plans.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn partition_plan(&self, shards: usize, balance: PlanBalance) -> Option<PartitionPlan> {
        assert!(shards > 0, "need at least one shard");
        let tl = match &self.repr {
            ModelRepr::Dense { .. } => return None,
            ModelRepr::Routed(tl) => tl,
        };
        let per_client = match balance {
            PlanBalance::Nodes => 1.0,
            PlanBalance::Rate {
                fanout,
                view_degree,
            } => fanout as f64 * view_degree as f64 / self.n as f64,
        };
        if shards == 1 {
            return Some(PartitionPlan {
                assign: vec![0; self.n],
                shards: 1,
                shard_weights: vec![per_client * self.n as f64],
            });
        }
        // Weight per domain, and the units the planner clusters: populated
        // core routers when there are enough of them to fill every shard,
        // else individual populated domains (tiny test models).
        let mut domain_weight = vec![0.0f64; tl.domains.len()];
        for col in &tl.cols {
            domain_weight[col.domain as usize] += per_client;
        }
        let populated: Vec<usize> = (0..tl.domains.len())
            .filter(|&d| domain_weight[d] > 0.0)
            .collect();
        let mut core_populated: Vec<u32> = populated
            .iter()
            .map(|&d| tl.domains[d].core_index)
            .collect();
        core_populated.sort_unstable();
        core_populated.dedup();
        // One clustering unit per entry: (core router, domains it carries).
        let units: Vec<(u32, Vec<usize>)> = if core_populated.len() >= shards {
            core_populated
                .iter()
                .map(|&c| {
                    let ds: Vec<usize> = populated
                        .iter()
                        .copied()
                        .filter(|&d| tl.domains[d].core_index == c)
                        .collect();
                    (c, ds)
                })
                .collect()
        } else if populated.len() >= shards {
            populated
                .iter()
                .map(|&d| (tl.domains[d].core_index, vec![d]))
                .collect()
        } else {
            return None;
        };
        let u = units.len();
        let mut clusters = UnitClusters {
            cluster_of: (0..u).collect(),
            live: (0..u).collect(),
            dist: vec![vec![0.0; u]; u],
            weight: units
                .iter()
                .map(|(_, ds)| ds.iter().map(|&d| domain_weight[d]).sum())
                .collect(),
        };
        for i in 0..u {
            for j in (i + 1)..u {
                let (c1, c2) = (units[i].0 as usize, units[j].0 as usize);
                let d = tl.core_latency_ms[c1 * tl.core_n + c2];
                clusters.dist[i][j] = d;
                clusters.dist[j][i] = d;
            }
        }
        clusters.merge_to(shards);
        // Shard ids in first-unit order, so the numbering is stable.
        let mut shard_of_cluster = vec![u32::MAX; u];
        let mut shard_weights = Vec::with_capacity(shards);
        for (s, &c) in clusters.live.iter().enumerate() {
            shard_of_cluster[c] = s as u32;
            shard_weights.push(clusters.weight[c]);
        }
        let mut shard_of_domain = vec![u32::MAX; tl.domains.len()];
        for (unit, (_, ds)) in units.iter().enumerate() {
            let s = shard_of_cluster[clusters.cluster_of[unit]];
            for &d in ds {
                shard_of_domain[d] = s;
            }
        }
        let assign: Vec<u32> = tl
            .cols
            .iter()
            .map(|col| shard_of_domain[col.domain as usize])
            .collect();
        debug_assert!(assign.iter().all(|&s| (s as usize) < shards));
        Some(PartitionPlan {
            assign,
            shards,
            shard_weights,
        })
    }

    /// Aggregate statistics over distinct client pairs (§5.1 of the
    /// paper).
    ///
    /// Models with more than ~1 M pairs (n ≳ 1450) are summarized over a
    /// deterministic strided subsample of pairs so the computation stays
    /// bounded in memory at 10k clients; [`ModelStats::pair_count`] then
    /// reports the sampled count.
    pub fn stats(&self) -> ModelStats {
        let total_pairs = self.n * (self.n - 1) / 2;
        let stride = total_pairs.div_ceil(MAX_STATS_PAIRS).max(1);
        let mut lat = Vec::with_capacity(total_pairs.min(MAX_STATS_PAIRS));
        let mut hop = Vec::with_capacity(lat.capacity());
        let mut p = 0usize;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if p % stride == 0 {
                    lat.push(self.latency_ms(a, b));
                    hop.push(self.hops(a, b));
                }
                p += 1;
            }
        }
        ModelStats::from_pairs(&lat, &hop, self.router_count)
    }
}

#[cfg(test)]
mod tests {
    use super::RoutedModel;
    use crate::geometry::Point;

    #[test]
    fn uniform_synthetic_bounds_and_symmetry() {
        let m = RoutedModel::uniform_synthetic(12, 10.0, 20.0, 3);
        for a in 0..12 {
            assert_eq!(m.latency_ms(a, a), 0.0);
            for b in 0..12 {
                if a != b {
                    let l = m.latency_ms(a, b);
                    assert!((10.0..20.0).contains(&l));
                    assert_eq!(l, m.latency_ms(b, a));
                    assert_eq!(m.hops(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn planar_synthetic_latency_tracks_distance() {
        let m = RoutedModel::planar_synthetic(10, 100.0, 0.5, 4);
        for a in 0..10 {
            for b in 0..10 {
                if a != b {
                    let expect = m.distance(a, b) * 0.5;
                    assert!((m.latency_ms(a, b) - expect).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn seeded_models_are_reproducible() {
        let a = RoutedModel::uniform_synthetic(6, 1.0, 2.0, 9);
        let b = RoutedModel::uniform_synthetic(6, 1.0, 2.0, 9);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(a.latency_ms(i, j), b.latency_ms(i, j));
            }
        }
    }

    #[test]
    fn domain_selectors_partition_the_clients() {
        let m = crate::TransitStubConfig::small()
            .with_clients(24)
            .with_seed(5)
            .build();
        let domains = m.populated_domains().expect("routed layout");
        assert!(!domains.is_empty());
        let mut seen = Vec::new();
        for &d in &domains {
            let clients = m.domain_clients(d).expect("routed layout");
            assert!(!clients.is_empty(), "populated domain {d} has clients");
            for &c in &clients {
                assert_eq!(m.client_domain(c), Some(d));
            }
            seen.extend(clients);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..m.client_count()).collect::<Vec<_>>());
        // Dense layouts expose no domain structure.
        let dense = RoutedModel::uniform_synthetic(6, 1.0, 2.0, 9);
        assert!(dense.populated_domains().is_none());
        assert!(dense.domain_clients(0).is_none());
    }

    #[test]
    fn from_matrices_accepts_valid_input() {
        let coords = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let m = RoutedModel::from_matrices(vec![0.0, 5.0, 5.0, 0.0], vec![0, 2, 2, 0], coords, 7);
        assert_eq!(m.latency_ms(0, 1), 5.0);
        assert_eq!(m.hops(0, 1), 2);
        assert_eq!(m.router_count(), 7);
    }

    #[test]
    #[should_panic(expected = "asymmetric latency")]
    fn from_matrices_rejects_asymmetry() {
        let coords = vec![Point::default(), Point::default()];
        let _ = RoutedModel::from_matrices(vec![0.0, 5.0, 6.0, 0.0], vec![0, 1, 1, 0], coords, 0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn from_matrices_rejects_nonzero_diagonal() {
        let coords = vec![Point::default()];
        let _ = RoutedModel::from_matrices(vec![1.0], vec![0], coords, 0);
    }

    #[test]
    fn stats_cover_all_pairs() {
        let m = RoutedModel::uniform_synthetic(20, 39.0, 60.0, 5);
        let s = m.stats();
        assert_eq!(s.pair_count, 20 * 19 / 2);
        assert!(s.mean_latency_ms > 39.0 && s.mean_latency_ms < 60.0);
        assert!((s.frac_latency_39_60 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dense_models_report_dense_shape() {
        let m = RoutedModel::uniform_synthetic(4, 1.0, 2.0, 2);
        let shape = m.memory_shape();
        assert_eq!(shape.dense_cells, 32, "two 4×4 matrices");
        assert_eq!(shape.core_cells, 0);
        assert_eq!(shape.client_entries, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = RoutedModel::uniform_synthetic(4, 1.0, 2.0, 2);
        assert!(format!("{m:?}").contains("RoutedModel"));
    }
}
