//! The routed network model: the latency/hop/coordinate oracle exposed to
//! the simulator and to the paper's performance monitors.

use crate::geometry::Point;
use crate::stats::ModelStats;
use egm_rng::Rng;
use serde::{Deserialize, Serialize};

/// Client-to-client routed network model.
///
/// This is the "model file" of the paper's ModelNet setup (§4.3): a dense
/// matrix of one-way latencies and hop counts between the *client* nodes
/// that run the protocol, plus each client's pseudo-geographic coordinate.
/// The simulator uses the latency matrix to delay packets; oracle monitors
/// read latency or coordinates directly, exactly as the paper extracts them
/// "directly from the model file".
///
/// Construct one with [`TransitStubConfig::build`](crate::TransitStubConfig)
/// for the realistic topology, or with the synthetic constructors below for
/// controlled tests.
///
/// # Examples
///
/// ```
/// use egm_topology::RoutedModel;
///
/// let model = RoutedModel::uniform_synthetic(8, 39.0, 60.0, 1);
/// assert_eq!(model.client_count(), 8);
/// let l = model.latency_ms(0, 5);
/// assert!((39.0..60.0).contains(&l));
/// assert_eq!(l, model.latency_ms(5, 0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedModel {
    n: usize,
    /// Flattened `n × n` one-way latency matrix in milliseconds.
    latency_ms: Vec<f64>,
    /// Flattened `n × n` hop-count matrix.
    hops: Vec<u32>,
    /// Pseudo-geographic coordinate per client.
    coords: Vec<Point>,
    /// Number of routers in the underlying graph (0 for synthetic models).
    router_count: usize,
}

impl RoutedModel {
    /// Builds a model from dense matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix sizes do not match `n × n`, if any latency is
    /// negative or non-finite, if the diagonal is non-zero, or if the
    /// matrices are asymmetric.
    pub fn from_matrices(
        latency_ms: Vec<f64>,
        hops: Vec<u32>,
        coords: Vec<Point>,
        router_count: usize,
    ) -> Self {
        let n = coords.len();
        assert_eq!(latency_ms.len(), n * n, "latency matrix must be n×n");
        assert_eq!(hops.len(), n * n, "hop matrix must be n×n");
        for a in 0..n {
            assert_eq!(latency_ms[a * n + a], 0.0, "diagonal must be zero");
            for b in 0..n {
                let l = latency_ms[a * n + b];
                assert!(l.is_finite() && l >= 0.0, "bad latency {l} at ({a},{b})");
                assert_eq!(l, latency_ms[b * n + a], "asymmetric latency at ({a},{b})");
                assert_eq!(
                    hops[a * n + b],
                    hops[b * n + a],
                    "asymmetric hops at ({a},{b})"
                );
            }
        }
        RoutedModel {
            n,
            latency_ms,
            hops,
            coords,
            router_count,
        }
    }

    /// Synthetic model with i.i.d. uniform pairwise latencies in
    /// `[lo_ms, hi_ms)` and no geographic structure.
    ///
    /// Hop counts are fixed at 1 and coordinates are placed on a circle so
    /// distance-based monitors remain usable in tests.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the latency range is empty or negative.
    pub fn uniform_synthetic(n: usize, lo_ms: f64, hi_ms: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one client");
        assert!(0.0 <= lo_ms && lo_ms < hi_ms, "bad latency range");
        let mut rng = Rng::seed_from_u64(seed);
        let mut latency_ms = vec![0.0; n * n];
        let mut hops = vec![0u32; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let l = rng.range_f64(lo_ms, hi_ms);
                latency_ms[a * n + b] = l;
                latency_ms[b * n + a] = l;
                hops[a * n + b] = 1;
                hops[b * n + a] = 1;
            }
        }
        let coords = (0..n)
            .map(|i| {
                let theta = i as f64 / n as f64 * std::f64::consts::TAU;
                Point::new(500.0 + 400.0 * theta.cos(), 500.0 + 400.0 * theta.sin())
            })
            .collect();
        RoutedModel {
            n,
            latency_ms,
            hops,
            coords,
            router_count: 0,
        }
    }

    /// Synthetic model where latency is proportional to distance between
    /// points uniformly placed on the plane (`ms_per_unit` scaling).
    ///
    /// Useful for testing distance-driven strategies (Radius) with an exact
    /// latency/distance correspondence.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `ms_per_unit <= 0`.
    pub fn planar_synthetic(n: usize, plane: f64, ms_per_unit: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one client");
        assert!(ms_per_unit > 0.0, "ms_per_unit must be positive");
        let mut rng = Rng::seed_from_u64(seed);
        let coords: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.range_f64(0.0, plane), rng.range_f64(0.0, plane)))
            .collect();
        let mut latency_ms = vec![0.0; n * n];
        let mut hops = vec![0u32; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let l = coords[a].distance(coords[b]) * ms_per_unit;
                latency_ms[a * n + b] = l;
                latency_ms[b * n + a] = l;
                hops[a * n + b] = 1;
                hops[b * n + a] = 1;
            }
        }
        RoutedModel {
            n,
            latency_ms,
            hops,
            coords,
            router_count: 0,
        }
    }

    /// Number of client nodes in the model.
    pub fn client_count(&self) -> usize {
        self.n
    }

    /// Number of routers in the generating graph (0 for synthetic models).
    pub fn router_count(&self) -> usize {
        self.router_count
    }

    /// One-way latency between two clients in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn latency_ms(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.n && b < self.n, "client index out of range");
        self.latency_ms[a * self.n + b]
    }

    /// Router-level hop count between two clients.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.n && b < self.n, "client index out of range");
        self.hops[a * self.n + b]
    }

    /// Pseudo-geographic coordinate of a client.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn coord(&self, a: usize) -> Point {
        self.coords[a]
    }

    /// Euclidean pseudo-geographic distance between two clients.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.coords[a].distance(self.coords[b])
    }

    /// Aggregate statistics over all distinct client pairs (§5.1 of the
    /// paper).
    pub fn stats(&self) -> ModelStats {
        let mut lat = Vec::with_capacity(self.n * (self.n - 1) / 2);
        let mut hop = Vec::with_capacity(lat.capacity());
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                lat.push(self.latency_ms(a, b));
                hop.push(self.hops(a, b));
            }
        }
        ModelStats::from_pairs(&lat, &hop, self.router_count)
    }
}

#[cfg(test)]
mod tests {
    use super::RoutedModel;
    use crate::geometry::Point;

    #[test]
    fn uniform_synthetic_bounds_and_symmetry() {
        let m = RoutedModel::uniform_synthetic(12, 10.0, 20.0, 3);
        for a in 0..12 {
            assert_eq!(m.latency_ms(a, a), 0.0);
            for b in 0..12 {
                if a != b {
                    let l = m.latency_ms(a, b);
                    assert!((10.0..20.0).contains(&l));
                    assert_eq!(l, m.latency_ms(b, a));
                    assert_eq!(m.hops(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn planar_synthetic_latency_tracks_distance() {
        let m = RoutedModel::planar_synthetic(10, 100.0, 0.5, 4);
        for a in 0..10 {
            for b in 0..10 {
                if a != b {
                    let expect = m.distance(a, b) * 0.5;
                    assert!((m.latency_ms(a, b) - expect).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn seeded_models_are_reproducible() {
        let a = RoutedModel::uniform_synthetic(6, 1.0, 2.0, 9);
        let b = RoutedModel::uniform_synthetic(6, 1.0, 2.0, 9);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(a.latency_ms(i, j), b.latency_ms(i, j));
            }
        }
    }

    #[test]
    fn from_matrices_accepts_valid_input() {
        let coords = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let m = RoutedModel::from_matrices(vec![0.0, 5.0, 5.0, 0.0], vec![0, 2, 2, 0], coords, 7);
        assert_eq!(m.latency_ms(0, 1), 5.0);
        assert_eq!(m.hops(0, 1), 2);
        assert_eq!(m.router_count(), 7);
    }

    #[test]
    #[should_panic(expected = "asymmetric latency")]
    fn from_matrices_rejects_asymmetry() {
        let coords = vec![Point::default(), Point::default()];
        let _ = RoutedModel::from_matrices(vec![0.0, 5.0, 6.0, 0.0], vec![0, 1, 1, 0], coords, 0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn from_matrices_rejects_nonzero_diagonal() {
        let coords = vec![Point::default()];
        let _ = RoutedModel::from_matrices(vec![1.0], vec![0], coords, 0);
    }

    #[test]
    fn stats_cover_all_pairs() {
        let m = RoutedModel::uniform_synthetic(20, 39.0, 60.0, 5);
        let s = m.stats();
        assert_eq!(s.pair_count, 20 * 19 / 2);
        assert!(s.mean_latency_ms > 39.0 && s.mean_latency_ms < 60.0);
        assert!((s.frac_latency_39_60 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = RoutedModel::uniform_synthetic(4, 1.0, 2.0, 2);
        assert!(format!("{m:?}").contains("RoutedModel"));
    }
}
