//! Property-based tests of the topology generator.

use egm_topology::{PlanBalance, RoutedModel, TransitStubConfig};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Small generated models are always fully connected with symmetric,
    /// finite latencies and consistent hop counts.
    #[test]
    fn generated_models_are_well_formed(seed in 0u64..200, clients in 2usize..20) {
        let model = TransitStubConfig::small().with_clients(clients).with_seed(seed).build();
        prop_assert_eq!(model.client_count(), clients);
        for a in 0..clients {
            prop_assert_eq!(model.latency_ms(a, a), 0.0);
            prop_assert_eq!(model.hops(a, a), 0);
            for b in (a + 1)..clients {
                let l = model.latency_ms(a, b);
                prop_assert!(l.is_finite() && l > 0.0);
                prop_assert_eq!(l, model.latency_ms(b, a));
                prop_assert_eq!(model.hops(a, b), model.hops(b, a));
                prop_assert!(model.hops(a, b) >= 1, "distinct stubs need a router hop");
            }
        }
    }

    /// Model statistics are internally consistent.
    #[test]
    fn stats_are_consistent(seed in 0u64..100) {
        let model = TransitStubConfig::small().with_clients(10).with_seed(seed).build();
        let s = model.stats();
        prop_assert_eq!(s.pair_count, 45);
        prop_assert!(s.min_latency_ms <= s.mean_latency_ms);
        prop_assert!(s.mean_latency_ms <= s.max_latency_ms);
        prop_assert!((0.0..=1.0).contains(&s.frac_latency_39_60));
        prop_assert!((0.0..=1.0).contains(&s.frac_hops_5_6));
    }

    /// Synthetic models respect their declared latency ranges.
    #[test]
    fn synthetic_ranges_hold(seed in 0u64..200, n in 2usize..30) {
        let m = RoutedModel::uniform_synthetic(n, 10.0, 20.0, seed);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    prop_assert!((10.0..20.0).contains(&m.latency_ms(a, b)));
                }
            }
        }
    }

    /// Distance and coordinates agree for planar models.
    #[test]
    fn planar_distance_consistency(seed in 0u64..100, n in 2usize..20) {
        let m = RoutedModel::planar_synthetic(n, 50.0, 2.0, seed);
        for a in 0..n {
            for b in 0..n {
                let d = m.coord(a).distance(m.coord(b));
                prop_assert!((m.distance(a, b) - d).abs() < 1e-12);
            }
        }
    }

    /// The compact two-level routed layout answers exactly like the dense
    /// all-pairs reference: same hop counts, latencies equal up to float
    /// summation order (the segments are summed in a different order than
    /// a full-path Dijkstra accumulates).
    #[test]
    fn two_level_equals_dense_reference(seed in 0u64..64, clients in 2usize..27) {
        let config = TransitStubConfig::small().with_clients(clients).with_seed(seed);
        let compact = config.build();
        let dense = config.build_dense();
        prop_assert_eq!(compact.client_count(), dense.client_count());
        for a in 0..clients {
            for b in 0..clients {
                let dl = dense.latency_ms(a, b);
                let cl = compact.latency_ms(a, b);
                prop_assert!(
                    (dl - cl).abs() < 1e-9,
                    "latency mismatch at ({}, {}): dense {} vs two-level {}",
                    a, b, dl, cl
                );
                prop_assert_eq!(dense.hops(a, b), compact.hops(a, b));
            }
        }
        // And the compact layout never materialized a client matrix.
        prop_assert_eq!(compact.memory_shape().dense_cells, 0);
    }

    /// Every partition plan over a scaled transit-stub model is a total,
    /// disjoint, **domain-aligned** cover with non-empty shards and
    /// positive predicted weights, under both balance modes.
    #[test]
    fn partition_plans_are_domain_aligned_covers(
        n in 50usize..500,
        seed in 0u64..16,
        w in 2usize..9,
    ) {
        let model = TransitStubConfig::scaled(n).with_seed(seed).build();
        let balances = [
            PlanBalance::Nodes,
            PlanBalance::Rate { fanout: 11, view_degree: 15 },
        ];
        for balance in balances {
            // The planner declines (falls back to contiguous at the sim
            // layer) when the topology has fewer populated units than
            // shards; a returned plan must uphold every invariant.
            let Some(plan) = model.partition_plan(w, balance) else { continue };
            let assign = plan.assignment();
            prop_assert_eq!(assign.len(), n);
            prop_assert_eq!(plan.shard_count(), w);
            let mut population = vec![0usize; w];
            for &s in assign {
                prop_assert!((s as usize) < w, "assignment within range");
                population[s as usize] += 1;
            }
            prop_assert!(population.iter().all(|&p| p > 0), "no empty shard");
            prop_assert_eq!(plan.shard_weights().len(), w);
            prop_assert!(plan.shard_weights().iter().all(|&x| x > 0.0));
            // Domain alignment: no stub domain is split across shards.
            let mut domain_shard: HashMap<u32, u32> = HashMap::new();
            for (c, &a) in assign.iter().enumerate() {
                let d = model.client_domain(c).expect("routed client has a domain");
                let s = *domain_shard.entry(d).or_insert(a);
                prop_assert!(s == a, "stub domain split across shards");
            }
        }
    }

    /// The equivalence also holds at the default (paper-sized) topology
    /// with up to 200 clients — the regime the dense reference is still
    /// comfortable in.
    #[test]
    fn two_level_equals_dense_at_paper_scale(seed in 0u64..4) {
        let config = TransitStubConfig::default().with_clients(200).with_seed(seed);
        let compact = config.build();
        let dense = config.build_dense();
        for a in 0..200 {
            for b in (a + 1)..200 {
                let dl = dense.latency_ms(a, b);
                let cl = compact.latency_ms(a, b);
                prop_assert!(
                    (dl - cl).abs() < 1e-9,
                    "latency mismatch at ({}, {}): dense {} vs two-level {}",
                    a, b, dl, cl
                );
                prop_assert_eq!(dense.hops(a, b), compact.hops(a, b));
            }
        }
    }
}

/// Pins that the planner actually engages on the scale-axis presets —
/// the property above skips declined plans, so this guards against the
/// fallback silently becoming the only behaviour.
#[test]
fn scale_axis_models_always_yield_plans() {
    let model = TransitStubConfig::scaled(1000).with_seed(42).build();
    for w in [2, 4, 8] {
        for balance in [
            PlanBalance::Nodes,
            PlanBalance::Rate {
                fanout: 11,
                view_degree: 15,
            },
        ] {
            let plan = model
                .partition_plan(w, balance)
                .expect("scaled(1000) must be plannable");
            assert_eq!(plan.shard_count(), w);
        }
    }
}
