//! Retirement A/B regression: horizon-based message retirement must be a
//! memory knob, never a behavioural one.
//!
//! Retirement frees delivered arena slots once the horizon elapses; the
//! contract ([`egm_core::ProtocolConfig::retire_after`]) is that no live
//! protocol event references a slot that old, so every observable output
//! must be byte-identical with retirement on or off. The proptest drives
//! the `N1k` preset across random seeds, comparing a retirement-off
//! reference against retirement-on runs on the sequential engine and on
//! every shard width the CI A/B covers (W ∈ {1, 2, 4}).
//!
//! The interval is stretched so the sim outlives the 10 s horizon —
//! otherwise nothing retires before the drain ends and the test would
//! pin nothing (the `retired_messages > 0` assertion guards against
//! that).

use egm_workload::experiments::scale::ScalePreset;
use egm_workload::runner::{run_detailed, RunOutcome};
use proptest::prelude::*;
use std::sync::Arc;

/// The `N1k` preset with traffic spread wide enough (6 messages, 2 s
/// mean gap) that early deliveries cross the 10 s retirement horizon
/// while later messages are still in flight.
fn stretched_scenario(seed: u64) -> egm_workload::Scenario {
    let mut s = ScalePreset::N1k.scenario(6, seed);
    s.mean_interval_ms = 2_000.0;
    s
}

fn assert_outcomes_match(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.report, b.report, "reports diverged ({label})");
    assert_eq!(a.log, b.log, "delivery logs diverged ({label})");
    assert_eq!(
        a.payload_links, b.payload_links,
        "link tables diverged ({label})"
    );
    assert_eq!(
        a.payloads_per_node, b.payloads_per_node,
        "per-node payloads diverged ({label})"
    );
    assert_eq!(
        a.scheduler, b.scheduler,
        "scheduler stats diverged ({label})"
    );
    assert_eq!(a.events, b.events, "event counts diverged ({label})");
    assert_eq!(a.timers_cancelled, b.timers_cancelled, "({label})");
    assert_eq!(a.stale_timer_drops, b.stale_timer_drops, "({label})");
}

/// End-of-run sweep regression: messages published near the end of the
/// run carry retire horizons past the last simulated event, so without
/// the runner's seal-time sweep their slots would stay accounted as
/// live. With the sweep, every stored slot retires — one per delivery,
/// exactly — even when the drain is far shorter than the horizon.
#[test]
fn end_of_run_sweep_retires_every_stored_slot() {
    let mut scenario = stretched_scenario(3);
    // Drain (2 s) ≪ horizon (10 s): the last messages' horizons lie past
    // the end of the run, the exact shape the sweep exists for.
    scenario.drain_ms = 2_000.0;
    let outcome = run_detailed(&scenario, None);
    assert!(
        outcome.report.mean_delivery_fraction > 0.99,
        "{}",
        outcome.report
    );
    assert_eq!(
        outcome.retired_messages,
        outcome.log.total_deliveries(),
        "every stored slot must retire once the run is sealed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn retirement_is_byte_identical_across_engines(seed in 0u64..1_000) {
        let on = stretched_scenario(seed);
        let mut off = on.clone();
        off.protocol.retire_after = None;
        let model = Arc::new(on.build_model());

        // Reference: retirement off, sequential engine.
        let reference = run_detailed(&off.clone().with_shards(Some(0)), Some(model.clone()));
        prop_assert_eq!(reference.retired_messages, 0);

        // Retirement on, sequential: identical outputs, slots actually
        // freed, and a working set no larger than the unbounded run's.
        let seq = run_detailed(&on.clone().with_shards(Some(0)), Some(model.clone()));
        assert_outcomes_match(&reference, &seq, "seq");
        prop_assert!(seq.retired_messages > 0, "no slot crossed the horizon");
        prop_assert!(seq.arena_high_water <= reference.arena_high_water);

        // Retirement on across the sharded widths the CI A/B covers.
        for w in [1usize, 2, 4] {
            let sharded = run_detailed(&on.clone().with_shards(Some(w)), Some(model.clone()));
            assert_outcomes_match(&reference, &sharded, &format!("W={w}"));
            prop_assert!(sharded.retired_messages > 0);
        }
    }
}
