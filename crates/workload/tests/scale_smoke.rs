//! Scale-axis smoke tests: 1k-node runs must complete through the sweep
//! runner in bounded memory, with the protocol still functioning.

use egm_workload::experiments::scale::{run_presets, ScalePreset};

#[test]
fn one_k_ranked_run_completes_under_run_sweep() {
    let outcomes = run_presets(&[(ScalePreset::N1k, 11)], 4);
    assert_eq!(outcomes.len(), 1);
    let outcome = &outcomes[0];

    // The network model is the two-level routed layout: no n×n matrix.
    let shape = outcome.model.memory_shape();
    assert_eq!(shape.dense_cells, 0, "no dense client matrix at 1k");
    assert_eq!(shape.client_entries, 1_000);

    // The protocol worked: messages were disseminated broadly.
    assert_eq!(outcome.report.nodes, 1_000);
    assert!(
        outcome.report.mean_delivery_fraction > 0.9,
        "delivery fraction {}",
        outcome.report.mean_delivery_fraction
    );

    // Lazy-heavy traffic exercised timer cancellation: resolved payloads
    // retire their retry timers instead of letting dead events dispatch.
    assert!(
        outcome.timers_cancelled > 0,
        "scale runs must cancel request timers"
    );
    assert_eq!(
        outcome.scheduler.resolved_timer_pops, 0,
        "no resolved message may pop a request timer"
    );

    // Accounting stayed consistent even with the spill bound configured.
    assert!(outcome.report.total_messages > 0);
    assert_eq!(
        outcome.payloads_per_node.iter().sum::<u64>(),
        outcome.report.total_payloads,
        "per-node payload counters remain exact under spill accounting"
    );

    // The per-node payload table is pre-sized to the node count, so the
    // hot send path never reallocates it — the growth counter is the
    // regression pin.
    assert_eq!(
        outcome.payload_vec_growths, 0,
        "per-node payload table must never regrow on the hot path"
    );
    // Below 100k nothing spools to disk.
    assert_eq!(outcome.traffic_spill_bytes, 0, "1k must not spool traffic");
}

/// Forcing the ≥100k disk-spool path onto the 1k preset must leave every
/// observable output byte-identical — the spool is a memory knob, not a
/// behavioural one — while actually writing spill bytes.
#[test]
fn spooled_one_k_run_matches_in_memory_twin() {
    use egm_workload::runner::run_detailed;

    let plain = ScalePreset::N1k.scenario(4, 11);
    let spooled = plain.clone().with_traffic_spool(true);
    let a = run_detailed(&plain, None);
    let b = run_detailed(&spooled, None);
    assert_eq!(a.report, b.report, "reports diverged under spooling");
    assert_eq!(a.log, b.log, "delivery logs diverged under spooling");
    assert_eq!(a.payload_links, b.payload_links);
    assert_eq!(a.payloads_per_node, b.payloads_per_node);
    assert_eq!(a.traffic_spill_bytes, 0);
    assert!(
        b.traffic_spill_bytes > 0,
        "spooled run must stream compacted tallies to disk"
    );
    assert_eq!(b.payload_vec_growths, 0);
}

/// The acceptance-scale run: a 10k-node Ranked scenario through
/// `run_sweep`. Ignored by default (minutes of wall time); run with
/// `cargo test -p egm_workload --test scale_smoke -- --ignored`.
#[test]
#[ignore = "10k nodes: minutes of wall time; run explicitly"]
fn ten_k_ranked_run_completes_under_run_sweep() {
    let outcomes = run_presets(&[(ScalePreset::N10k, 3)], 4);
    let outcome = &outcomes[0];
    assert_eq!(outcome.report.nodes, 10_000);
    assert_eq!(outcome.model.memory_shape().dense_cells, 0);
    assert!(
        outcome.report.mean_delivery_fraction > 0.9,
        "delivery fraction {}",
        outcome.report.mean_delivery_fraction
    );
    assert_eq!(outcome.scheduler.resolved_timer_pops, 0);
}
