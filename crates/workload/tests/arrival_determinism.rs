//! Arrival-axis regression: open- and closed-loop workloads must be as
//! deterministic as the historical uniform plan — byte-identical across
//! reruns and across every engine/shard-width choice — and must feed the
//! tail-latency histogram and steady-state block consistently.

use egm_core::StrategySpec;
use egm_workload::runner::{run_detailed, RunOutcome};
use egm_workload::{Arrival, ArrivalProcess, Scenario};
use std::sync::Arc;

fn assert_outcomes_match(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.report, b.report, "reports diverged ({label})");
    assert_eq!(a.log, b.log, "delivery logs diverged ({label})");
    assert_eq!(
        a.payload_links, b.payload_links,
        "link tables diverged ({label})"
    );
    assert_eq!(
        a.payloads_per_node, b.payloads_per_node,
        "per-node payloads diverged ({label})"
    );
    assert_eq!(
        a.scheduler, b.scheduler,
        "scheduler stats diverged ({label})"
    );
    assert_eq!(a.events, b.events, "event counts diverged ({label})");
    assert_eq!(
        a.latency, b.latency,
        "latency histograms diverged ({label})"
    );
    assert_eq!(a.steady, b.steady, "steady blocks diverged ({label})");
}

fn open_poisson() -> Scenario {
    Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .with_messages(120)
        .with_arrival(Some(Arrival::Open(ArrivalProcess::Poisson {
            rate_per_sec: 20.0,
        })))
}

fn closed_loop() -> Scenario {
    Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .with_messages(40)
        .with_arrival(Some(Arrival::Closed { think_ms: 20.0 }))
}

#[test]
fn open_loop_is_byte_identical_across_reruns_and_widths() {
    let scenario = open_poisson();
    let model = Arc::new(scenario.build_model());
    let seq = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
    let again = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
    assert_outcomes_match(&seq, &again, "rerun");
    for w in [1usize, 2, 4] {
        let sharded = run_detailed(&scenario.clone().with_shards(Some(w)), Some(model.clone()));
        assert_outcomes_match(&seq, &sharded, &format!("W={w}"));
    }

    // The stationary process has zero warm-up: the window covers every
    // delivery, and percentiles come out well-ordered.
    assert!(seq.report.mean_delivery_fraction > 0.99, "{}", seq.report);
    assert_eq!(seq.latency.total(), seq.log.total_deliveries());
    assert_eq!(seq.steady.published, 120);
    assert!(seq.latency.p50_ms() <= seq.latency.p99_ms());
    assert!(seq.latency.p99_ms() <= seq.latency.p999_ms());
    assert!(seq.steady.publishes_per_sec > 0.0);
    assert!(seq.steady.deliveries_per_sec > seq.steady.publishes_per_sec);
}

#[test]
fn closed_loop_completes_and_is_byte_identical_across_widths() {
    let scenario = closed_loop();
    let model = Arc::new(scenario.build_model());
    let seq = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
    let again = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
    assert_outcomes_match(&seq, &again, "rerun");
    for w in [1usize, 2, 4] {
        let sharded = run_detailed(&scenario.clone().with_shards(Some(w)), Some(model.clone()));
        assert_outcomes_match(&seq, &sharded, &format!("W={w}"));
    }

    // Every publish was gated on the previous delivery, so the full
    // message count still went out and arrived everywhere.
    assert!(seq.report.mean_delivery_fraction > 0.99, "{}", seq.report);
    assert_eq!(seq.steady.published, 40);
    assert_eq!(seq.latency.total(), seq.log.total_deliveries());
}

#[test]
fn diurnal_warmup_excludes_the_ramp_from_the_window() {
    let scenario = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .with_messages(100)
        .with_arrival(Some(Arrival::Open(ArrivalProcess::Diurnal {
            low_rate: 5.0,
            high_rate: 50.0,
            ramp_ms: 2_000.0,
        })));
    let outcome = run_detailed(&scenario, None);
    // The window opens after the 2 s ramp: ramp-time publishes exist but
    // are excluded from the steady block and the histogram.
    assert!(
        outcome.steady.published > 0 && outcome.steady.published < 100,
        "window must split the schedule: {} in window",
        outcome.steady.published
    );
    assert!(outcome.latency.total() < outcome.log.total_deliveries());
    assert_eq!(outcome.steady.window_start_ms, scenario.warmup_ms + 2_000.0);
}

#[test]
#[should_panic(expected = "fault-free")]
fn closed_loop_rejects_fault_plans() {
    use egm_workload::{FaultPlan, FaultSelection};
    let scenario = closed_loop().with_faults(Some(FaultPlan::new(0.25, FaultSelection::Random)));
    let _ = run_detailed(&scenario, None);
}
