//! End-to-end shard A/B regression: the sharded event loop must be a
//! real performance knob, never a behavioural one.
//!
//! The `N1k` scale preset runs once sequentially and once per shard
//! width over a shared topology; every observable output — the full
//! `DeliveryLog`, the per-link traffic tables (whose first-appearance
//! spill order the sharded engine reconstructs at merge time), per-node
//! payload counts, scheduler counters and the simulator event count —
//! must be byte-identical. Together with `egm_simnet`'s
//! `shard_equivalence` proptest suite this pins the property the whole
//! scale axis relies on: sharding one run across cores cannot change its
//! results.

use egm_simnet::shard::auto_shards_for;
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::runner::{run_detailed, RunOutcome};
use std::sync::Arc;

fn assert_outcomes_match(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.log, b.log, "delivery logs diverged ({label})");
    assert_eq!(
        a.payload_links, b.payload_links,
        "link tables diverged ({label})"
    );
    assert_eq!(
        a.payloads_per_node, b.payloads_per_node,
        "per-node payloads diverged ({label})"
    );
    assert_eq!(a.report, b.report, "reports diverged ({label})");
    assert_eq!(
        a.scheduler, b.scheduler,
        "scheduler stats diverged ({label})"
    );
    assert_eq!(a.events, b.events, "event counts diverged ({label})");
    assert_eq!(a.timers_cancelled, b.timers_cancelled, "({label})");
    assert_eq!(a.stale_timer_drops, b.stale_timer_drops, "({label})");
    assert_eq!(a.victims, b.victims, "({label})");
    assert_eq!(a.best_ids, b.best_ids, "({label})");
}

#[test]
fn one_k_preset_is_byte_identical_across_shard_widths() {
    let scenario = ScalePreset::N1k.scenario(4, 11);
    // Share the model so the comparison is purely about the event loop.
    let model = Arc::new(scenario.build_model());

    // The reference: the plain sequential engine, forced explicitly so
    // the test is immune to `EGM_SHARDS` or multi-core auto defaults.
    let seq = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
    assert_eq!(seq.shard_stats.shards, 1);
    assert_eq!(seq.shard_stats.windows, 0, "sequential runs no windows");

    for w in [1usize, 2, 4] {
        let sharded = run_detailed(&scenario.clone().with_shards(Some(w)), Some(model.clone()));
        assert_outcomes_match(&seq, &sharded, &format!("W={w}"));
        assert_eq!(sharded.shard_stats.shards, w);
        if w == 1 {
            assert_eq!(
                sharded.shard_stats.windows, 1,
                "W=1 must collapse to a single windowless pass"
            );
            assert_eq!(sharded.shard_stats.lane_events, 0);
        } else {
            assert!(
                sharded.shard_stats.windows > 1,
                "W={w} must run conservative windows"
            );
            assert!(
                sharded.shard_stats.lane_events > 0,
                "W={w} must exchange cross-shard traffic"
            );
            assert!(sharded.shard_stats.lookahead_us > 0);
        }
    }
}

/// The 10k twin of the 1k A/B, for the nightly heavy pass:
/// `cargo test --release -p egm_workload --test shard_determinism -- --ignored`.
#[test]
#[ignore = "10k nodes: minutes of wall time; run explicitly"]
fn ten_k_preset_is_byte_identical_across_shard_widths() {
    let scenario = ScalePreset::N10k.scenario(4, 11);
    let model = Arc::new(scenario.build_model());
    let seq = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
    for w in [2usize, 8] {
        let sharded = run_detailed(&scenario.clone().with_shards(Some(w)), Some(model.clone()));
        assert_outcomes_match(&seq, &sharded, &format!("W={w}"));
        assert!(sharded.shard_stats.lane_events > 0);
    }
}

/// The shard-mode spool-capping fix, end to end: with a finite spill
/// threshold and the disk spool on, the merge-time accumulator must stay
/// within the threshold at every instant of the fold (it used to grow
/// with the total number of distinct links read back from the spool)
/// while the merged outputs stay byte-identical to the sequential twin.
#[test]
fn spooled_shard_merge_caps_the_accumulator_and_matches_sequential() {
    use egm_core::StrategySpec;
    use egm_workload::Scenario;

    let threshold = 64usize;
    let scenario = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .with_messages(60)
        .with_link_spill_threshold(Some(threshold))
        .with_traffic_spool(true);
    let model = Arc::new(scenario.build_model());

    let seq = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
    // The sequential engine caps incrementally while recording, so its
    // merge path never accumulates anything.
    assert_eq!(seq.traffic_acc_peak, 0);
    assert_eq!(seq.report.used_links, threshold);

    for w in [2usize, 4] {
        let sharded = run_detailed(&scenario.clone().with_shards(Some(w)), Some(model.clone()));
        assert_outcomes_match(&seq, &sharded, &format!("spooled W={w}"));
        assert!(
            sharded.traffic_acc_peak > 0,
            "W={w} must exercise the capped merge path"
        );
        assert!(
            sharded.traffic_acc_peak <= threshold,
            "W={w} merge accumulator peaked at {} links, threshold {threshold}",
            sharded.traffic_acc_peak
        );
        assert_eq!(sharded.report.used_links, threshold);
    }
}

#[test]
fn shard_selection_defaults() {
    // The size-based default engages sharding only at scale; below the
    // floor the sequential engine keeps its zero-overhead path.
    assert_eq!(auto_shards_for(100), 1);
    assert_eq!(auto_shards_for(999), 1);
    let at_scale = auto_shards_for(1_000);
    assert!(
        (1..=egm_simnet::shard::MAX_AUTO_SHARDS).contains(&at_scale),
        "auto default follows available parallelism, capped: {at_scale}"
    );
}
