//! Wall-clock speedup of the parallel sweep runner.
//!
//! This lives in its own integration-test binary so no sibling tests
//! compete for cores while it measures. On machines with fewer than four
//! cores the assertion is skipped (the measurement is still printed);
//! determinism is covered separately by `sweep_determinism.rs`.

use egm_core::StrategySpec;
use egm_workload::experiments::Scale;
use egm_workload::runner::run_sweep;
use std::time::Instant;

#[test]
fn parallel_sweep_beats_sequential_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // A Fig. 5-style π sweep at quick scale: 8 points over one shared
    // model, each run heavy enough (~tens of ms) to dwarf thread setup.
    let scale = Scale {
        nodes: 50,
        messages: 60,
        seed: 42,
    };
    let model = egm_workload::experiments::shared_model(&scale);
    let scenarios: Vec<_> = [0.0f64, 0.1, 0.25, 0.4, 0.5, 0.75, 0.9, 1.0]
        .iter()
        .map(|&pi| {
            egm_workload::experiments::base_scenario(&scale)
                .with_strategy(StrategySpec::Flat { pi })
        })
        .collect();

    // Sequential reference: the same scenarios through the same code
    // path, capped to one worker.
    let seq_start = Instant::now();
    let sequential: Vec<_> = scenarios
        .iter()
        .map(|s| egm_workload::runner::run_detailed(s, Some(model.clone())).report)
        .collect();
    let seq_ms = seq_start.elapsed().as_secs_f64() * 1000.0;

    let par_start = Instant::now();
    let parallel = run_sweep(scenarios, Some(model));
    let par_ms = par_start.elapsed().as_secs_f64() * 1000.0;

    let speedup = seq_ms / par_ms;
    println!(
        "sweep of {n} runs: sequential {seq_ms:.0} ms, parallel {par_ms:.0} ms \
         ({speedup:.2}x on {cores} cores)",
        n = parallel.len()
    );

    // Identical results regardless of timing.
    for (seq, par) in sequential.iter().zip(&parallel) {
        assert_eq!(seq, &par.report, "parallel report diverged");
    }

    // Timing assertions are inherently environment-sensitive; on shared
    // CI runners CPU steal can sink an otherwise-healthy ratio, so the
    // strict bound can be opted out with EGM_PERF_ASSERT=0 (CI does).
    let assert_enabled = std::env::var("EGM_PERF_ASSERT").map_or(true, |v| v != "0");
    if cores >= 4 && assert_enabled {
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup on {cores} cores, measured {speedup:.2}x"
        );
    } else {
        println!(
            "skipping speedup assertion (cores={cores}, EGM_PERF_ASSERT enabled={assert_enabled})"
        );
    }
}
