//! End-to-end queue A/B regression: the heap escape hatch must be a real
//! A/B switch, not a divergent code path.
//!
//! The `N1k` scale preset runs once per [`QueueKind`] over a shared
//! topology; every observable output — the full `DeliveryLog`, the
//! per-link traffic tables, per-node payload counts, scheduler counters
//! and the simulator event count — must be byte-identical. Together with
//! `egm_simnet`'s `queue_equivalence` proptest suite this pins the
//! property every sweep test relies on: queue choice is a performance
//! knob, never a behavioural one.

use egm_simnet::QueueKind;
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::runner::run_detailed;
use std::sync::Arc;

#[test]
fn one_k_preset_is_byte_identical_across_queues() {
    let scenario = ScalePreset::N1k.scenario(4, 11);
    // Share the model so the comparison is purely about the event loop.
    let model = Arc::new(scenario.build_model());

    let heap = run_detailed(
        &scenario.clone().with_event_queue(Some(QueueKind::Heap)),
        Some(model.clone()),
    );
    let calendar = run_detailed(
        &scenario.with_event_queue(Some(QueueKind::Calendar)),
        Some(model),
    );

    // The complete delivery log: every (message, node, time, round)
    // record of the run.
    assert_eq!(heap.log, calendar.log, "delivery logs diverged");
    // Traffic: per-link tables and per-node payload counts.
    assert_eq!(
        heap.payload_links, calendar.payload_links,
        "link tables diverged"
    );
    assert_eq!(heap.payloads_per_node, calendar.payloads_per_node);
    // Aggregates and counters.
    assert_eq!(heap.report, calendar.report, "reports diverged");
    assert_eq!(
        heap.scheduler, calendar.scheduler,
        "scheduler stats diverged"
    );
    assert_eq!(heap.events, calendar.events, "event counts diverged");
    assert_eq!(heap.timers_cancelled, calendar.timers_cancelled);
    assert_eq!(heap.stale_timer_drops, calendar.stale_timer_drops);
    assert_eq!(heap.victims, calendar.victims);
    assert_eq!(heap.best_ids, calendar.best_ids);
    // The queues did the same amount of work, each its own way.
    assert_eq!(heap.queue.pushes, calendar.queue.pushes);
    assert_eq!(heap.queue.pops, calendar.queue.pops);
    assert_eq!(heap.queue.max_len, calendar.queue.max_len);
    assert!(
        calendar.queue.bucket_count > 0,
        "calendar run must actually use the calendar queue"
    );
    assert_eq!(
        heap.queue.bucket_count, 0,
        "heap run must actually use the heap"
    );
}

#[test]
fn scale_presets_default_to_the_calendar_queue() {
    // The size-based default: scale presets (≥1k nodes) run the calendar
    // queue without any configuration.
    assert_eq!(QueueKind::auto_for(1_000), QueueKind::Calendar);
    assert_eq!(QueueKind::auto_for(10_000), QueueKind::Calendar);
    // The paper-scale runs (100 nodes) keep the cache-resident heap.
    assert_eq!(QueueKind::auto_for(100), QueueKind::Heap);
}
