//! Property suite for the fault machinery: victim selection
//! ([`FaultPlan::choose_victims`]) and churn layout ([`ChurnPlan`]) must
//! hold their invariants over the whole parameter space — distinctness,
//! range bounds, hub-exhaustion fallback into regular nodes only, event
//! counting at window boundaries, and the overlap-aware re-draw that
//! keeps a churn event off nodes that are already down.

use egm_core::BestSet;
use egm_rng::Rng;
use egm_simnet::NodeId;
use egm_workload::faults::{ChurnPlan, FaultPlan, FaultSelection};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn victim_count_rounds_caps_and_handles_edges(
        n in 0usize..500,
        fraction in 0.0f64..0.999,
    ) {
        let plan = FaultPlan::new(fraction, FaultSelection::Random);
        let k = plan.victim_count(n);
        // Never the whole population: at least one node survives.
        prop_assert!(n == 0 || k < n);
        // n = 0 and n = 1 kill nobody, whatever the fraction.
        if n <= 1 {
            prop_assert_eq!(k, 0);
        }
        // Within one of the unclamped rounding.
        let ideal = (n as f64 * fraction).round() as usize;
        prop_assert!(k == ideal.min(n.saturating_sub(1)));
    }

    #[test]
    fn random_victims_are_distinct_and_in_range(
        n in 2usize..200,
        fraction in 0.0f64..0.999,
        seed in 0u64..1000,
    ) {
        let plan = FaultPlan::new(fraction, FaultSelection::Random);
        let mut rng = Rng::seed_from_u64(seed);
        let victims = plan.choose_victims(n, None, &mut rng);
        prop_assert_eq!(victims.len(), plan.victim_count(n));
        let set: HashSet<&NodeId> = victims.iter().collect();
        prop_assert_eq!(set.len(), victims.len());
        prop_assert!(victims.iter().all(|v| v.index() < n));
    }

    #[test]
    fn best_ranked_exhaustion_spills_into_regular_nodes_only(
        n in 4usize..120,
        hub_count in 1usize..8,
        fraction in 0.0f64..0.999,
        seed in 0u64..1000,
    ) {
        let hub_count = hub_count.min(n - 1);
        let hubs: Vec<NodeId> = (0..hub_count).map(NodeId).collect();
        let best = BestSet::from_ids(n, &hubs);
        let plan = FaultPlan::new(fraction, FaultSelection::BestRanked);
        let mut rng = Rng::seed_from_u64(seed);
        let victims = plan.choose_victims(n, Some(&best), &mut rng);
        let k = plan.victim_count(n);
        prop_assert_eq!(victims.len(), k);
        let set: HashSet<&NodeId> = victims.iter().collect();
        prop_assert_eq!(set.len(), victims.len());
        if k <= hub_count {
            // Hubs die first, in rank order.
            prop_assert!(victims.iter().all(|v| best.is_best(*v)));
        } else {
            // Every hub dies; the overflow is drawn from regular
            // nodes only (the hub set is exhausted, never re-drawn).
            for hub in &hubs {
                prop_assert!(victims.contains(hub));
            }
            for extra in &victims[hub_count..] {
                prop_assert!(!best.is_best(*extra), "spill re-drew a hub");
            }
        }
    }

    #[test]
    fn churn_event_counting_at_window_boundaries(
        period_ms in 1.0f64..10_000.0,
        k in 0u32..50,
    ) {
        let plan = ChurnPlan::new(period_ms, period_ms);
        // Exactly at a multiple of the period the count is k (floor of
        // an exact product) up to float representation: one of k-1/k.
        let at_boundary = plan.events_within(k as f64 * period_ms);
        prop_assert!(
            at_boundary == k as usize || at_boundary + 1 == k as usize,
            "{at_boundary} events at window {k}×{period_ms}"
        );
        // Just inside the next period the count cannot exceed k.
        let just_inside = plan.events_within(k as f64 * period_ms + 0.5 * period_ms);
        prop_assert!(just_inside >= at_boundary);
        prop_assert!(just_inside <= k as usize + 1);
        // Empty and negative windows count nothing.
        prop_assert_eq!(plan.events_within(0.0), 0);
        prop_assert_eq!(plan.events_within(-1.0), 0);
    }

    #[test]
    fn churn_schedule_never_hits_excluded_or_down_nodes(
        n in 2usize..64,
        period_ms in 10.0f64..500.0,
        down_mult in 0.5f64..8.0,
        windows in 1usize..30,
        excluded_count in 0usize..4,
        seed in 0u64..1000,
    ) {
        let excluded_count = excluded_count.min(n - 1);
        let excluded: Vec<NodeId> = (0..excluded_count).map(NodeId).collect();
        let plan = ChurnPlan::new(period_ms, down_mult * period_ms);
        let mut rng = Rng::seed_from_u64(seed);
        let window_ms = windows as f64 * period_ms;
        let events = plan.schedule(n, window_ms, &excluded, &mut rng);
        prop_assert!(events.len() <= plan.events_within(window_ms));
        let mut down_until = vec![f64::NEG_INFINITY; n];
        for ev in &events {
            prop_assert!(ev.node.index() < n);
            prop_assert!(!excluded.contains(&ev.node), "excluded node churned");
            prop_assert!(
                down_until[ev.node.index()] <= ev.at_ms,
                "node {:?} re-silenced while down",
                ev.node
            );
            down_until[ev.node.index()] = ev.at_ms + plan.down_ms;
        }
        // Determinism: the same seed lays out the same schedule.
        let mut rng2 = Rng::seed_from_u64(seed);
        prop_assert_eq!(events, plan.schedule(n, window_ms, &excluded, &mut rng2));
    }
}
