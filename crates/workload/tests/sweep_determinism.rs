//! Regression tests for the parallel sweep runner: results must be
//! byte-identical to sequential execution, because every scenario forks
//! its whole RNG tree from its own seed and owns all mutable state.

use egm_core::StrategySpec;
use egm_workload::runner::{run_detailed, run_sweep};
use egm_workload::Scenario;

/// A small figure-style grid: a π sweep plus a ranked point, each at two
/// seeds (the ISSUE's "figure sweep ... for >= 2 seeds").
fn grid() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for seed in [11u64, 12] {
        for pi in [0.0, 0.5, 1.0] {
            scenarios.push(
                Scenario::smoke_test()
                    .with_strategy(StrategySpec::Flat { pi })
                    .with_seed(seed),
            );
        }
        scenarios.push(
            Scenario::smoke_test()
                .with_strategy(StrategySpec::Ranked {
                    best_fraction: 0.25,
                })
                .with_seed(seed),
        );
    }
    scenarios
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let scenarios = grid();
    let sequential: Vec<_> = scenarios.iter().map(|s| run_detailed(s, None)).collect();
    let parallel = run_sweep(scenarios, None);

    assert_eq!(sequential.len(), parallel.len());
    for (seq, par) in sequential.iter().zip(&parallel) {
        // Delivery fractions, latency summaries, traffic totals...
        assert_eq!(seq.report, par.report, "reports must match exactly");
        // ...the full delivery log...
        assert_eq!(seq.log, par.log, "delivery logs must match exactly");
        // ...per-link payload tables and per-node loads...
        assert_eq!(
            seq.payload_links, par.payload_links,
            "link tables must match"
        );
        assert_eq!(seq.payloads_per_node, par.payloads_per_node);
        // ...and the run's structural metadata.
        assert_eq!(seq.victims, par.victims);
        assert_eq!(seq.best_ids, par.best_ids);
        assert_eq!(seq.scheduler, par.scheduler);
        assert_eq!(seq.events, par.events, "event counts must match");
    }
}

#[test]
fn sweep_results_arrive_in_input_order() {
    // Seeds map 1:1 onto reports, in submission order, regardless of
    // which worker finishes first.
    let seeds = [3u64, 1, 4, 1, 5, 9, 2, 6];
    let scenarios: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            Scenario::smoke_test()
                .with_strategy(StrategySpec::Ttl { u: 2 })
                .with_seed(seed)
        })
        .collect();
    let reports = egm_workload::runner::run_sweep_reports(scenarios, None);
    assert_eq!(reports.len(), seeds.len());
    for (&seed, report) in seeds.iter().zip(&reports) {
        let direct = Scenario::smoke_test()
            .with_strategy(StrategySpec::Ttl { u: 2 })
            .with_seed(seed)
            .run();
        assert_eq!(&direct, report, "report for seed {seed} out of place");
    }
}

#[test]
fn sweep_handles_empty_and_single_batches() {
    assert!(run_sweep(Vec::new(), None).is_empty());
    let one = run_sweep(
        vec![Scenario::smoke_test().with_strategy(StrategySpec::Flat { pi: 1.0 })],
        None,
    );
    assert_eq!(one.len(), 1);
    assert!(one[0].report.mean_delivery_fraction > 0.99);
}
