//! Fault-scenario determinism: every library [`FaultScenarioKind`] —
//! with overlapping churn and online re-ranking active — must produce a
//! byte-identical [`RunOutcome`] on rerun, at every shard width, and
//! under both window drivers (single-threaded and worker threads).
//!
//! This is the property the whole fault axis rests on: a fault trace is
//! plain data replayed at fixed `(time, seq)` points, the re-rank ticks
//! are pure functions of the scenario, and the degradation/slowdown
//! state is replicated to every shard under one shared sequence number —
//! so parallelism can never leak into resilience measurements.

use egm_core::{RankSource, StrategySpec};
use egm_topology::TransitStubConfig;
use egm_workload::faults::{ChurnPlan, FaultScenarioKind, RerankPlan};
use egm_workload::runner::{run_detailed, RunOutcome};
use egm_workload::{Scenario, TopologySource};
use std::sync::Arc;

fn assert_outcomes_match(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.report, b.report, "reports diverged ({label})");
    assert_eq!(a.log, b.log, "delivery logs diverged ({label})");
    assert_eq!(
        a.payload_links, b.payload_links,
        "link tables diverged ({label})"
    );
    assert_eq!(
        a.payloads_per_node, b.payloads_per_node,
        "per-node payloads diverged ({label})"
    );
    assert_eq!(a.scheduler, b.scheduler, "scheduler stats ({label})");
    assert_eq!(a.events, b.events, "event counts diverged ({label})");
    assert_eq!(a.victims, b.victims, "victims diverged ({label})");
    assert_eq!(a.best_ids, b.best_ids, "best ids diverged ({label})");
    assert_eq!(
        a.reranked_best_ids, b.reranked_best_ids,
        "re-ranked best ids diverged ({label})"
    );
    assert_eq!(a.latency, b.latency, "latency histograms ({label})");
}

/// The base resilience scenario: a transit–stub model (so domain
/// outages are real), gossip-sorted ranking with two online re-rank
/// ticks, and overlapping churn on top of the library fault trace.
fn base_scenario() -> Scenario {
    Scenario {
        topology: TopologySource::TransitStub(TransitStubConfig::small().with_clients(24)),
        messages: 12,
        ..Scenario::smoke_test()
    }
    .with_strategy(StrategySpec::Ranked {
        best_fraction: 0.25,
    })
    .with_rank_source(RankSource::GossipSorted { rounds: 3 })
    .with_rerank(Some(RerankPlan::new(80.0, 2)))
    .with_churn(Some(ChurnPlan::new(300.0, 450.0)))
    .with_seed(13)
}

/// One test body instead of one test per width/driver: the threaded
/// window driver is toggled through `EGM_SHARD_THREADS`, and tests in
/// one binary share the process environment.
#[test]
fn library_fault_scenarios_are_byte_identical_across_engines() {
    let base = base_scenario();
    let model = Arc::new(base.build_model());
    let traffic_ms = base.messages as f64 * base.mean_interval_ms + base.drain_ms;

    for kind in FaultScenarioKind::all() {
        let schedule = kind.schedule(&model, base.warmup_ms, traffic_ms, base.seed);
        let scenario = base.clone().with_fault_schedule(Some(schedule));
        let label = kind.label();

        let seq = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
        let again = run_detailed(&scenario.clone().with_shards(Some(0)), Some(model.clone()));
        assert_outcomes_match(&seq, &again, &format!("{label}: seq rerun"));
        assert!(
            seq.report.mean_delivery_fraction > 0.5,
            "{label}: {}",
            seq.report
        );
        if kind != FaultScenarioKind::Baseline {
            assert!(
                seq.reranked_best_ids.is_some(),
                "{label}: re-rank ticks must have run"
            );
        }

        std::env::set_var("EGM_SHARD_THREADS", "0");
        for w in [1usize, 2, 4] {
            let sharded = run_detailed(&scenario.clone().with_shards(Some(w)), Some(model.clone()));
            assert_outcomes_match(&seq, &sharded, &format!("{label}: W={w} single-thread"));
        }
        std::env::set_var("EGM_SHARD_THREADS", "1");
        for w in [2usize, 4] {
            let sharded = run_detailed(&scenario.clone().with_shards(Some(w)), Some(model.clone()));
            assert_outcomes_match(&seq, &sharded, &format!("{label}: W={w} threaded"));
        }
        std::env::remove_var("EGM_SHARD_THREADS");
    }
}
