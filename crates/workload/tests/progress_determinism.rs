//! The ProgressSink is observe-only: a run with a sink installed must be
//! byte-identical to the same run without one, on both engines. This is
//! the determinism bar for the live-serving path — the server streams
//! progress from exactly these hooks, so any feedback from observation
//! into execution would silently fork the served results from the
//! benched ones.

use egm_core::StrategySpec;
use egm_simnet::{ProgressEvent, ProgressSink};
use egm_workload::runner::{self, RunOutcome};
use egm_workload::{FaultSchedule, RerankPlan, Scenario};
use std::sync::{Arc, Mutex};

/// Collects every event; the test asserts the stream is non-trivial so
/// the byte-identity claim actually covers an observed run.
#[derive(Debug, Default)]
struct Collecting(Mutex<Vec<ProgressEvent>>);

impl ProgressSink for Collecting {
    fn emit(&self, event: ProgressEvent) {
        self.0.lock().unwrap().push(event);
    }
}

/// The full observable surface two runs must agree on.
fn assert_identical(plain: &RunOutcome, observed: &RunOutcome) {
    assert_eq!(plain.report, observed.report, "reports diverged");
    assert_eq!(plain.log, observed.log, "delivery logs diverged");
    assert_eq!(plain.payload_links, observed.payload_links);
    assert_eq!(plain.payloads_per_node, observed.payloads_per_node);
    assert_eq!(plain.victims, observed.victims);
    assert_eq!(plain.best_ids, observed.best_ids);
    assert_eq!(plain.reranked_best_ids, observed.reranked_best_ids);
    assert_eq!(plain.scheduler, observed.scheduler);
    assert_eq!(plain.events, observed.events, "event counts diverged");
    assert_eq!(plain.timers_cancelled, observed.timers_cancelled);
    assert_eq!(plain.queue, observed.queue, "queue counters diverged");
    assert_eq!(plain.latency, observed.latency, "histograms diverged");
    assert_eq!(plain.steady, observed.steady, "steady blocks diverged");
    assert_eq!(plain.retired_messages, observed.retired_messages);
}

#[test]
fn sequential_run_is_byte_identical_with_sink() {
    let scenario = Scenario::smoke_test().with_strategy(StrategySpec::Ranked {
        best_fraction: 0.25,
    });
    let plain = runner::run_detailed(&scenario, None);
    let sink = Arc::new(Collecting::default());
    let observed = runner::run_detailed_observed(&scenario, None, sink.clone());
    assert_identical(&plain, &observed);

    let events = sink.0.lock().unwrap();
    // The sequential engine reports fixed-chunk progress plus the final
    // summary; windows only exist on the sharded engine.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::Chunk { .. })),
        "no chunk events: {events:?}"
    );
    assert!(
        matches!(events.last(), Some(ProgressEvent::Summary { .. })),
        "missing summary: {events:?}"
    );
}

#[test]
fn sharded_run_is_byte_identical_with_sink_and_reports_windows() {
    let scenario = Scenario::smoke_test()
        .with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        })
        .with_shards(Some(2));
    let plain = runner::run_detailed(&scenario, None);
    let sink = Arc::new(Collecting::default());
    let observed = runner::run_detailed_observed(&scenario, None, sink.clone());
    assert_identical(&plain, &observed);
    // Window counts are part of the sharded engine's stats and must not
    // move under observation either.
    assert_eq!(plain.shard_stats, observed.shard_stats);

    let events = sink.0.lock().unwrap();
    let windows = events
        .iter()
        .filter(|e| matches!(e, ProgressEvent::Window { .. }))
        .count() as u64;
    assert!(windows > 0, "sharded run reported no windows");
    assert_eq!(
        windows, observed.shard_stats.windows,
        "every planned window must be reported exactly once"
    );
    assert!(matches!(events.last(), Some(ProgressEvent::Summary { .. })));
}

#[test]
fn prepared_observed_matches_prepared() {
    let scenario = Scenario::smoke_test().with_strategy(StrategySpec::Ranked {
        best_fraction: 0.25,
    });
    let setup = runner::prepare(&scenario, None);
    let plain = runner::run_prepared(&scenario, &setup);
    let sink = Arc::new(Collecting::default());
    let observed = runner::run_prepared_observed(&scenario, &setup, sink);
    assert_identical(&plain, &observed);
}

#[test]
fn faulted_reranked_run_is_byte_identical_and_reports_ticks() {
    let scenario = Scenario::smoke_test()
        .with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        })
        .with_fault_schedule(Some(FaultSchedule::transit_degradation(
            50.0, 400.0, 2.0, 0.0,
        )))
        .with_rerank(Some(RerankPlan::new(100.0, 2)));
    let plain = runner::run_detailed(&scenario, None);
    let sink = Arc::new(Collecting::default());
    let observed = runner::run_detailed_observed(&scenario, None, sink.clone());
    assert_identical(&plain, &observed);

    let events = sink.0.lock().unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProgressEvent::Fault { .. })),
        "scheduled faults must be reported: {events:?}"
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::Rerank { .. }))
            .count(),
        2,
        "one event per re-rank tick: {events:?}"
    );
}
