//! Scenario description: everything one experiment run needs.

use crate::arrival::Arrival;
use crate::faults::{ChurnPlan, FaultPlan, FaultSchedule, RerankPlan};
use egm_core::{MonitorSpec, ProtocolConfig, RankSource, StrategySpec};
use egm_metrics::RunReport;
use egm_simnet::QueueKind;
use egm_topology::{RoutedModel, TransitStubConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Salt XORed into the scenario seed for topology construction, keeping
/// the topology stream independent of the harness stream (views,
/// victims, traffic) and the rank-source stream. One definition shared
/// by the runner, experiments, tests and benches — see
/// [`Scenario::build_model`].
pub const TOPOLOGY_SEED_SALT: u64 = 0x7090;

/// Where the network model comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySource {
    /// Generate a transit–stub model (the paper's Inet-3.0 setting).
    TransitStub(TransitStubConfig),
    /// Synthetic uniform pairwise latencies — fast, for tests.
    Uniform {
        /// Number of clients.
        nodes: usize,
        /// Lower latency bound (ms).
        lo_ms: f64,
        /// Upper latency bound (ms).
        hi_ms: f64,
    },
    /// Synthetic planar model: latency proportional to distance.
    Planar {
        /// Number of clients.
        nodes: usize,
        /// Plane side in map units.
        plane: f64,
        /// Milliseconds per map unit.
        ms_per_unit: f64,
    },
}

impl TopologySource {
    /// Number of clients this source will produce.
    pub fn node_count(&self) -> usize {
        match self {
            TopologySource::TransitStub(c) => c.clients,
            TopologySource::Uniform { nodes, .. } | TopologySource::Planar { nodes, .. } => *nodes,
        }
    }

    /// Builds the routed model with the given seed.
    pub fn build(&self, seed: u64) -> RoutedModel {
        match self {
            TopologySource::TransitStub(c) => c.clone().with_seed(seed).build(),
            TopologySource::Uniform {
                nodes,
                lo_ms,
                hi_ms,
            } => RoutedModel::uniform_synthetic(*nodes, *lo_ms, *hi_ms, seed),
            TopologySource::Planar {
                nodes,
                plane,
                ms_per_unit,
            } => RoutedModel::planar_synthetic(*nodes, *plane, *ms_per_unit, seed),
        }
    }
}

/// Noise injection configuration (§4.3): ratio `o` plus the calibration
/// constant `c` (the strategy's overall eager rate, see
/// [`crate::calibrate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Noise ratio `o ∈ [0, 1]`.
    pub o: f64,
    /// Calibration constant `c ∈ [0, 1]`.
    pub c: f64,
}

/// A complete experiment description.
///
/// Use the builder-style `with_*` methods to derive variants; see the
/// crate-level example.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Network model source.
    pub topology: TopologySource,
    /// Per-node protocol parameters.
    pub protocol: ProtocolConfig,
    /// The transmission strategy all nodes run.
    pub strategy: StrategySpec,
    /// The performance monitor all nodes host.
    pub monitor: MonitorSpec,
    /// Optional noise wrapper around the strategy.
    pub noise: Option<NoiseConfig>,
    /// Optional fault plan (node silencing after warm-up, §6.3).
    pub faults: Option<FaultPlan>,
    /// Optional transient churn during dissemination (extension).
    pub churn: Option<ChurnPlan>,
    /// Optional explicit fault trace (extension): timed
    /// silence/revive/degrade/slowdown events replayed verbatim, on top
    /// of whatever `faults`/`churn` schedule. See
    /// [`FaultSchedule`] for the library scenarios (correlated domain
    /// outages, transit degradation, flash crowds, node slowdowns).
    pub fault_schedule: Option<FaultSchedule>,
    /// Optional online re-ranking during warm-up (extension): periodic
    /// re-rank barriers through [`Scenario::rank_source`], excluding
    /// nodes the fault schedule has down at each tick. See
    /// [`RerankPlan`].
    pub rerank: Option<RerankPlan>,
    /// Number of multicast messages (400 in §5.3).
    pub messages: usize,
    /// Mean interval between multicasts in ms (500 in §5.3; actual gaps
    /// are uniform in `[0, 2 × mean)`). Ignored when [`Scenario::arrival`]
    /// is set.
    pub mean_interval_ms: f64,
    /// Heavy-traffic workload axis (`None` = the historical uniform-gap
    /// plan, byte-identical to pre-arrival builds): an open-loop arrival
    /// process at a fixed offered rate, or a closed loop gating each
    /// publish on the previous delivery. See [`crate::arrival`].
    pub arrival: Option<Arrival>,
    /// Warm-up time before traffic starts (overlay joins and shuffles).
    pub warmup_ms: f64,
    /// Drain time after the last multicast before measurement stops.
    pub drain_ms: f64,
    /// Per-message network loss probability.
    pub loss: f64,
    /// Network jitter fraction.
    pub jitter: f64,
    /// Per-node egress bandwidth in bytes/second (`None` = unconstrained).
    /// Models the burst serialization the paper observes on its testbed
    /// (§5.3).
    pub egress_bandwidth: Option<f64>,
    /// Bound on individually tracked links in traffic accounting (`None`
    /// = unbounded). Scale scenarios set this so link tallies stay sparse:
    /// once the map holds this many distinct links, further new links are
    /// folded into one aggregate spill tally (totals and per-node payload
    /// counts remain exact). See
    /// [`egm_simnet::SimConfig::with_link_spill_threshold`].
    pub link_spill_threshold: Option<usize>,
    /// Forces a simulator event-queue implementation (`None` = the
    /// simulator's default resolution: `EGM_EVENT_QUEUE`, then size-based
    /// selection). Both implementations dispatch in bit-identical order —
    /// the `queue_determinism` test runs the same scenario through both
    /// and asserts byte-identical results — so this is a performance A/B
    /// switch, never a behavioural one.
    pub event_queue: Option<QueueKind>,
    /// How the best set is ranked when the strategy needs one
    /// ([`RankSource::Oracle`] = the historical O(n²) centrality sweep;
    /// the decentralized sources cost O(n·k) and are what the scale
    /// presets use). Ignored when [`Scenario::best_override`] is set or
    /// the strategy is environment-free. Decentralized sources draw from
    /// their own RNG stream (forked from the scenario seed), so switching
    /// the source never perturbs view bootstrap, fault selection or
    /// traffic randomness — and oracle runs stay byte-identical to
    /// pre-`RankSource` builds.
    pub rank_source: RankSource,
    /// How many worker shards partition the run (`None` = the simulator's
    /// default resolution: `EGM_SHARDS`, then size-based selection —
    /// sequential below 1k nodes, available parallelism capped at 8
    /// above). `Some(0)` forces the sequential engine, `Some(w)` forces
    /// the sharded engine with `w` shards (1 = a single windowless
    /// shard). Every choice is byte-identical — the `shard_determinism`
    /// test runs the same scenario at several widths and asserts equal
    /// outputs — so this is purely a performance knob. See
    /// [`egm_simnet::ShardedSim`].
    pub shards: Option<usize>,
    /// How a sharded run maps nodes to shards (`None` = the simulator's
    /// default resolution: `EGM_PARTITION`, then auto — domain-aligned
    /// when the topology yields a plan, contiguous otherwise). Every
    /// strategy is byte-identical — the partitioning A/B in
    /// `shard_events_per_sec` and the `shard_determinism` suite assert
    /// it — so this is purely a performance knob. See
    /// [`egm_simnet::PartitionStrategy`].
    pub partition: Option<egm_simnet::PartitionStrategy>,
    /// Overrides the best-node set computed from the strategy spec (used
    /// to plug in externally computed / estimated rankings, e.g. the
    /// `rank_quality` experiment's degraded estimators).
    pub best_override: Option<std::sync::Arc<egm_core::BestSet>>,
    /// Streams sealed traffic tallies to a temp-file spool instead of
    /// holding every compacted run in memory (see
    /// [`egm_simnet::SimConfig::with_traffic_spool`]). The ≥100k scale
    /// presets turn this on so link accounting stays O(live window)
    /// in RAM; results are byte-identical either way.
    pub traffic_spool: bool,
    /// Master seed: drives topology, views, node RNGs and the network.
    pub seed: u64,
}

impl Scenario {
    /// The paper's experimental configuration (§5.2–§5.3): 100 nodes on a
    /// transit–stub model, 400 × 256 B messages at 500 ms mean interval,
    /// fanout 11, overlay fanout 15, 400 ms retransmission period.
    pub fn paper_default() -> Self {
        Scenario {
            topology: TopologySource::TransitStub(TransitStubConfig::default()),
            protocol: ProtocolConfig::default(),
            strategy: StrategySpec::Flat { pi: 1.0 },
            monitor: MonitorSpec::OracleLatency,
            noise: None,
            faults: None,
            churn: None,
            fault_schedule: None,
            rerank: None,
            messages: 400,
            mean_interval_ms: 500.0,
            arrival: None,
            warmup_ms: 3000.0,
            drain_ms: 5000.0,
            loss: 0.0,
            jitter: 0.0,
            egress_bandwidth: None,
            link_spill_threshold: None,
            event_queue: None,
            shards: None,
            partition: None,
            rank_source: RankSource::Oracle,
            best_override: None,
            traffic_spool: false,
            seed: 42,
        }
    }

    /// A small, fast configuration for unit/integration tests: 24 nodes
    /// on a uniform 39–60 ms synthetic network, 30 messages.
    pub fn smoke_test() -> Self {
        Scenario {
            topology: TopologySource::Uniform {
                nodes: 24,
                lo_ms: 39.0,
                hi_ms: 60.0,
            },
            protocol: ProtocolConfig {
                fanout: 6,
                rounds: 5,
                shuffle_interval: None,
                ..ProtocolConfig::default()
            },
            monitor: MonitorSpec::OracleLatency,
            messages: 30,
            mean_interval_ms: 100.0,
            warmup_ms: 200.0,
            drain_ms: 3000.0,
            ..Scenario::paper_default()
        }
    }

    /// Number of protocol nodes.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// Builds this scenario's network model exactly as a cold run would
    /// ([`crate::runner::run_detailed`] with no model override): the
    /// topology source seeded with `seed ^` [`TOPOLOGY_SEED_SALT`].
    ///
    /// Benches and A/B tests that pre-build a model to share across runs
    /// must use this (not a hand-derived seed), or the model they measure
    /// on could drift from the model the runs would build themselves.
    pub fn build_model(&self) -> RoutedModel {
        self.topology.build(self.seed ^ TOPOLOGY_SEED_SALT)
    }

    /// Sets the strategy (builder style).
    pub fn with_strategy(mut self, strategy: StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the monitor (builder style).
    pub fn with_monitor(mut self, monitor: MonitorSpec) -> Self {
        self.monitor = monitor;
        self
    }

    /// Sets the noise configuration (builder style).
    pub fn with_noise(mut self, noise: Option<NoiseConfig>) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the fault plan (builder style).
    pub fn with_faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the churn plan (builder style).
    pub fn with_churn(mut self, churn: Option<ChurnPlan>) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the explicit fault trace (builder style); see
    /// [`Scenario::fault_schedule`].
    pub fn with_fault_schedule(mut self, schedule: Option<FaultSchedule>) -> Self {
        self.fault_schedule = schedule;
        self
    }

    /// Enables online re-ranking during warm-up (builder style); see
    /// [`Scenario::rerank`].
    pub fn with_rerank(mut self, rerank: Option<RerankPlan>) -> Self {
        self.rerank = rerank;
        self
    }

    /// Overrides the best-node set (builder style).
    pub fn with_best_override(mut self, best: Option<std::sync::Arc<egm_core::BestSet>>) -> Self {
        self.best_override = best;
        self
    }

    /// Selects how best nodes are ranked (builder style).
    pub fn with_rank_source(mut self, source: RankSource) -> Self {
        self.rank_source = source;
        self
    }

    /// Bounds link-accounting memory (builder style).
    pub fn with_link_spill_threshold(mut self, links: Option<usize>) -> Self {
        self.link_spill_threshold = links;
        self
    }

    /// Streams sealed traffic to a disk spool (builder style); see
    /// [`Scenario::traffic_spool`].
    pub fn with_traffic_spool(mut self, spool: bool) -> Self {
        self.traffic_spool = spool;
        self
    }

    /// Forces an event-queue implementation (builder style).
    pub fn with_event_queue(mut self, queue: Option<QueueKind>) -> Self {
        self.event_queue = queue;
        self
    }

    /// Forces a shard count (builder style); see [`Scenario::shards`].
    pub fn with_shards(mut self, shards: Option<usize>) -> Self {
        self.shards = shards;
        self
    }

    /// Forces a partition strategy (builder style); see
    /// [`Scenario::partition`].
    pub fn with_partition(mut self, partition: Option<egm_simnet::PartitionStrategy>) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message count (builder style).
    pub fn with_messages(mut self, messages: usize) -> Self {
        self.messages = messages;
        self
    }

    /// Selects the arrival mode (builder style); see [`Scenario::arrival`].
    pub fn with_arrival(mut self, arrival: Option<Arrival>) -> Self {
        self.arrival = arrival;
        self
    }

    /// Runs the scenario, building the topology from the scenario seed.
    ///
    /// See [`crate::runner::run`] for details; use
    /// [`Scenario::run_with_model`] to share one topology across a sweep
    /// (the paper holds the network model fixed while varying strategy).
    pub fn run(&self) -> RunReport {
        crate::runner::run(self, None)
    }

    /// Runs the scenario over a pre-built network model.
    ///
    /// # Panics
    ///
    /// Panics if the model size differs from the scenario's node count.
    pub fn run_with_model(&self, model: Arc<RoutedModel>) -> RunReport {
        crate::runner::run(self, Some(model))
    }
}

#[cfg(test)]
mod tests {
    use super::{Scenario, TopologySource};

    #[test]
    fn paper_default_matches_section_5() {
        let s = Scenario::paper_default();
        assert_eq!(s.node_count(), 100);
        assert_eq!(s.messages, 400);
        assert_eq!(s.mean_interval_ms, 500.0);
        assert_eq!(s.protocol.fanout, 11);
    }

    #[test]
    fn topology_sources_build_expected_sizes() {
        let u = TopologySource::Uniform {
            nodes: 8,
            lo_ms: 1.0,
            hi_ms: 2.0,
        };
        assert_eq!(u.node_count(), 8);
        assert_eq!(u.build(1).client_count(), 8);
        let p = TopologySource::Planar {
            nodes: 5,
            plane: 100.0,
            ms_per_unit: 0.5,
        };
        assert_eq!(p.build(2).client_count(), 5);
    }

    #[test]
    fn builders_compose() {
        use egm_core::StrategySpec;
        let s = Scenario::smoke_test()
            .with_strategy(StrategySpec::Ttl { u: 2 })
            .with_seed(9)
            .with_messages(5);
        assert_eq!(s.seed, 9);
        assert_eq!(s.messages, 5);
        assert_eq!(s.strategy, StrategySpec::Ttl { u: 2 });
    }
}
