//! The paper's evaluation, experiment by experiment.
//!
//! Each submodule regenerates one figure of §6 (or the §5.1 model
//! statistics) as structured rows plus a rendered text table, so the bench
//! harnesses in `egm-bench` print the same series the paper plots:
//!
//! | module | paper result |
//! |--------|--------------|
//! | [`netstats`] | §5.1 network model properties, §5.4 run statistics |
//! | [`fig4`] | emergent structure: top-5 % link share per strategy |
//! | [`fig5a`] | latency vs payload/msg tradeoff per strategy |
//! | [`fig5b`] | reliability under correlated node failures |
//! | [`fig5c`] | hybrid (combined) strategy tradeoff |
//! | [`fig6`] | structure degradation under monitor noise |
//! | [`ablation`] | extension: NeEM redundancy-suppression ablation |
//! | [`rank_quality`] | extension: decentralized ranking quality |
//! | [`scale`] | extension: 1k–10k-node scale-axis presets |
//! | [`fault_resilience`] | extension: scheduled fault scenarios × churn |
//!
//! Experiments default to a reduced **quick** scale so the whole suite
//! runs in seconds; set `EGM_SCALE=paper` to reproduce at the paper's full
//! scale (100 nodes × 400 messages).

pub mod ablation;
pub mod fault_resilience;
pub mod fig4;
pub mod fig5a;
pub mod fig5b;
pub mod fig5c;
pub mod fig6;
pub mod netstats;
pub mod rank_quality;
pub mod scale;

use crate::scenario::{Scenario, TopologySource};
use egm_topology::{RoutedModel, TransitStubConfig};
use std::sync::Arc;

/// Experiment scale: how many nodes and messages per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Protocol nodes (the paper uses 100, and 200 for the low-bandwidth
    /// configurations).
    pub nodes: usize,
    /// Multicast messages per run (400 in the paper).
    pub messages: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Reduced scale for fast regeneration (~seconds per figure).
    pub fn quick() -> Self {
        Scale {
            nodes: 50,
            messages: 120,
            seed: 42,
        }
    }

    /// The paper's full scale: 100 nodes, 400 messages.
    pub fn paper() -> Self {
        Scale {
            nodes: 100,
            messages: 400,
            seed: 42,
        }
    }

    /// Reads `EGM_SCALE` from the environment: `paper` selects
    /// [`Scale::paper`], anything else (or unset) [`Scale::quick`].
    pub fn from_env() -> Self {
        match std::env::var("EGM_SCALE").as_deref() {
            Ok("paper") => Scale::paper(),
            _ => Scale::quick(),
        }
    }
}

/// The base scenario all figure experiments derive from: a transit–stub
/// model with `scale.nodes` clients and the paper's §5.2/§5.3 protocol
/// parameters.
pub fn base_scenario(scale: &Scale) -> Scenario {
    let mut s = Scenario::paper_default();
    s.topology =
        TopologySource::TransitStub(TransitStubConfig::default().with_clients(scale.nodes));
    s.messages = scale.messages;
    s.seed = scale.seed;
    // The overlay keeps shuffling during the run, as in NeEM (§5.2): the
    // paper's Fig. 4 emphasizes that connections are used briefly and
    // churned, so structure must emerge *despite* membership churn.
    s
}

/// Builds the shared network model for a figure (the paper holds the
/// model fixed while sweeping strategies).
pub fn shared_model(scale: &Scale) -> Arc<RoutedModel> {
    Arc::new(base_scenario(scale).build_model())
}

#[cfg(test)]
mod tests {
    use super::{base_scenario, shared_model, Scale};

    #[test]
    fn scales_differ_as_documented() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(q.nodes < p.nodes);
        assert_eq!(p.nodes, 100);
        assert_eq!(p.messages, 400);
    }

    #[test]
    fn base_scenario_matches_scale() {
        let scale = Scale {
            nodes: 30,
            messages: 10,
            seed: 1,
        };
        let s = base_scenario(&scale);
        assert_eq!(s.node_count(), 30);
        assert_eq!(s.messages, 10);
        assert!(
            s.protocol.shuffle_interval.is_some(),
            "overlay churns as in NeEM"
        );
    }

    #[test]
    fn shared_model_matches_base_scenario() {
        let scale = Scale {
            nodes: 12,
            messages: 5,
            seed: 3,
        };
        let model = shared_model(&scale);
        assert_eq!(model.client_count(), 12);
        // And is exactly the model a plain `run()` would build.
        let report = base_scenario(&scale).run_with_model(model);
        assert_eq!(report.nodes, 12);
    }
}
