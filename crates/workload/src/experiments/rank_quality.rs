//! Extension: how good must the ranking be?
//!
//! The paper configures best nodes from global knowledge and shows via
//! noise injection (§6.5) that approximate rankings still work. Here we
//! close the loop with explicit decentralized estimators — sampled
//! centrality and the gossip-sorted ranking of the paper's reference
//! \[11\] run over the protocol's own view/monitor machinery — and measure
//! both the hub-choice overlap with the oracle and the end-to-end
//! protocol performance when running Ranked on the estimated set.
//!
//! Two entry points:
//!
//! * [`run`] — the figure-scale table (50–100 nodes): oracle, sampled
//!   estimators of decreasing quality, and a random baseline, all via
//!   [`Scenario::best_override`](crate::Scenario::best_override).
//! * [`run_at_preset`] — the scale-axis answer (1k/4k/10k): every
//!   [`RankSource`](egm_core::RankSource) through the real `rank_source` selection path,
//!   recording oracle-overlap, delivery-latency and relay-concentration
//!   deltas. This is the measurement that justified switching
//!   [`ScalePreset`] to the gossip-sorted source (overlap ≥ 0.8 at 10k).

use super::scale::ScalePreset;
use super::Scale;
use egm_core::{BestSet, StrategySpec};
use egm_metrics::{table, RunReport, Table};
use egm_rng::Rng;
use std::sync::Arc;

/// One ranking-quality measurement.
#[derive(Debug, Clone)]
pub struct RankRow {
    /// Estimator label.
    pub estimator: String,
    /// Fraction of estimated hubs that match the oracle's.
    pub overlap: f64,
    /// Report of the Ranked run using this best set.
    pub report: RunReport,
}

/// Runs Ranked under the oracle ranking, sampled estimators of decreasing
/// quality, and a random ranking.
pub fn run(scale: &Scale) -> Vec<RankRow> {
    let model = super::shared_model(scale);
    let oracle = BestSet::by_centrality(&model, 0.2);
    let mut rng = Rng::seed_from_u64(scale.seed ^ 0x4A4E);

    let mut sets: Vec<(String, BestSet)> = vec![("oracle".into(), oracle.clone())];
    for samples in [32usize, 8, 2] {
        let est = BestSet::by_sampled_centrality(&model, 0.2, samples, &mut rng);
        sets.push((format!("sampled k={samples}"), est));
    }
    // Chance baseline: a uniformly random 20% of nodes.
    let n = model.client_count();
    let random_ids: Vec<egm_simnet::NodeId> = egm_rng::sample::distinct_indices(&mut rng, n, n / 5)
        .into_iter()
        .map(egm_simnet::NodeId)
        .collect();
    sets.push(("random".into(), BestSet::from_ids(n, &random_ids)));

    let mut meta: Vec<(String, f64)> = Vec::new();
    let mut scenarios = Vec::new();
    for (estimator, set) in sets {
        meta.push((estimator, set.overlap(&oracle)));
        scenarios.push(
            super::base_scenario(scale)
                .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
                .with_best_override(Some(set.shared())),
        );
    }
    let reports = crate::runner::run_sweep_reports(scenarios, Some(model));
    meta.into_iter()
        .zip(reports)
        .map(|((estimator, overlap), report)| RankRow {
            estimator,
            overlap,
            report,
        })
        .collect()
}

/// Runs the Ranked preset scenario once per
/// [`RankSource`](egm_core::RankSource) — oracle,
/// sampled, and the gossip-sorted source the presets ship with — through
/// the *real* rank-source selection path (no override), and measures
/// each source's hub-choice overlap with the oracle plus the end-to-end
/// deltas (delivery latency, top-5 % relay concentration are in the
/// per-row [`RunReport`]).
///
/// The network model is built once and shared; every run is
/// deterministic in `seed`. At 10k nodes this takes a few tens of
/// seconds in release mode — it is the accuracy-characterization
/// experiment, not a unit test (the 1k variant runs as a smoke test).
///
/// # Panics
///
/// Panics if `messages == 0`.
pub fn run_at_preset(preset: ScalePreset, messages: usize, seed: u64) -> Vec<RankRow> {
    let sources = preset.rank_ab_sources();
    let base = preset.scenario(messages, seed);
    let n = base.node_count();
    let model = Arc::new(base.build_model());
    let scenarios: Vec<_> = sources
        .iter()
        .map(|&source| base.clone().with_rank_source(source))
        .collect();
    let outcomes = crate::runner::run_sweep(scenarios, Some(model));

    // Overlap is measured on the hub sets the runs actually used.
    let oracle_set = BestSet::from_ids(n, &outcomes[0].best_ids);
    sources
        .iter()
        .zip(outcomes)
        .map(|(source, outcome)| RankRow {
            estimator: source.label(),
            overlap: BestSet::from_ids(n, &outcome.best_ids).overlap(&oracle_set),
            report: outcome.report,
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[RankRow]) -> String {
    let mut t = Table::new([
        "estimator",
        "hub overlap (%)",
        "latency (ms)",
        "payload/msg",
        "top5% share (%)",
    ]);
    for r in rows {
        t.row([
            r.estimator.clone(),
            table::pct(r.overlap),
            table::num(r.report.mean_latency_ms(), 0),
            table::num(r.report.payloads_per_delivery, 2),
            table::pct(r.report.top5_link_share),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::{render, run, run_at_preset, Scale, ScalePreset};

    #[test]
    fn gossip_ranking_overlaps_oracle_at_one_k() {
        // The scale-axis acceptance measurement at the CI-sized preset:
        // the gossip-sorted source the presets ship with must choose
        // ≥ 80 % of the oracle's hubs. (The 4k/10k variants run in the
        // `rank_events_per_sec` bench and the ignored test below.)
        let rows = run_at_preset(ScalePreset::N1k, 2, 11);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].estimator, "oracle");
        assert_eq!(rows[0].overlap, 1.0);
        let gossip = rows.last().expect("gossip row");
        assert!(
            gossip.overlap >= 0.8,
            "gossip overlap at 1k: {}",
            gossip.overlap
        );
        // Every source still delivers: ranking quality shifts the
        // latency/bandwidth tradeoff, not correctness.
        for r in &rows {
            assert!(
                r.report.mean_delivery_fraction > 0.9,
                "{}: {}",
                r.estimator,
                r.report
            );
        }
    }

    #[test]
    #[ignore = "10k-node release-mode characterization: cargo test --release -- --ignored"]
    fn gossip_ranking_overlaps_oracle_at_ten_k() {
        let rows = run_at_preset(ScalePreset::N10k, 2, 11);
        let gossip = rows.last().expect("gossip row");
        assert!(
            gossip.overlap >= 0.8,
            "gossip overlap at 10k: {}",
            gossip.overlap
        );
    }

    #[test]
    fn estimated_rankings_degrade_gracefully() {
        let scale = Scale {
            nodes: 30,
            messages: 30,
            seed: 31,
        };
        let rows = run(&scale);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].overlap, 1.0, "oracle overlaps itself");
        // Denser sampling beats sparser sampling at matching the oracle.
        assert!(rows[1].overlap >= rows[3].overlap);
        // All configurations keep delivering reliably; ranking quality
        // only shifts the tradeoff (the paper's robustness claim).
        for r in &rows {
            assert!(
                r.report.mean_delivery_fraction > 0.99,
                "{}: {}",
                r.estimator,
                r.report
            );
        }
        let text = render(&rows);
        assert!(text.contains("hub overlap"));
    }
}
