//! Extension: how good must the ranking be?
//!
//! The paper configures best nodes from global knowledge and shows via
//! noise injection (§6.5) that approximate rankings still work. Here we
//! close the loop with an explicit decentralized estimator: each node
//! scores itself by the mean latency to `k` random peers — what a local
//! latency monitor observes across shuffled views — and the best set is
//! assembled from those noisy scores (the gossip-sorted ranking of the
//! paper's reference [11], collapsed to its fixed point). We measure both
//! the hub-choice overlap with the oracle and the end-to-end protocol
//! performance when running Ranked on the estimated set.

use super::Scale;
use egm_core::{BestSet, StrategySpec};
use egm_metrics::{table, RunReport, Table};
use egm_rng::Rng;

/// One ranking-quality measurement.
#[derive(Debug, Clone)]
pub struct RankRow {
    /// Estimator label.
    pub estimator: String,
    /// Fraction of estimated hubs that match the oracle's.
    pub overlap: f64,
    /// Report of the Ranked run using this best set.
    pub report: RunReport,
}

/// Runs Ranked under the oracle ranking, sampled estimators of decreasing
/// quality, and a random ranking.
pub fn run(scale: &Scale) -> Vec<RankRow> {
    let model = super::shared_model(scale);
    let oracle = BestSet::by_centrality(&model, 0.2);
    let mut rng = Rng::seed_from_u64(scale.seed ^ 0x4A4E);

    let mut sets: Vec<(String, BestSet)> = vec![("oracle".into(), oracle.clone())];
    for samples in [32usize, 8, 2] {
        let est = BestSet::by_sampled_centrality(&model, 0.2, samples, &mut rng);
        sets.push((format!("sampled k={samples}"), est));
    }
    // Chance baseline: a uniformly random 20% of nodes.
    let n = model.client_count();
    let random_ids: Vec<egm_simnet::NodeId> = egm_rng::sample::distinct_indices(&mut rng, n, n / 5)
        .into_iter()
        .map(egm_simnet::NodeId)
        .collect();
    sets.push(("random".into(), BestSet::from_ids(n, &random_ids)));

    let mut meta: Vec<(String, f64)> = Vec::new();
    let mut scenarios = Vec::new();
    for (estimator, set) in sets {
        meta.push((estimator, set.overlap(&oracle)));
        scenarios.push(
            super::base_scenario(scale)
                .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
                .with_best_override(Some(set.shared())),
        );
    }
    let reports = crate::runner::run_sweep_reports(scenarios, Some(model));
    meta.into_iter()
        .zip(reports)
        .map(|((estimator, overlap), report)| RankRow {
            estimator,
            overlap,
            report,
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[RankRow]) -> String {
    let mut t = Table::new([
        "estimator",
        "hub overlap (%)",
        "latency (ms)",
        "payload/msg",
        "top5% share (%)",
    ]);
    for r in rows {
        t.row([
            r.estimator.clone(),
            table::pct(r.overlap),
            table::num(r.report.mean_latency_ms(), 0),
            table::num(r.report.payloads_per_delivery, 2),
            table::pct(r.report.top5_link_share),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::{render, run, Scale};

    #[test]
    fn estimated_rankings_degrade_gracefully() {
        let scale = Scale {
            nodes: 30,
            messages: 30,
            seed: 31,
        };
        let rows = run(&scale);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].overlap, 1.0, "oracle overlaps itself");
        // Denser sampling beats sparser sampling at matching the oracle.
        assert!(rows[1].overlap >= rows[3].overlap);
        // All configurations keep delivering reliably; ranking quality
        // only shifts the tradeoff (the paper's robustness claim).
        for r in &rows {
            assert!(
                r.report.mean_delivery_fraction > 0.99,
                "{}: {}",
                r.estimator,
                r.report
            );
        }
        let text = render(&rows);
        assert!(text.contains("hub overlap"));
    }
}
