//! §5.1 network-model properties and §5.4 run statistics,
//! paper-vs-measured.

use super::Scale;
use crate::scenario::Scenario;
use egm_core::StrategySpec;
use egm_metrics::{table, Table};
use egm_topology::ModelStats;

/// Paper-quoted §5.1 values for the Inet-3.0 model.
pub const PAPER_MEAN_HOPS: f64 = 5.54;
/// Paper: fraction of pairs within 5–6 hops.
pub const PAPER_FRAC_HOPS_5_6: f64 = 0.7428;
/// Paper: mean end-to-end latency (ms).
pub const PAPER_MEAN_LATENCY_MS: f64 = 49.83;
/// Paper: fraction of pairs within 39–60 ms.
pub const PAPER_FRAC_LATENCY_39_60: f64 = 0.50;

/// Result of the model-statistics experiment.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Measured model statistics.
    pub stats: ModelStats,
    /// Total deliveries of the eager reference run (§5.4 quotes 40 000
    /// for 400 messages × 100 nodes).
    pub eager_deliveries: u64,
    /// Total packets transmitted in the eager reference run (§5.4 quotes
    /// 440 000).
    pub eager_packets: u64,
    /// Mean gossip round at delivery (§6.2 quotes ≈4.5).
    pub mean_delivery_round: f64,
}

/// Measures the generated model against the paper's §5.1 numbers and runs
/// the §5.4 eager reference workload.
pub fn run(scale: &Scale) -> NetStats {
    let model = super::shared_model(scale);
    let stats = model.stats();
    let scenario: Scenario =
        super::base_scenario(scale).with_strategy(StrategySpec::Flat { pi: 1.0 });
    let outcome = crate::runner::run_sweep(vec![scenario], Some(model))
        .pop()
        .expect("one scenario in, one outcome out");
    NetStats {
        stats,
        // total_deliveries already includes the sources' own deliveries,
        // matching §5.4's 400 msgs × 100 nodes = 40 000 accounting.
        eager_deliveries: outcome.log.total_deliveries(),
        eager_packets: outcome.report.total_payloads,
        mean_delivery_round: outcome.report.mean_delivery_round,
    }
}

impl NetStats {
    /// Renders the paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["quantity", "paper", "measured"]);
        t.row([
            "mean hop distance",
            &format!("{PAPER_MEAN_HOPS}"),
            &table::num(self.stats.mean_hops, 2),
        ]);
        t.row([
            "pairs within 5-6 hops (%)",
            &format!("{:.1}", PAPER_FRAC_HOPS_5_6 * 100.0),
            &table::pct(self.stats.frac_hops_5_6),
        ]);
        t.row([
            "mean e2e latency (ms)",
            &format!("{PAPER_MEAN_LATENCY_MS}"),
            &table::num(self.stats.mean_latency_ms, 2),
        ]);
        t.row([
            "pairs within 39-60ms (%)",
            &format!("{:.0}", PAPER_FRAC_LATENCY_39_60 * 100.0),
            &table::pct(self.stats.frac_latency_39_60),
        ]);
        t.row(["routers", "3037", &self.stats.router_count.to_string()]);
        t.row([
            "eager run: deliveries",
            "40000 (at 100 nodes)",
            &self.eager_deliveries.to_string(),
        ]);
        t.row([
            "eager run: payload packets",
            "440000 (at 100 nodes)",
            &self.eager_packets.to_string(),
        ]);
        t.row([
            "mean gossip rounds to delivery",
            "4.5",
            &table::num(self.mean_delivery_round, 2),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::{run, Scale};

    #[test]
    fn netstats_report_shape() {
        let scale = Scale {
            nodes: 20,
            messages: 10,
            seed: 7,
        };
        let ns = run(&scale);
        // 10 messages × 20 nodes = 200 deliveries under eager push (with
        // high probability; allow a couple of misses).
        assert!(
            ns.eager_deliveries >= 190,
            "deliveries {}",
            ns.eager_deliveries
        );
        assert!(ns.eager_packets > ns.eager_deliveries, "fanout redundancy");
        assert!(ns.mean_delivery_round >= 1.0);
        let text = ns.render();
        assert!(text.contains("mean hop distance"));
        assert!(text.contains("5.54"));
    }
}
