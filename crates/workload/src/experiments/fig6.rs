//! Fig. 6: graceful degradation of structure under monitor noise.
//!
//! §4.3/§6.5: each `Eager?` answer is blurred by
//! `v' = c + (v − c)(1 − o)` with `c` calibrated so total eager traffic is
//! preserved. The paper shows that (a) overall payload/msg stays constant
//! while the regular nodes' share converges up to the mean, (b) Ranked's
//! latency advantage decays gracefully toward Flat, and (c) the top-5 %
//! link share converges to ≈5 % — structure dissolves but nothing breaks.

use super::Scale;
use egm_core::{MonitorSpec, StrategySpec};
use egm_metrics::{table, RunReport, Table};

/// Noise ratios swept (the paper sweeps 0–100 %).
pub const NOISE_RATIOS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One noise measurement.
#[derive(Debug, Clone)]
pub struct NoisePoint {
    /// Series: "radius" or "ranked".
    pub series: &'static str,
    /// Noise ratio `o`.
    pub noise: f64,
    /// Calibrated constant `c` used.
    pub c: f64,
    /// Overall payload/msg — must stay ≈constant (Fig. 6(a)).
    pub payloads_per_msg: f64,
    /// Regular-node payload/msg (rises with noise for ranked).
    pub payloads_per_msg_low: Option<f64>,
    /// Mean latency (Fig. 6(b)).
    pub latency_ms: f64,
    /// Top-5 % link share (Fig. 6(c)).
    pub top5_share: f64,
    /// The full report.
    pub report: RunReport,
}

/// Sweeps noise for the Radius and Ranked strategies over one shared
/// model.
pub fn run(scale: &Scale) -> Vec<NoisePoint> {
    let model = super::shared_model(scale);
    let configs: [(&'static str, StrategySpec, MonitorSpec); 2] = [
        (
            "radius",
            StrategySpec::Radius {
                rho: 25.0,
                t0_ms: 25.0,
            },
            MonitorSpec::OracleLatency,
        ),
        (
            "ranked",
            StrategySpec::Ranked { best_fraction: 0.2 },
            MonitorSpec::OracleLatency,
        ),
    ];
    // Phase 1: calibrate `c` for both series in one parallel batch.
    let bases: Vec<_> = configs
        .iter()
        .map(|(_, strategy, monitor)| {
            super::base_scenario(scale)
                .with_strategy(strategy.clone())
                .with_monitor(*monitor)
        })
        .collect();
    let probes: Vec<_> = bases.iter().map(crate::calibrate::probe_scenario).collect();
    let rates: Vec<f64> = crate::runner::run_sweep(probes, Some(model.clone()))
        .iter()
        .map(crate::calibrate::rate_from_outcome)
        .collect();

    // Phase 2: the full noise grid, one parallel batch.
    let mut meta: Vec<(&'static str, f64, f64)> = Vec::new();
    let mut scenarios = Vec::new();
    for ((&(series, _, _), base), &c) in configs.iter().zip(&bases).zip(&rates) {
        for o in NOISE_RATIOS {
            let noise = (o > 0.0).then_some(crate::scenario::NoiseConfig { o, c });
            meta.push((series, o, c));
            scenarios.push(base.clone().with_noise(noise));
        }
    }
    let reports = crate::runner::run_sweep_reports(scenarios, Some(model));
    meta.into_iter()
        .zip(reports)
        .map(|((series, o, c), report)| NoisePoint {
            series,
            noise: o,
            c,
            payloads_per_msg: report.payloads_per_delivery,
            payloads_per_msg_low: report.payloads_per_delivery_low,
            latency_ms: report.mean_latency_ms(),
            top5_share: report.top5_link_share,
            report,
        })
        .collect()
}

/// Renders all three panels as one table.
pub fn render(points: &[NoisePoint]) -> String {
    let mut t = Table::new([
        "series",
        "noise (%)",
        "payload/msg",
        "payload/msg low",
        "latency (ms)",
        "top5% share (%)",
    ]);
    for p in points {
        t.row([
            p.series.to_string(),
            format!("{:.0}", p.noise * 100.0),
            table::num(p.payloads_per_msg, 2),
            p.payloads_per_msg_low
                .map_or("-".into(), |v| table::num(v, 2)),
            table::num(p.latency_ms, 0),
            table::pct(p.top5_share),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::{render, run, Scale};

    #[test]
    fn noise_preserves_traffic_and_dissolves_structure() {
        let scale = Scale {
            nodes: 30,
            messages: 40,
            seed: 23,
        };
        let points = run(&scale);
        assert_eq!(points.len(), 10);
        for series in ["radius", "ranked"] {
            let s: Vec<_> = points.iter().filter(|p| p.series == series).collect();
            let clean = s.first().expect("noise=0 point");
            let noisy = s.last().expect("noise=1 point");
            // Fig 6(a): total payload volume is approximately preserved.
            let ratio = noisy.payloads_per_msg / clean.payloads_per_msg;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "{series}: payload volume drifted by {ratio}"
            );
            // Fig 6(c): structure dissolves toward the uniform 5% share.
            assert!(
                noisy.top5_share < clean.top5_share,
                "{series}: top5 {} -> {}",
                clean.top5_share,
                noisy.top5_share
            );
            assert!(
                noisy.top5_share < 0.20,
                "{series}: residual structure too strong"
            );
        }
        let text = render(&points);
        assert!(text.contains("noise"));
    }
}
