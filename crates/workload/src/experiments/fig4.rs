//! Fig. 4: emergent structure under the pseudo-geographical oracle.
//!
//! The paper runs 100-node configurations with the distance oracle,
//! selects the top-5 % connections by payload carried, and reports the
//! share of all payload they account for: ≈7 % for eager push (no
//! structure), 37 % for Radius (an emergent mesh), 30 % for Ranked
//! (emergent super-nodes). This module reproduces those three runs and
//! additionally renders an ASCII structure map for the examples.

use super::Scale;
use crate::runner::RunOutcome;
use egm_core::{MonitorSpec, StrategySpec};
use egm_metrics::{table, Table};

/// Paper-quoted top-5 % traffic shares (Fig. 4 caption).
pub const PAPER_SHARES: [(&str, f64); 3] = [
    ("eager (flat pi=1)", 0.07),
    ("radius", 0.37),
    ("ranked", 0.30),
];

/// Distance-oracle radius (map units) used by the Radius run; chosen so a
/// peer is "near" when its pseudo-geographic distance is well below the
/// ≈520-unit mean of the default plane.
pub const RADIUS_UNITS: f64 = 250.0;

/// One strategy's structure measurement.
#[derive(Debug)]
pub struct StructureRow {
    /// Strategy label.
    pub label: String,
    /// Paper-quoted top-5 % share for the analogous configuration.
    pub paper_share: f64,
    /// Measured share of payload on the top-5 % links.
    pub measured_share: f64,
    /// Gini coefficient of per-node payload contributions.
    pub node_gini: f64,
    /// Full outcome for drill-down (structure maps, link dumps).
    pub outcome: RunOutcome,
}

/// Runs the three Fig. 4 configurations over one shared model, fanned
/// across cores by [`crate::runner::run_sweep`].
pub fn run(scale: &Scale) -> Vec<StructureRow> {
    let model = super::shared_model(scale);
    let configs: [(StrategySpec, MonitorSpec, f64); 3] = [
        (
            StrategySpec::Flat { pi: 1.0 },
            MonitorSpec::Null,
            PAPER_SHARES[0].1,
        ),
        (
            StrategySpec::Radius {
                rho: RADIUS_UNITS,
                t0_ms: 30.0,
            },
            MonitorSpec::OracleDistance,
            PAPER_SHARES[1].1,
        ),
        (
            StrategySpec::Ranked { best_fraction: 0.2 },
            MonitorSpec::OracleLatency,
            PAPER_SHARES[2].1,
        ),
    ];
    let scenarios: Vec<_> = configs
        .iter()
        .map(|(strategy, monitor, _)| {
            super::base_scenario(scale)
                .with_strategy(strategy.clone())
                .with_monitor(*monitor)
        })
        .collect();
    let outcomes = crate::runner::run_sweep(scenarios, Some(model));
    configs
        .into_iter()
        .zip(outcomes)
        .map(|((_, _, paper_share), outcome)| StructureRow {
            label: outcome.report.label.clone(),
            paper_share,
            measured_share: outcome.report.top5_link_share,
            node_gini: outcome.report.node_gini,
            outcome,
        })
        .collect()
}

/// Renders the figure table.
pub fn render(rows: &[StructureRow]) -> String {
    let mut t = Table::new([
        "strategy",
        "top5% share paper (%)",
        "top5% share measured (%)",
        "node gini",
        "payload/msg",
    ]);
    for r in rows {
        t.row([
            r.label.clone(),
            format!("{:.0}", r.paper_share * 100.0),
            table::pct(r.measured_share),
            table::num(r.node_gini, 3),
            table::num(r.outcome.report.payloads_per_delivery, 2),
        ]);
    }
    t.render()
}

/// Renders an ASCII map of the emergent structure: nodes are placed by
/// their pseudo-geographic coordinates on a `width × height` character
/// grid; best/heaviest nodes are drawn `#`, others by load decile (`.` to
/// `8`).
pub fn structure_map(outcome: &RunOutcome, width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 8, "map too small");
    let model = &outcome.model;
    let n = model.client_count();
    let max_load = outcome
        .payloads_per_node
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for i in 0..n {
        let p = model.coord(i);
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for i in 0..n {
        let p = model.coord(i);
        let col = (((p.x - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let row = (((p.y - min_y) / span_y) * (height - 1) as f64).round() as usize;
        let load = outcome.payloads_per_node[i] as f64 / max_load as f64;
        let ch = if load > 0.8 {
            '#'
        } else {
            // deciles '.' '1'..'8'
            match (load * 10.0) as u32 {
                0 => '.',
                d => char::from_digit(d.min(8), 10).unwrap_or('8'),
            }
        };
        grid[row][col] = ch;
    }
    let mut out = String::with_capacity((width + 1) * height);
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{render, run, structure_map, Scale};

    #[test]
    fn structure_emerges_for_radius_and_ranked() {
        let scale = Scale {
            nodes: 30,
            messages: 40,
            seed: 11,
        };
        let rows = run(&scale);
        assert_eq!(rows.len(), 3);
        let eager = rows[0].measured_share;
        let radius = rows[1].measured_share;
        let ranked = rows[2].measured_share;
        // The paper's qualitative result: structured strategies
        // concentrate traffic far beyond the unstructured baseline.
        assert!(radius > 1.5 * eager, "radius {radius} vs eager {eager}");
        assert!(ranked > 1.5 * eager, "ranked {ranked} vs eager {eager}");
        let text = render(&rows);
        assert!(text.contains("top5%"));
        assert_eq!(text.lines().count(), 2 + 3);
    }

    #[test]
    fn structure_map_renders_grid() {
        let scale = Scale {
            nodes: 15,
            messages: 10,
            seed: 3,
        };
        let rows = run(&scale);
        let map = structure_map(&rows[0].outcome, 40, 12);
        assert_eq!(map.lines().count(), 12);
        assert!(map.lines().all(|l| l.chars().count() == 40));
        assert!(map.contains('#'), "heaviest node must be marked");
    }

    #[test]
    #[should_panic(expected = "map too small")]
    fn tiny_map_panics() {
        let scale = Scale {
            nodes: 15,
            messages: 5,
            seed: 3,
        };
        let rows = run(&scale);
        let _ = structure_map(&rows[0].outcome, 2, 2);
    }
}
