//! Fig. 5(a): the latency/bandwidth tradeoff.
//!
//! The paper sweeps Flat's `pi` (latency 480 → 227 ms as payload/msg goes
//! 1 → 11), TTL (250 ms at 1.7 payload/msg), Radius and Ranked, plotting
//! mean delivery latency against payload transmissions per delivered
//! message. Expected shape: TTL dominates Flat; Ranked improves latency
//! over Flat at comparable traffic; Radius does *not* (its shorter hops
//! are offset by more rounds).

use super::Scale;
use egm_core::{MonitorSpec, StrategySpec};
use egm_metrics::{table, RunReport, Table};

/// Latency-oracle radius (ms) used by the Radius point; nodes closer than
/// this one-way latency get eager payloads.
pub const RADIUS_MS: [f64; 3] = [15.0, 25.0, 40.0];

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Series name ("flat", "ttl", "radius", "ranked (all)",
    /// "ranked (low)").
    pub series: &'static str,
    /// Parameter rendered into the label (π, u, ρ, best %).
    pub label: String,
    /// x: payload transmissions per delivery (or per message and group
    /// member for the "(low)" series).
    pub payloads_per_msg: f64,
    /// y: mean end-to-end latency (ms).
    pub latency_ms: f64,
    /// The full report.
    pub report: RunReport,
}

/// Sweeps all Fig. 5(a) series over one shared model, one parallel
/// [`crate::runner::run_sweep`] batch for every point.
pub fn run(scale: &Scale) -> Vec<TradeoffPoint> {
    let model = super::shared_model(scale);

    let mut jobs: Vec<(&'static str, String, StrategySpec)> = Vec::new();
    for pi in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        jobs.push(("flat", format!("pi={pi:.2}"), StrategySpec::Flat { pi }));
    }
    for u in [2u32, 3, 4] {
        jobs.push(("ttl", format!("u={u}"), StrategySpec::Ttl { u }));
    }
    for rho in RADIUS_MS {
        jobs.push((
            "radius",
            format!("rho={rho:.0}ms"),
            StrategySpec::Radius { rho, t0_ms: rho },
        ));
    }
    jobs.push((
        "ranked (all)",
        "best=20%".into(),
        StrategySpec::Ranked { best_fraction: 0.2 },
    ));

    let scenarios: Vec<_> = jobs
        .iter()
        .map(|(_, _, strategy)| {
            super::base_scenario(scale)
                .with_strategy(strategy.clone())
                .with_monitor(MonitorSpec::OracleLatency)
        })
        .collect();
    let reports = crate::runner::run_sweep_reports(scenarios, Some(model));

    let mut points = Vec::new();
    for ((series, label, _), report) in jobs.into_iter().zip(reports) {
        points.push(TradeoffPoint {
            series,
            label,
            payloads_per_msg: report.payloads_per_delivery,
            latency_ms: report.mean_latency_ms(),
            report: report.clone(),
        });
        // Group series for ranked: the regular-node (low) contribution.
        if series == "ranked (all)" {
            if let Some(low) = report.payloads_per_delivery_low {
                points.push(TradeoffPoint {
                    series: "ranked (low)",
                    label: "best=20%".into(),
                    payloads_per_msg: low,
                    latency_ms: report.mean_latency_ms(),
                    report,
                });
            }
        }
    }
    points
}

/// Renders the figure table.
pub fn render(points: &[TradeoffPoint]) -> String {
    let mut t = Table::new([
        "series",
        "config",
        "payload/msg",
        "latency (ms)",
        "delivered (%)",
    ]);
    for p in points {
        t.row([
            p.series.to_string(),
            p.label.clone(),
            table::num(p.payloads_per_msg, 2),
            table::num(p.latency_ms, 0),
            table::pct(p.report.mean_delivery_fraction),
        ]);
    }
    t.render()
}

/// Convenience: the points of one series, in sweep order.
pub fn series<'a>(points: &'a [TradeoffPoint], name: &str) -> Vec<&'a TradeoffPoint> {
    points.iter().filter(|p| p.series == name).collect()
}

#[cfg(test)]
mod tests {
    use super::{render, run, series, Scale};

    #[test]
    fn tradeoff_shape_matches_paper() {
        let scale = Scale {
            nodes: 30,
            messages: 60,
            seed: 5,
        };
        let points = run(&scale);
        let flat = series(&points, "flat");
        // Flat: pi=0 is slowest and cheapest; pi=1 fastest and most
        // expensive (the paper's 480ms/1 payload → 227ms/11 payloads).
        let lazy = flat.first().expect("pi=0 point");
        let eager = flat.last().expect("pi=1 point");
        assert!(
            lazy.payloads_per_msg < 1.5,
            "lazy {}",
            lazy.payloads_per_msg
        );
        assert!(
            eager.payloads_per_msg > 4.0,
            "eager {}",
            eager.payloads_per_msg
        );
        assert!(lazy.latency_ms > eager.latency_ms * 1.5);
        // TTL dominates flat: for u=3, traffic well below eager with
        // latency close to it.
        let ttl2 = &series(&points, "ttl")[1];
        assert!(ttl2.payloads_per_msg < eager.payloads_per_msg * 0.6);
        assert!(ttl2.latency_ms < lazy.latency_ms * 0.75);
        // Ranked(low): regular nodes carry much less than the average.
        let ranked_all = series(&points, "ranked (all)")[0];
        let ranked_low = series(&points, "ranked (low)")[0];
        assert!(ranked_low.payloads_per_msg < ranked_all.payloads_per_msg);
        let text = render(&points);
        assert!(text.contains("latency (ms)"));
    }
}
