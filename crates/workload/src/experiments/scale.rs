//! Scale-axis scenario presets: 1k / 4k / 10k-node runs.
//!
//! The paper's emergent-structure results are measured on a hundred
//! nodes; gossip overlays in the HyParView/Plumtree lineage are routinely
//! evaluated at 10k. These presets make that regime runnable here with
//! the same determinism guarantees as the figure experiments, leaning on
//! the scale refactors across the stack:
//!
//! * the **two-level routed topology** ([`TransitStubConfig::scaled`])
//!   keeps the network model O(n) instead of an `n × n` client matrix;
//! * the **calendar event queue** (O(1) amortized, cache-warm slab
//!   storage) replaces the binary heap by default at this scale —
//!   bit-identical dispatch order, ~1.5–1.75× the heap's event rate at
//!   10k (`EGM_EVENT_QUEUE=heap` or [`Scenario::event_queue`] switch
//!   back);
//! * **arena-backed node state** (`egm_core::arena::MsgArena`) replaces
//!   the per-node per-message hash maps with dense generation-stamped
//!   slots — one intern probe per message event;
//! * **log-based traffic accounting** appends 16-byte send records and
//!   aggregates once at the end of the run, with a **spill threshold**
//!   bounding tracked links ([`Scenario::link_spill_threshold`]);
//! * **index-free timer cancellation** keeps the event queue free of
//!   dead request retries (the dominant event class under lazy push);
//! * the **sparse delivery log** stores per-message records, not a
//!   per-(node, message) table;
//! * the **decentralized gossip-sorted ranking**
//!   ([`ScalePreset::rank_source`]) replaces the O(n²) centrality
//!   oracle, and the remaining fixed per-run cost (ranking + view
//!   bootstrap) is paid once per prepared setup
//!   ([`crate::runner::prepare`]) instead of per run.
//!
//! Presets run through [`run_sweep`] like every figure experiment, so
//! multi-seed scale sweeps parallelize across cores with byte-identical
//! results. The `scale_events_per_sec` bench bin (crate `egm-bench`)
//! measures throughput and peak RSS on these presets and records them in
//! `BENCH_events_per_sec.json`.
//!
//! # Memory budget (measured on the 2026-07 calendar-queue/arena
//! refactor, release build, 30 messages, Ranked best=20 %)
//!
//! | preset | nodes  | routed model | peak process RSS |
//! |--------|--------|--------------|------------------|
//! | 1k     | 1 000  | ~0.3 MB      | ~37 MB  |
//! | 4k     | 4 000  | ~0.5 MB      | ~127 MB |
//! | 10k    | 10 000 | ~1 MB        | ~292 MB |
//!
//! Peak RSS is dominated by in-flight simulator events and per-node
//! protocol state, both O(n); nothing is O(n²). For comparison, a dense
//! client latency+hop matrix alone would be ~1.2 GB at 10k nodes, and a
//! dense per-(node, message) delivery table another ~5 MB per message.

use crate::runner::{run_sweep, RunOutcome};
use crate::scenario::{Scenario, TopologySource};
use egm_core::{MonitorSpec, RankSource, StrategySpec};
use egm_topology::TransitStubConfig;

/// A scale-axis preset size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// 1 000 nodes — the CI smoke size.
    N1k,
    /// 4 000 nodes.
    N4k,
    /// 10 000 nodes — the HyParView/Plumtree evaluation regime.
    N10k,
}

impl ScalePreset {
    /// Number of protocol nodes.
    pub fn nodes(&self) -> usize {
        match self {
            ScalePreset::N1k => 1_000,
            ScalePreset::N4k => 4_000,
            ScalePreset::N10k => 10_000,
        }
    }

    /// Display label (`"1k"`, `"4k"`, `"10k"`).
    pub fn label(&self) -> &'static str {
        match self {
            ScalePreset::N1k => "1k",
            ScalePreset::N4k => "4k",
            ScalePreset::N10k => "10k",
        }
    }

    /// Parses a label; `None` for anything unrecognized.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "1k" | "1000" => Some(ScalePreset::N1k),
            "4k" | "4000" => Some(ScalePreset::N4k),
            "10k" | "10000" => Some(ScalePreset::N10k),
            _ => None,
        }
    }

    /// Reads `EGM_SCALE_PRESET` from the environment; unset selects 1k.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: the scale bench doubles as a CI
    /// assertion, and silently falling back to the smallest preset would
    /// make a typoed budget check pass against the wrong workload.
    pub fn from_env() -> Self {
        match std::env::var("EGM_SCALE_PRESET") {
            Err(_) => ScalePreset::N1k,
            Ok(v) => ScalePreset::parse(&v).unwrap_or_else(|| {
                panic!("unrecognized EGM_SCALE_PRESET {v:?}: use 1k, 4k or 10k")
            }),
        }
    }

    /// Link-accounting bound for this size: individually tracked links
    /// are capped at ~256 per node so the per-link map stays tens of MB
    /// at worst instead of growing toward n².
    pub fn link_spill_threshold(&self) -> usize {
        self.nodes() * 256
    }

    /// Measure/shuffle cycles of the decentralized gossip-sorted ranking
    /// the scale presets run ([`RankSource::GossipSorted`]).
    ///
    /// Eight cycles expose each node to ~120 distinct peers (view 15,
    /// three shuffle ticks between measurements), which measured ≥ 0.8
    /// hub-choice overlap with the O(n²) oracle across the 1k–10k presets
    /// (`experiments::rank_quality::run_at_preset`) while staying O(n).
    pub const GOSSIP_ROUNDS: usize = 8;

    /// The ranking the presets use: decentralized gossip-sorted. The
    /// paper's §6.5 noise results predict — and [`rank_quality`]
    /// (`run_at_preset`) confirms at these sizes — that the protocol
    /// tolerates the residual ranking error, so the scale axis no longer
    /// pays the oracle's O(n²) fixed per-run sweep (~0.2–0.3 s at 10k).
    /// Pass [`RankSource::Oracle`] through
    /// [`Scenario::with_rank_source`] to compare against the oracle.
    ///
    /// [`rank_quality`]: crate::experiments::rank_quality
    pub fn rank_source(&self) -> RankSource {
        RankSource::GossipSorted {
            rounds: Self::GOSSIP_ROUNDS,
        }
    }

    /// The rank-source comparison triple measured by both
    /// `rank_quality::run_at_preset` and the `rank_events_per_sec` bench
    /// bin (one definition, so the experiment table and the bench record
    /// always describe the same A/B): the oracle reference, a sampled
    /// baseline calibrating the overlap scale, and the gossip-sorted
    /// source the preset actually ships with. Oracle first — the other
    /// sources are scored against it.
    pub fn rank_ab_sources(&self) -> [RankSource; 3] {
        [
            RankSource::Oracle,
            RankSource::Sampled {
                samples_per_node: 32,
            },
            self.rank_source(),
        ]
    }

    /// The scenario this preset runs: a scaled transit–stub topology
    /// (100-router transit core, stub capacity ≥ n), the paper's §5.2
    /// protocol parameters, and the Ranked best=20 % strategy with the
    /// decentralized gossip-sorted ranking
    /// ([`ScalePreset::rank_source`]) over the latency-oracle monitor —
    /// the configuration whose emergent structure the paper studies,
    /// pushed along the scale axis without any O(n²) global sweep.
    pub fn scenario(&self, messages: usize, seed: u64) -> Scenario {
        let n = self.nodes();
        let mut s = Scenario::paper_default();
        s.topology = TopologySource::TransitStub(TransitStubConfig::scaled(n));
        s.strategy = StrategySpec::Ranked { best_fraction: 0.2 };
        s.monitor = MonitorSpec::OracleLatency;
        s.messages = messages;
        // Denser injection than the paper's 500 ms keeps wall time and
        // event-queue depth reasonable as n grows.
        s.mean_interval_ms = 250.0;
        s.link_spill_threshold = Some(self.link_spill_threshold());
        s.rank_source = self.rank_source();
        s.seed = seed;
        s
    }
}

/// Runs scale presets through the parallel sweep runner, one run per
/// (preset, seed) pair in input order — the scale twin of the figure
/// sweeps.
///
/// # Panics
///
/// Panics if `messages == 0` (scenario invariant).
pub fn run_presets(presets: &[(ScalePreset, u64)], messages: usize) -> Vec<RunOutcome> {
    let scenarios = presets
        .iter()
        .map(|&(preset, seed)| preset.scenario(messages, seed))
        .collect();
    run_sweep(scenarios, None)
}

#[cfg(test)]
mod tests {
    use super::ScalePreset;

    #[test]
    fn preset_sizes_and_labels() {
        assert_eq!(ScalePreset::N1k.nodes(), 1_000);
        assert_eq!(ScalePreset::N4k.nodes(), 4_000);
        assert_eq!(ScalePreset::N10k.nodes(), 10_000);
        assert_eq!(ScalePreset::parse("10k"), Some(ScalePreset::N10k));
        assert_eq!(ScalePreset::parse("4000"), Some(ScalePreset::N4k));
        assert_eq!(ScalePreset::parse("huge"), None);
    }

    #[test]
    fn scenarios_are_consistent() {
        for preset in [ScalePreset::N1k, ScalePreset::N4k, ScalePreset::N10k] {
            let s = preset.scenario(10, 7);
            assert_eq!(s.node_count(), preset.nodes());
            assert_eq!(s.messages, 10);
            assert_eq!(s.seed, 7);
            assert_eq!(
                s.link_spill_threshold,
                Some(preset.link_spill_threshold()),
                "scale runs must bound link accounting"
            );
            assert_eq!(
                s.rank_source,
                preset.rank_source(),
                "scale runs must rank without the O(n²) oracle"
            );
            assert!(!s.rank_source.is_oracle());
        }
    }

    #[test]
    fn scale_models_never_materialize_client_matrices() {
        // Building the 10k model is cheap (O(routers)); the memory-shape
        // assertion is the acceptance guard for the scale axis.
        let s = ScalePreset::N10k.scenario(1, 1);
        let model = s.build_model();
        assert_eq!(model.client_count(), 10_000);
        let shape = model.memory_shape();
        assert_eq!(shape.dense_cells, 0, "no n×n client matrix at 10k");
        assert!(
            shape.core_cells + shape.domain_cells < 1_000_000,
            "router tables stay small: {shape:?}"
        );
        assert_eq!(shape.client_entries, 10_000);
    }
}
