//! Scale-axis scenario presets: 1k / 4k / 10k / 100k / 1M-node runs.
//!
//! The paper's emergent-structure results are measured on a hundred
//! nodes; gossip overlays in the HyParView/Plumtree lineage are routinely
//! evaluated at 10k. These presets make that regime runnable here with
//! the same determinism guarantees as the figure experiments, leaning on
//! the scale refactors across the stack:
//!
//! * the **two-level routed topology** ([`TransitStubConfig::scaled`])
//!   keeps the network model O(n) instead of an `n × n` client matrix;
//! * the **calendar event queue** (O(1) amortized, cache-warm slab
//!   storage) replaces the binary heap by default at this scale —
//!   bit-identical dispatch order, ~1.5–1.75× the heap's event rate at
//!   10k (`EGM_EVENT_QUEUE=heap` or [`Scenario::event_queue`] switch
//!   back);
//! * **arena-backed node state** (`egm_core::arena::MsgArena`) replaces
//!   the per-node per-message hash maps with dense generation-stamped
//!   slots — one intern probe per message event;
//! * **log-based traffic accounting** appends 16-byte send records and
//!   aggregates once at the end of the run, with a **spill threshold**
//!   bounding tracked links ([`Scenario::link_spill_threshold`]);
//! * **index-free timer cancellation** keeps the event queue free of
//!   dead request retries (the dominant event class under lazy push);
//! * the **sparse delivery log** stores per-message records, not a
//!   per-(node, message) table;
//! * the **decentralized gossip-sorted ranking**
//!   ([`ScalePreset::rank_source`]) replaces the O(n²) centrality
//!   oracle, and the remaining fixed per-run cost (ranking + view
//!   bootstrap) is paid once per prepared setup
//!   ([`crate::runner::prepare`]) instead of per run;
//! * **horizon-based message retirement**
//!   ([`egm_core::ProtocolConfig::retire_after`], on for every preset)
//!   frees delivered arena slots once no protocol event can reference
//!   them, so steady-state RSS plateaus at the in-flight window instead
//!   of growing with total messages sent;
//! * the **sparse→dense seen-set hybrid** in the delivery log costs
//!   O(actual deliveries) per message, never the n/8-byte bitmap up
//!   front (125 KB per in-flight message at 1M);
//! * the ≥100k presets **stream sealed traffic tallies to disk**
//!   ([`Scenario::traffic_spool`]), bounding link accounting to the live
//!   compaction window in RAM.
//!
//! Presets run through [`run_sweep`] like every figure experiment, so
//! multi-seed scale sweeps parallelize across cores with byte-identical
//! results. The `scale_events_per_sec` bench bin (crate `egm-bench`)
//! measures throughput and peak RSS on these presets and records them in
//! `BENCH_events_per_sec.json`.
//!
//! # Memory budget (measured on the 2026-07 calendar-queue/arena
//! refactor, release build, 30 messages, Ranked best=20 %)
//!
//! | preset | nodes     | routed model | peak process RSS |
//! |--------|-----------|--------------|------------------|
//! | 1k     | 1 000     | ~0.3 MB      | ~37 MB  |
//! | 4k     | 4 000     | ~0.5 MB      | ~127 MB |
//! | 10k    | 10 000    | ~1 MB        | ~292 MB |
//! | 100k   | 100 000   | ~10 MB       | see [`ScalePreset::rss_budget_mb`] |
//! | 1m     | 1 000 000 | ~100 MB      | see [`ScalePreset::rss_budget_mb`] |
//!
//! Peak RSS is dominated by in-flight simulator events and per-node
//! protocol state, both O(n); nothing is O(n²). For comparison, a dense
//! client latency+hop matrix alone would be ~1.2 GB at 10k nodes, and a
//! dense per-(node, message) delivery table another ~5 MB per message.
//! With retirement on, total messages sent no longer contributes to peak
//! RSS — the `scale_events_per_sec` bench's plateau mode
//! (`EGM_SCALE_PLATEAU_MAX`) asserts it.

use crate::runner::{run_sweep, RunOutcome};
use crate::scenario::{Scenario, TopologySource};
use egm_core::{MonitorSpec, RankSource, StrategySpec};
use egm_simnet::SimDuration;
use egm_topology::TransitStubConfig;

/// A scale-axis preset size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// 1 000 nodes — the CI smoke size.
    N1k,
    /// 4 000 nodes.
    N4k,
    /// 10 000 nodes — the HyParView/Plumtree evaluation regime.
    N10k,
    /// 100 000 nodes — the nightly decade jump; needs retirement and the
    /// traffic spool to stay inside its RSS budget.
    N100k,
    /// 1 000 000 nodes — opt-in only (`EGM_SCALE_PRESET=1m` plus the
    /// nightly dispatch gate); hours of wall time on one core.
    N1M,
}

impl ScalePreset {
    /// Every preset, smallest first (the order error messages list them
    /// in).
    pub const ALL: [ScalePreset; 5] = [
        ScalePreset::N1k,
        ScalePreset::N4k,
        ScalePreset::N10k,
        ScalePreset::N100k,
        ScalePreset::N1M,
    ];

    /// Number of protocol nodes.
    pub fn nodes(&self) -> usize {
        match self {
            ScalePreset::N1k => 1_000,
            ScalePreset::N4k => 4_000,
            ScalePreset::N10k => 10_000,
            ScalePreset::N100k => 100_000,
            ScalePreset::N1M => 1_000_000,
        }
    }

    /// Display label (`"1k"`, `"4k"`, `"10k"`, `"100k"`, `"1m"`).
    pub fn label(&self) -> &'static str {
        match self {
            ScalePreset::N1k => "1k",
            ScalePreset::N4k => "4k",
            ScalePreset::N10k => "10k",
            ScalePreset::N100k => "100k",
            ScalePreset::N1M => "1m",
        }
    }

    /// Parses a label, case-insensitively; `None` for anything
    /// unrecognized. Each preset answers to its short label (`"100k"`,
    /// `"1m"`) and its plain node count (`"100000"`, `"1000000"`).
    pub fn parse(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "1k" | "1000" => Some(ScalePreset::N1k),
            "4k" | "4000" => Some(ScalePreset::N4k),
            "10k" | "10000" => Some(ScalePreset::N10k),
            "100k" | "100000" => Some(ScalePreset::N100k),
            "1m" | "1000k" | "1000000" => Some(ScalePreset::N1M),
            _ => None,
        }
    }

    /// Reads `EGM_SCALE_PRESET` from the environment; unset selects 1k.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value, listing the valid labels: the
    /// scale bench doubles as a CI assertion, and silently falling back
    /// to the smallest preset would make a typoed budget check pass
    /// against the wrong workload.
    pub fn from_env() -> Self {
        match std::env::var("EGM_SCALE_PRESET") {
            Err(_) => ScalePreset::N1k,
            Ok(v) => ScalePreset::parse(&v).unwrap_or_else(|| {
                let valid: Vec<&str> = Self::ALL.iter().map(|p| p.label()).collect();
                panic!(
                    "unrecognized EGM_SCALE_PRESET {v:?}: valid presets are {}",
                    valid.join(", ")
                )
            }),
        }
    }

    /// Peak-RSS budget for this preset in MB, the default the
    /// `scale_events_per_sec` bench asserts against
    /// (`EGM_SCALE_RSS_BUDGET_MB` overrides). Budgets leave ~2–4×
    /// headroom over the measured plateau so allocator noise never flakes
    /// CI, while still catching any return of an O(n²) or
    /// O(total-messages) term.
    pub fn rss_budget_mb(&self) -> u64 {
        match self {
            ScalePreset::N1k => 128,
            ScalePreset::N4k => 320,
            ScalePreset::N10k => 512,
            // The issue's acceptance bound: ≤ ~10× the 10k preset.
            ScalePreset::N100k => 2_900,
            ScalePreset::N1M => 30_000,
        }
    }

    /// Link-accounting bound for this size: individually tracked links
    /// are capped at ~256 per node so the per-link map stays tens of MB
    /// at worst instead of growing toward n².
    pub fn link_spill_threshold(&self) -> usize {
        self.nodes() * 256
    }

    /// Measure/shuffle cycles of the decentralized gossip-sorted ranking
    /// the scale presets run ([`RankSource::GossipSorted`]).
    ///
    /// Eight cycles expose each node to ~120 distinct peers (view 15,
    /// three shuffle ticks between measurements), which measured ≥ 0.8
    /// hub-choice overlap with the O(n²) oracle across the 1k–10k presets
    /// (`experiments::rank_quality::run_at_preset`) while staying O(n).
    pub const GOSSIP_ROUNDS: usize = 8;

    /// The ranking the presets use: decentralized gossip-sorted. The
    /// paper's §6.5 noise results predict — and [`rank_quality`]
    /// (`run_at_preset`) confirms at these sizes — that the protocol
    /// tolerates the residual ranking error, so the scale axis no longer
    /// pays the oracle's O(n²) fixed per-run sweep (~0.2–0.3 s at 10k).
    /// Pass [`RankSource::Oracle`] through
    /// [`Scenario::with_rank_source`] to compare against the oracle.
    ///
    /// [`rank_quality`]: crate::experiments::rank_quality
    pub fn rank_source(&self) -> RankSource {
        RankSource::GossipSorted {
            rounds: Self::GOSSIP_ROUNDS,
        }
    }

    /// The rank-source comparison triple measured by both
    /// `rank_quality::run_at_preset` and the `rank_events_per_sec` bench
    /// bin (one definition, so the experiment table and the bench record
    /// always describe the same A/B): the oracle reference, a sampled
    /// baseline calibrating the overlap scale, and the gossip-sorted
    /// source the preset actually ships with. Oracle first — the other
    /// sources are scored against it.
    pub fn rank_ab_sources(&self) -> [RankSource; 3] {
        [
            RankSource::Oracle,
            RankSource::Sampled {
                samples_per_node: 32,
            },
            self.rank_source(),
        ]
    }

    /// Retirement horizon the presets run with: 10 s of simulated time
    /// after delivery. At zero loss the worst-case quiesce (gossip depth
    /// × (link delay + retry interval)) is well under 6 s at every preset
    /// size, so no live protocol event ever touches a retired slot — the
    /// `retire_determinism` suite asserts byte-identity against
    /// retirement-off runs.
    pub fn retire_horizon() -> SimDuration {
        SimDuration::from_ms(10_000.0)
    }

    /// Whether this preset streams sealed traffic tallies to a disk
    /// spool (the ≥100k sizes; below that the in-memory fold is already
    /// small).
    pub fn spools_traffic(&self) -> bool {
        self.nodes() >= 100_000
    }

    /// The scenario this preset runs: a scaled transit–stub topology
    /// (100-router transit core, stub capacity ≥ n), the paper's §5.2
    /// protocol parameters, and the Ranked best=20 % strategy with the
    /// decentralized gossip-sorted ranking
    /// ([`ScalePreset::rank_source`]) over the latency-oracle monitor —
    /// the configuration whose emergent structure the paper studies,
    /// pushed along the scale axis without any O(n²) global sweep.
    /// Message retirement is on ([`ScalePreset::retire_horizon`]) so the
    /// working set plateaus; the ≥100k sizes additionally spool sealed
    /// traffic to disk.
    pub fn scenario(&self, messages: usize, seed: u64) -> Scenario {
        let n = self.nodes();
        let mut s = Scenario::paper_default();
        s.topology = TopologySource::TransitStub(TransitStubConfig::scaled(n));
        s.strategy = StrategySpec::Ranked { best_fraction: 0.2 };
        s.monitor = MonitorSpec::OracleLatency;
        s.messages = messages;
        // Denser injection than the paper's 500 ms keeps wall time and
        // event-queue depth reasonable as n grows.
        s.mean_interval_ms = 250.0;
        s.link_spill_threshold = Some(self.link_spill_threshold());
        s.rank_source = self.rank_source();
        s.protocol.retire_after = Some(Self::retire_horizon());
        s.traffic_spool = self.spools_traffic();
        s.seed = seed;
        s
    }
}

/// Runs scale presets through the parallel sweep runner, one run per
/// (preset, seed) pair in input order — the scale twin of the figure
/// sweeps.
///
/// # Panics
///
/// Panics if `messages == 0` (scenario invariant).
pub fn run_presets(presets: &[(ScalePreset, u64)], messages: usize) -> Vec<RunOutcome> {
    let scenarios = presets
        .iter()
        .map(|&(preset, seed)| preset.scenario(messages, seed))
        .collect();
    run_sweep(scenarios, None)
}

#[cfg(test)]
mod tests {
    use super::ScalePreset;

    #[test]
    fn preset_sizes_and_labels() {
        assert_eq!(ScalePreset::N1k.nodes(), 1_000);
        assert_eq!(ScalePreset::N4k.nodes(), 4_000);
        assert_eq!(ScalePreset::N10k.nodes(), 10_000);
        assert_eq!(ScalePreset::N100k.nodes(), 100_000);
        assert_eq!(ScalePreset::N1M.nodes(), 1_000_000);
        assert_eq!(ScalePreset::parse("10k"), Some(ScalePreset::N10k));
        assert_eq!(ScalePreset::parse("4000"), Some(ScalePreset::N4k));
        assert_eq!(ScalePreset::parse("huge"), None);
        // Labels round-trip through parse for every preset.
        for preset in ScalePreset::ALL {
            assert_eq!(ScalePreset::parse(preset.label()), Some(preset));
            assert_eq!(
                ScalePreset::parse(&preset.nodes().to_string()),
                Some(preset)
            );
        }
    }

    #[test]
    fn parse_accepts_decade_spellings() {
        for spelling in ["100k", "100K", "100000"] {
            assert_eq!(ScalePreset::parse(spelling), Some(ScalePreset::N100k));
        }
        for spelling in ["1m", "1M", "1000k", "1000000"] {
            assert_eq!(ScalePreset::parse(spelling), Some(ScalePreset::N1M));
        }
        assert_eq!(ScalePreset::parse("1mm"), None);
        assert_eq!(ScalePreset::parse(""), None);
    }

    #[test]
    fn scenarios_are_consistent() {
        for preset in ScalePreset::ALL {
            let s = preset.scenario(10, 7);
            assert_eq!(s.node_count(), preset.nodes());
            assert_eq!(s.messages, 10);
            assert_eq!(s.seed, 7);
            assert_eq!(
                s.link_spill_threshold,
                Some(preset.link_spill_threshold()),
                "scale runs must bound link accounting"
            );
            assert_eq!(
                s.rank_source,
                preset.rank_source(),
                "scale runs must rank without the O(n²) oracle"
            );
            assert!(!s.rank_source.is_oracle());
            assert_eq!(
                s.protocol.retire_after,
                Some(ScalePreset::retire_horizon()),
                "scale runs must bound steady-state memory"
            );
            assert_eq!(s.traffic_spool, preset.spools_traffic());
            // The horizon comfortably covers the retry interval (the
            // config validator's floor) and the worst-case quiesce.
            s.protocol.validate();
        }
        assert!(!ScalePreset::N10k.spools_traffic());
        assert!(ScalePreset::N100k.spools_traffic());
        assert!(ScalePreset::N1M.spools_traffic());
    }

    #[test]
    fn rss_budgets_grow_with_size() {
        let budgets: Vec<u64> = ScalePreset::ALL.iter().map(|p| p.rss_budget_mb()).collect();
        for pair in budgets.windows(2) {
            assert!(pair[0] < pair[1], "budgets must be monotone: {budgets:?}");
        }
        // The issue's acceptance bound: 100k within ~10× the 10k preset's
        // measured ~290 MB.
        assert!(ScalePreset::N100k.rss_budget_mb() <= 2_900);
    }

    #[test]
    fn scale_models_never_materialize_client_matrices() {
        // Building the 10k model is cheap (O(routers)); the memory-shape
        // assertion is the acceptance guard for the scale axis.
        let s = ScalePreset::N10k.scenario(1, 1);
        let model = s.build_model();
        assert_eq!(model.client_count(), 10_000);
        let shape = model.memory_shape();
        assert_eq!(shape.dense_cells, 0, "no n×n client matrix at 10k");
        assert!(
            shape.core_cells + shape.domain_cells < 1_000_000,
            "router tables stay small: {shape:?}"
        );
        assert_eq!(shape.client_entries, 10_000);
    }
}
