//! Fig. 5(b): reliability under massive node failure.
//!
//! The paper silences 0–80 % of nodes after warm-up and measures the mean
//! percentage of (live) nodes delivering each message, for three
//! configurations: pure eager push with random victims, Ranked with
//! random victims, and Ranked with the *best-ranked* victims — precisely
//! the nodes carrying most payload. The result: no noticeable reliability
//! impact until the overlay itself disintegrates (≈80 %+), even when the
//! emergent hubs are the ones killed.

use super::Scale;
use crate::faults::{FaultPlan, FaultSelection};
use egm_core::StrategySpec;
use egm_metrics::{table, RunReport, Table};

/// Failure fractions swept (the paper plots 0–80 %).
pub const FAIL_FRACTIONS: [f64; 5] = [0.0, 0.2, 0.4, 0.6, 0.8];

/// One reliability measurement.
#[derive(Debug, Clone)]
pub struct ReliabilityPoint {
    /// Series name.
    pub series: &'static str,
    /// Fraction of nodes killed.
    pub dead_fraction: f64,
    /// Mean deliveries among live nodes, in `[0, 1]`.
    pub mean_deliveries: f64,
    /// The full report.
    pub report: RunReport,
}

/// Sweeps the three Fig. 5(b) series.
pub fn run(scale: &Scale) -> Vec<ReliabilityPoint> {
    let model = super::shared_model(scale);
    let configs: [(&'static str, StrategySpec, FaultSelection); 3] = [
        (
            "flat/random",
            StrategySpec::Flat { pi: 1.0 },
            FaultSelection::Random,
        ),
        (
            "ranked/random",
            StrategySpec::Ranked { best_fraction: 0.2 },
            FaultSelection::Random,
        ),
        (
            "ranked/ranked",
            StrategySpec::Ranked { best_fraction: 0.2 },
            FaultSelection::BestRanked,
        ),
    ];
    let mut meta: Vec<(&'static str, f64)> = Vec::new();
    let mut scenarios = Vec::new();
    for (series, strategy, selection) in configs {
        for frac in FAIL_FRACTIONS {
            let faults = (frac > 0.0).then(|| FaultPlan::new(frac, selection));
            meta.push((series, frac));
            scenarios.push(
                super::base_scenario(scale)
                    .with_strategy(strategy.clone())
                    .with_faults(faults),
            );
        }
    }
    let reports = crate::runner::run_sweep_reports(scenarios, Some(model));
    meta.into_iter()
        .zip(reports)
        .map(|((series, frac), report)| ReliabilityPoint {
            series,
            dead_fraction: frac,
            mean_deliveries: report.mean_delivery_fraction,
            report,
        })
        .collect()
}

/// Renders the figure table.
pub fn render(points: &[ReliabilityPoint]) -> String {
    let mut t = Table::new([
        "series",
        "dead nodes (%)",
        "mean deliveries (%)",
        "atomic (%)",
    ]);
    for p in points {
        t.row([
            p.series.to_string(),
            format!("{:.0}", p.dead_fraction * 100.0),
            table::pct(p.mean_deliveries),
            table::pct(p.report.atomic_delivery_fraction),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::{render, run, Scale};

    #[test]
    fn reliability_is_flat_until_heavy_failures() {
        let scale = Scale {
            nodes: 30,
            messages: 30,
            seed: 13,
        };
        let points = run(&scale);
        assert_eq!(points.len(), 15);
        for p in &points {
            if p.dead_fraction <= 0.4 {
                assert!(
                    p.mean_deliveries > 0.95,
                    "{} at {:.0}% dead delivered {:.1}%",
                    p.series,
                    p.dead_fraction * 100.0,
                    p.mean_deliveries * 100.0
                );
            }
        }
        // Killing the hubs must not be noticeably worse than killing
        // random nodes (the paper's headline resilience claim).
        for frac in [0.2, 0.4] {
            let random = points
                .iter()
                .find(|p| p.series == "ranked/random" && p.dead_fraction == frac)
                .expect("point exists");
            let hubs = points
                .iter()
                .find(|p| p.series == "ranked/ranked" && p.dead_fraction == frac)
                .expect("point exists");
            assert!(
                hubs.mean_deliveries > random.mean_deliveries - 0.05,
                "hub failures collapsed reliability at {frac}"
            );
        }
        let text = render(&points);
        assert!(text.contains("dead nodes"));
    }
}
