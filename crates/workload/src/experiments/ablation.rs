//! Ablation: NeEM-style redundancy suppression.
//!
//! The paper's pseudocode (Fig. 2/3) pushes payload to every sampled
//! target, but the NeEM 0.5 implementation it builds on purges queued
//! transmissions that became redundant — effectively never re-sending a
//! message to a peer that already sent it (or an `IHAVE` for it) to us.
//! This design choice explains why the paper's regular nodes achieve
//! payload contributions near 1.0 under Ranked/Combined: their eager
//! pushes toward hubs are exactly the transmissions suppression removes
//! (the hub always holds the message first).
//!
//! This experiment quantifies the effect by running each strategy with
//! suppression off (pseudocode-faithful, the default everywhere else) and
//! on (NeEM-faithful).

use super::Scale;
use egm_core::{MonitorSpec, StrategySpec};
use egm_metrics::{table, RunReport, Table};

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Strategy label.
    pub strategy: String,
    /// Whether suppression was enabled.
    pub suppression: bool,
    /// The run report.
    pub report: RunReport,
}

/// Runs eager, ranked and combined with suppression off/on.
pub fn run(scale: &Scale) -> Vec<AblationRow> {
    let model = super::shared_model(scale);
    let strategies = [
        StrategySpec::Flat { pi: 1.0 },
        StrategySpec::Ranked { best_fraction: 0.2 },
        StrategySpec::Combined {
            best_fraction: 0.2,
            rho: 20.0,
            u: 2,
            t0_ms: 20.0,
        },
    ];
    let mut meta: Vec<(String, bool)> = Vec::new();
    let mut scenarios = Vec::new();
    for strategy in strategies {
        for suppression in [false, true] {
            let mut scenario = super::base_scenario(scale)
                .with_strategy(strategy.clone())
                .with_monitor(MonitorSpec::OracleLatency);
            scenario.protocol.suppress_known = suppression;
            meta.push((strategy.label(), suppression));
            scenarios.push(scenario);
        }
    }
    let reports = crate::runner::run_sweep_reports(scenarios, Some(model));
    meta.into_iter()
        .zip(reports)
        .map(|((strategy, suppression), report)| AblationRow {
            strategy,
            suppression,
            report,
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut t = Table::new([
        "strategy",
        "suppression",
        "payload/msg",
        "low payload/msg",
        "best payload/msg",
        "latency (ms)",
        "delivered (%)",
    ]);
    for r in rows {
        t.row([
            r.strategy.clone(),
            if r.suppression {
                "on".into()
            } else {
                "off".to_string()
            },
            table::num(r.report.payloads_per_delivery, 2),
            r.report
                .payloads_per_delivery_low
                .map_or("-".into(), |v| table::num(v, 2)),
            r.report
                .payloads_per_delivery_best
                .map_or("-".into(), |v| table::num(v, 2)),
            table::num(r.report.mean_latency_ms(), 0),
            table::pct(r.report.mean_delivery_fraction),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::{render, run, Scale};

    #[test]
    fn suppression_cuts_spoke_cost_without_hurting_delivery() {
        let scale = Scale {
            nodes: 30,
            messages: 40,
            seed: 29,
        };
        let rows = run(&scale);
        assert_eq!(rows.len(), 6);
        // Ranked rows: suppression must reduce the low-node contribution
        // and keep delivery intact.
        let ranked_off = rows
            .iter()
            .find(|r| r.strategy.contains("ranked") && !r.suppression);
        let ranked_on = rows
            .iter()
            .find(|r| r.strategy.contains("ranked") && r.suppression);
        let (off, on) = (ranked_off.expect("row"), ranked_on.expect("row"));
        let low_off = off.report.payloads_per_delivery_low.expect("group");
        let low_on = on.report.payloads_per_delivery_low.expect("group");
        assert!(
            low_on < low_off,
            "suppression must cut spoke cost: {low_on} vs {low_off}"
        );
        assert!(on.report.mean_delivery_fraction > 0.99, "{}", on.report);
        let text = render(&rows);
        assert!(text.contains("suppression"));
    }
}
