//! Extension: resilience under scheduled fault scenarios.
//!
//! The paper's §6.3 kills a random fraction of nodes once, at the end of
//! warm-up. Real deployments fail in structured ways: a whole stub
//! domain drops (access-ISP outage), transit links degrade, crowds of
//! nodes join at once, slow nodes lag. This experiment sweeps the
//! [`FaultScenarioKind`] library against increasing churn rates — with
//! online re-ranking active ([`RerankPlan`]), so hubs re-rank while the
//! faults are live — and records, per (scenario, churn) cell:
//!
//! * **delivery ratio** — mean delivery fraction over eligible nodes;
//! * **hub stability** — overlap between the initial hub set and the
//!   set after the last re-rank tick (how much the ranking churned);
//! * **p99 latency** — steady-state publish→delivery tail.
//!
//! Every cell is deterministic in the seed and byte-identical across
//! shard widths (the `fault_determinism` suite and the
//! `fault_resilience` bench bin pin this).

use super::scale::ScalePreset;
use crate::faults::{ChurnPlan, FaultScenarioKind, RerankPlan};
use egm_core::BestSet;
use egm_metrics::{table, RunReport, Table};
use std::sync::Arc;

/// One (scenario, churn) cell of the resilience grid.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// Fault scenario label.
    pub scenario: String,
    /// Churn level label (`"none"`, `"light"`, `"heavy"`).
    pub churn: String,
    /// Mean delivery fraction over eligible nodes.
    pub delivery: f64,
    /// Overlap between the initial hub set and the final re-ranked set.
    pub hub_stability: f64,
    /// p99 publish→delivery latency (ms) over the steady-state window.
    pub p99_ms: f64,
    /// The cell's full report.
    pub report: RunReport,
}

/// The churn axis: no churn, one transient outage every 2 s, and an
/// overlapping outage every 500 ms (down 3× the period — exactly the
/// regime where the victim re-draw must reject still-down nodes).
pub fn churn_levels() -> [(&'static str, Option<ChurnPlan>); 3] {
    [
        ("none", None),
        ("light", Some(ChurnPlan::new(2_000.0, 1_000.0))),
        ("heavy", Some(ChurnPlan::new(500.0, 1_500.0))),
    ]
}

/// The re-rank cadence every cell runs: two ticks inside the preset's
/// 3 s warm-up, so the second ranking sees the faults that strike at
/// half warm-up ([`FaultScenarioKind::schedule`]).
pub fn rerank_plan() -> RerankPlan {
    RerankPlan::new(1_000.0, 2)
}

/// Runs the full (scenario × churn) grid at a scale preset through the
/// parallel sweep runner, sharing one topology and one prepared setup
/// across all cells. Rows come back scenario-major, churn-minor, in
/// [`FaultScenarioKind::all`] / [`churn_levels`] order.
///
/// # Panics
///
/// Panics if `messages == 0`.
pub fn run_at_preset(preset: ScalePreset, messages: usize, seed: u64) -> Vec<ResilienceRow> {
    let base = preset
        .scenario(messages, seed)
        .with_rerank(Some(rerank_plan()));
    let n = base.node_count();
    let model = Arc::new(base.build_model());
    let traffic_ms = messages as f64 * base.mean_interval_ms + base.drain_ms;

    let mut meta: Vec<(String, String)> = Vec::new();
    let mut scenarios = Vec::new();
    for kind in FaultScenarioKind::all() {
        let schedule = kind.schedule(&model, base.warmup_ms, traffic_ms, seed);
        for (churn_label, churn) in churn_levels() {
            meta.push((kind.label().to_string(), churn_label.to_string()));
            scenarios.push(
                base.clone()
                    .with_fault_schedule(Some(schedule.clone()))
                    .with_churn(churn),
            );
        }
    }
    let outcomes = crate::runner::run_sweep(scenarios, Some(model));

    meta.into_iter()
        .zip(outcomes)
        .map(|((scenario, churn), outcome)| {
            let initial = BestSet::from_ids(n, &outcome.best_ids);
            let hub_stability = match &outcome.reranked_best_ids {
                Some(ids) => BestSet::from_ids(n, ids).overlap(&initial),
                None => 1.0,
            };
            let p99_ms = if outcome.latency.is_empty() {
                0.0
            } else {
                outcome.latency.p99_ms()
            };
            ResilienceRow {
                scenario,
                churn,
                delivery: outcome.report.mean_delivery_fraction,
                hub_stability,
                p99_ms,
                report: outcome.report,
            }
        })
        .collect()
}

/// Renders the grid as a text table.
pub fn render(rows: &[ResilienceRow]) -> String {
    let mut t = Table::new([
        "scenario",
        "churn",
        "delivery (%)",
        "hub stability (%)",
        "p99 (ms)",
    ]);
    for r in rows {
        t.row([
            r.scenario.clone(),
            r.churn.clone(),
            table::pct(r.delivery),
            table::pct(r.hub_stability),
            table::num(r.p99_ms, 0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::{churn_levels, render, run_at_preset, FaultScenarioKind, ScalePreset};

    #[test]
    fn one_k_grid_measures_every_cell() {
        let rows = run_at_preset(ScalePreset::N1k, 2, 11);
        assert_eq!(
            rows.len(),
            FaultScenarioKind::all().len() * churn_levels().len()
        );
        // The baseline, churn-free cell is the reference: near-perfect
        // delivery.
        assert_eq!(rows[0].scenario, "baseline");
        assert_eq!(rows[0].churn, "none");
        assert!(rows[0].delivery > 0.9, "{}", rows[0].report);
        for r in &rows {
            assert!(
                (0.0..=1.0).contains(&r.delivery),
                "{} / {}: delivery {}",
                r.scenario,
                r.churn,
                r.delivery
            );
            assert!(
                (0.0..=1.0).contains(&r.hub_stability),
                "{} / {}: stability {}",
                r.scenario,
                r.churn,
                r.hub_stability
            );
            assert!(r.p99_ms >= 0.0);
            // Faults degrade but never break dissemination: even the
            // harshest cell keeps a majority of nodes covered.
            assert!(
                r.delivery > 0.5,
                "{} / {}: delivery collapsed to {}",
                r.scenario,
                r.churn,
                r.delivery
            );
        }
        let text = render(&rows);
        assert!(text.contains("hub stability"));
        assert!(text.contains("domain outage"));
    }

    #[test]
    fn representative_cell_is_byte_identical_across_shard_widths() {
        use crate::faults::RerankPlan;
        use std::sync::Arc;
        // One harsh cell — domain outage plus heavy churn plus online
        // re-ranking — across the sequential engine and W ∈ {1, 2, 4}.
        let preset = ScalePreset::N1k;
        let base = preset
            .scenario(2, 11)
            .with_rerank(Some(RerankPlan::new(1_000.0, 2)));
        let model = Arc::new(base.build_model());
        let traffic_ms = 2.0 * base.mean_interval_ms + base.drain_ms;
        let schedule =
            FaultScenarioKind::DomainOutage.schedule(&model, base.warmup_ms, traffic_ms, 11);
        let (_, heavy) = churn_levels()[2];
        let cell = base.with_fault_schedule(Some(schedule)).with_churn(heavy);

        let seq =
            crate::runner::run_detailed(&cell.clone().with_shards(Some(0)), Some(model.clone()));
        for w in [1usize, 2, 4] {
            let sharded = crate::runner::run_detailed(
                &cell.clone().with_shards(Some(w)),
                Some(model.clone()),
            );
            assert_eq!(seq.report, sharded.report, "W={w} report diverged");
            assert_eq!(seq.log, sharded.log, "W={w} delivery log diverged");
            assert_eq!(seq.best_ids, sharded.best_ids, "W={w}");
            assert_eq!(
                seq.reranked_best_ids, sharded.reranked_best_ids,
                "W={w} re-ranked hubs diverged"
            );
            assert_eq!(seq.events, sharded.events, "W={w} event counts diverged");
        }
    }
}
