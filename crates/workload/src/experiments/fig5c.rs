//! Fig. 5(c): the hybrid ("combined") strategy.
//!
//! §6.4 combines TTL, Radius and Ranked: eager if a best node is
//! involved, or within radius `2ρ` during the first `u` rounds, or within
//! `ρ` afterwards. The paper's result: regular nodes cut latency from
//! 379 ms to 245 ms while their payload cost only rises from 1.01 to 1.20
//! payload/message, with the 20 % best nodes contributing ≈10.8 — i.e.
//! nearly-eager latency at nearly-lazy cost for the majority.

use super::Scale;
use egm_core::{MonitorSpec, StrategySpec};
use egm_metrics::{table, RunReport, Table};

/// Radii (ms) swept for the combined strategy.
pub const COMBINED_RHO_MS: [f64; 3] = [10.0, 20.0, 35.0];

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct HybridPoint {
    /// Series: "ttl", "combined (all)" or "combined (low)".
    pub series: &'static str,
    /// Swept-parameter label.
    pub label: String,
    /// Payload transmissions (per delivery for "all", per message and
    /// node for the group series).
    pub payloads_per_msg: f64,
    /// Mean latency (ms); for "combined (low)" the latency of the same
    /// run (latency is not split by group).
    pub latency_ms: f64,
    /// The full report.
    pub report: RunReport,
}

/// Sweeps TTL and the combined strategy over one shared model, one
/// parallel [`crate::runner::run_sweep`] batch for all six runs.
pub fn run(scale: &Scale) -> Vec<HybridPoint> {
    let model = super::shared_model(scale);

    let mut jobs: Vec<(&'static str, String, StrategySpec)> = Vec::new();
    for u in [2u32, 3, 4] {
        jobs.push(("ttl", format!("u={u}"), StrategySpec::Ttl { u }));
    }
    for rho in COMBINED_RHO_MS {
        jobs.push((
            "combined (all)",
            format!("rho={rho:.0}ms"),
            StrategySpec::Combined {
                best_fraction: 0.2,
                rho,
                u: 2,
                t0_ms: rho,
            },
        ));
    }
    let scenarios: Vec<_> = jobs
        .iter()
        .map(|(_, _, strategy)| {
            super::base_scenario(scale)
                .with_strategy(strategy.clone())
                .with_monitor(MonitorSpec::OracleLatency)
        })
        .collect();
    let reports = crate::runner::run_sweep_reports(scenarios, Some(model));

    let mut points = Vec::new();
    for ((series, label, _), report) in jobs.into_iter().zip(reports) {
        points.push(HybridPoint {
            series,
            label: label.clone(),
            payloads_per_msg: report.payloads_per_delivery,
            latency_ms: report.mean_latency_ms(),
            report: report.clone(),
        });
        if series == "combined (all)" {
            if let Some(low) = report.payloads_per_delivery_low {
                points.push(HybridPoint {
                    series: "combined (low)",
                    label,
                    payloads_per_msg: low,
                    latency_ms: report.mean_latency_ms(),
                    report,
                });
            }
        }
    }
    points
}

/// Renders the figure table.
pub fn render(points: &[HybridPoint]) -> String {
    let mut t = Table::new([
        "series",
        "config",
        "payload/msg",
        "latency (ms)",
        "best payload/msg",
    ]);
    for p in points {
        let best = p
            .report
            .payloads_per_delivery_best
            .map_or("-".to_string(), |b| table::num(b, 2));
        t.row([
            p.series.to_string(),
            p.label.clone(),
            table::num(p.payloads_per_msg, 2),
            table::num(p.latency_ms, 0),
            best,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::{render, run, Scale};

    #[test]
    fn combined_gives_low_nodes_cheap_latency() {
        let scale = Scale {
            nodes: 30,
            messages: 40,
            seed: 17,
        };
        let points = run(&scale);
        let low: Vec<_> = points
            .iter()
            .filter(|p| p.series == "combined (low)")
            .collect();
        let all: Vec<_> = points
            .iter()
            .filter(|p| p.series == "combined (all)")
            .collect();
        assert_eq!(low.len(), 3);
        for (l, a) in low.iter().zip(&all) {
            // Regular nodes pay much less than the run average, and the
            // best nodes carry several times the regular load (§6.4).
            assert!(l.payloads_per_msg < a.payloads_per_msg);
            let best = a
                .report
                .payloads_per_delivery_best
                .expect("best group present");
            assert!(
                best > 2.0 * l.payloads_per_msg,
                "hubs {best} vs low {}",
                l.payloads_per_msg
            );
        }
        // Growing the radius reduces latency (the paper's 379 → 245 ms
        // trend along the sweep).
        assert!(
            all.last().expect("points").latency_ms < all.first().expect("points").latency_ms,
            "latency must fall as the radius grows"
        );
        let text = render(&points);
        assert!(text.contains("combined"));
    }
}
