//! Calibration of the noise constant `c` (§4.3).
//!
//! The noise transformation `v' = c + (v − c)(1 − o)` requires `c` to be
//! *"set such that the overall probability of `Eager?` returning true is
//! unchanged"*. That probability depends on the strategy **and** the
//! dissemination dynamics (e.g. the round distribution for TTL), so it is
//! measured: a shortened, noise-free run of the same scenario is executed
//! and the fleet-wide fraction of eager `L-Send`s is returned.

use crate::scenario::{NoiseConfig, Scenario};
use egm_topology::RoutedModel;
use std::sync::Arc;

/// Number of messages used by the calibration run.
const CALIBRATION_MESSAGES: usize = 40;

/// The shortened, noise- and fault-free probe run used to measure `c`.
///
/// Exposed so sweeps can batch calibration probes through
/// [`crate::runner::run_sweep`] alongside other runs instead of executing
/// them inline.
pub fn probe_scenario(scenario: &Scenario) -> Scenario {
    let mut probe = scenario.clone();
    probe.noise = None;
    probe.faults = None;
    probe.messages = probe.messages.min(CALIBRATION_MESSAGES);
    probe
}

/// Computes the fleet-wide eager rate from a probe run's outcome.
///
/// # Panics
///
/// Panics if the run performed no `L-Sends` at all (no traffic means
/// nothing to calibrate).
pub fn rate_from_outcome(outcome: &crate::runner::RunOutcome) -> f64 {
    let s = outcome.scheduler;
    let total = s.eager_sends + s.lazy_advertisements;
    assert!(total > 0, "calibration run produced no L-Sends");
    s.eager_sends as f64 / total as f64
}

/// Measures the strategy's overall eager rate `c` for this scenario.
///
/// The calibration run is identical to the scenario except that noise and
/// faults are disabled and the message count is reduced.
///
/// # Panics
///
/// Panics if the calibration run performs no `L-Send`s at all (no traffic
/// means nothing to calibrate).
pub fn eager_rate(scenario: &Scenario, model: Option<Arc<RoutedModel>>) -> f64 {
    let outcome = crate::runner::run_detailed(&probe_scenario(scenario), model);
    rate_from_outcome(&outcome)
}

/// Builds a [`NoiseConfig`] for ratio `o` by calibrating `c` on the given
/// scenario.
pub fn noise_config(scenario: &Scenario, model: Option<Arc<RoutedModel>>, o: f64) -> NoiseConfig {
    NoiseConfig {
        o,
        c: eager_rate(scenario, model),
    }
}

#[cfg(test)]
mod tests {
    use super::{eager_rate, noise_config};
    use crate::scenario::Scenario;
    use egm_core::StrategySpec;

    #[test]
    fn pure_eager_rate_is_one() {
        let c = eager_rate(
            &Scenario::smoke_test().with_strategy(StrategySpec::Flat { pi: 1.0 }),
            None,
        );
        assert_eq!(c, 1.0);
    }

    #[test]
    fn pure_lazy_rate_is_zero() {
        let c = eager_rate(
            &Scenario::smoke_test().with_strategy(StrategySpec::Flat { pi: 0.0 }),
            None,
        );
        assert_eq!(c, 0.0);
    }

    #[test]
    fn flat_rate_matches_pi() {
        let c = eager_rate(
            &Scenario::smoke_test().with_strategy(StrategySpec::Flat { pi: 0.4 }),
            None,
        );
        assert!((c - 0.4).abs() < 0.05, "calibrated c = {c}");
    }

    #[test]
    fn ttl_rate_is_strictly_between_extremes() {
        let c = eager_rate(
            &Scenario::smoke_test().with_strategy(StrategySpec::Ttl { u: 2 }),
            None,
        );
        assert!(c > 0.0 && c < 1.0, "c = {c}");
    }

    #[test]
    fn noise_config_carries_ratio() {
        let nc = noise_config(
            &Scenario::smoke_test().with_strategy(StrategySpec::Flat { pi: 0.5 }),
            None,
            0.3,
        );
        assert_eq!(nc.o, 0.3);
        assert!((nc.c - 0.5).abs() < 0.05);
    }
}
