//! Heavy-traffic arrival processes: the workload axis that drives
//! publishes from a deterministic arrival-process generator instead of
//! the fixed uniform-gap plan in [`crate::traffic`].
//!
//! Two modes:
//!
//! - **Open loop** ([`Arrival::Open`]): the offered rate is fixed by an
//!   [`ArrivalProcess`]; publishes are scheduled up front as simulator
//!   commands regardless of how the protocol keeps up. This is the
//!   heavy-traffic / saturation axis — the generator never backs off.
//! - **Closed loop** ([`Arrival::Closed`]): each publish is gated on the
//!   delivery of the previous message at the next publisher (round-robin
//!   ownership), plus a fixed think time. The offered rate adapts to the
//!   protocol's actual dissemination latency. Implemented node-side by
//!   [`egm_core::PublishChain`]; the runner seeds sequence 0 and lets the
//!   chain self-schedule the rest.
//!
//! Every generator draws from the harness RNG stream at the same call
//! position the uniform planner would, so runs are byte-identical across
//! engines and shard widths, and a scenario with `arrival: None` replays
//! the historical uniform plan bit for bit.
//!
//! Warm-up: each process knows analytically when its offered rate
//! reaches steady state ([`ArrivalProcess::warmup_ms`] — zero for the
//! stationary processes, the ramp length for [`ArrivalProcess::Diurnal`]).
//! [`detect_warmup_ms`] recovers the same knee empirically from a
//! planned schedule, for workloads whose process is not known.

use crate::traffic::PlannedMulticast;
use egm_rng::Rng;
use egm_simnet::{NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A deterministic open-loop arrival-process generator. All rates are
/// per *simulated* second; gaps are drawn from the harness RNG via
/// inverse-CDF sampling, so a process is a pure function of (spec, rng
/// position).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals: exponential gaps with mean
    /// `1000 / rate_per_sec` ms.
    Poisson {
        /// Offered rate in messages per simulated second.
        rate_per_sec: f64,
    },
    /// On/off bursty arrivals: a Poisson process at `rate_per_sec` runs
    /// during `on_ms` windows separated by silent `off_ms` gaps. The
    /// long-run average rate is `rate_per_sec × on / (on + off)`.
    ///
    /// Implemented by *active-time mapping*: arrivals are drawn in
    /// continuous active time and mapped onto the on-windows, so the
    /// number of RNG draws per message is exactly one (same as Poisson)
    /// and never depends on how many off-windows elapse.
    Bursty {
        /// Offered rate during an on-window, messages per second.
        rate_per_sec: f64,
        /// Length of each active window in ms.
        on_ms: f64,
        /// Length of each silent gap in ms.
        off_ms: f64,
    },
    /// Diurnal ramp: a non-homogeneous Poisson process whose rate climbs
    /// linearly from `low_rate` to `high_rate` over `ramp_ms`, then holds
    /// at `high_rate`. Sampled by exact inversion of the cumulative
    /// intensity Λ(t) (quadratic on the ramp, linear after), one
    /// unit-exponential draw per message.
    Diurnal {
        /// Initial offered rate, messages per second (must be > 0).
        low_rate: f64,
        /// Steady-state offered rate, messages per second.
        high_rate: f64,
        /// Ramp length in ms.
        ramp_ms: f64,
    },
}

impl ArrivalProcess {
    /// Milliseconds after traffic start until the offered rate is in
    /// steady state: zero for the stationary processes, the ramp length
    /// for [`ArrivalProcess::Diurnal`].
    pub fn warmup_ms(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { .. } | ArrivalProcess::Bursty { .. } => 0.0,
            ArrivalProcess::Diurnal { ramp_ms, .. } => *ramp_ms,
        }
    }

    /// The long-run offered rate in messages per simulated second.
    pub fn steady_rate_per_sec(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Bursty {
                rate_per_sec,
                on_ms,
                off_ms,
            } => rate_per_sec * on_ms / (on_ms + off_ms),
            ArrivalProcess::Diurnal { high_rate, .. } => *high_rate,
        }
    }

    fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(
                    rate_per_sec.is_finite() && rate_per_sec > 0.0,
                    "Poisson rate must be positive and finite"
                );
            }
            ArrivalProcess::Bursty {
                rate_per_sec,
                on_ms,
                off_ms,
            } => {
                assert!(
                    rate_per_sec.is_finite() && rate_per_sec > 0.0,
                    "burst rate must be positive and finite"
                );
                assert!(on_ms.is_finite() && on_ms > 0.0, "on window must be > 0");
                assert!(off_ms.is_finite() && off_ms >= 0.0, "off gap must be >= 0");
            }
            ArrivalProcess::Diurnal {
                low_rate,
                high_rate,
                ramp_ms,
            } => {
                assert!(
                    low_rate.is_finite() && low_rate > 0.0,
                    "diurnal low rate must be positive and finite"
                );
                assert!(
                    high_rate.is_finite() && high_rate > 0.0,
                    "diurnal high rate must be positive and finite"
                );
                assert!(ramp_ms.is_finite() && ramp_ms >= 0.0, "ramp must be >= 0");
            }
        }
    }

    /// The offset in ms (from traffic start) of the next arrival, given
    /// the generator's accumulated state `acc`:
    ///
    /// - Poisson: `acc` is wall time; one exponential gap is added.
    /// - Bursty: `acc` is *active* time; the return value maps it onto
    ///   the on-windows.
    /// - Diurnal: `acc` is cumulative intensity Λ; the return value is
    ///   the exact inverse Λ⁻¹(acc).
    fn next_offset_ms(&self, acc: &mut f64, rng: &mut Rng) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                *acc += rng.exponential(1000.0 / rate_per_sec);
                *acc
            }
            ArrivalProcess::Bursty {
                rate_per_sec,
                on_ms,
                off_ms,
            } => {
                *acc += rng.exponential(1000.0 / rate_per_sec);
                let cycles = (*acc / on_ms).floor();
                cycles * (on_ms + off_ms) + (*acc - cycles * on_ms)
            }
            ArrivalProcess::Diurnal {
                low_rate,
                high_rate,
                ramp_ms,
            } => {
                // Unit-rate Poisson in Λ space, inverted exactly. Rates
                // in per-ms units.
                *acc += rng.exponential(1.0);
                let lo = low_rate / 1000.0;
                let hi = high_rate / 1000.0;
                let ramp_total = (lo + hi) * ramp_ms / 2.0;
                if ramp_ms == 0.0 || (hi - lo).abs() < f64::EPSILON * hi.max(lo) {
                    // Degenerate ramp: constant rate hi (or lo == hi).
                    return if *acc <= ramp_total {
                        *acc / lo.max(hi)
                    } else {
                        ramp_ms + (*acc - ramp_total) / hi
                    };
                }
                if *acc <= ramp_total {
                    // Solve (hi-lo)/(2·ramp)·t² + lo·t = acc for t ≥ 0.
                    let a = (hi - lo) / ramp_ms;
                    (-lo + (lo * lo + 2.0 * a * *acc).sqrt()) / a
                } else {
                    ramp_ms + (*acc - ramp_total) / hi
                }
            }
        }
    }
}

/// How publishes are driven when a scenario opts into the arrival axis
/// ([`crate::Scenario::arrival`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Open loop at a fixed offered rate: the schedule is planned up
    /// front from the process, exactly like the historical uniform plan
    /// but with process-shaped gaps.
    Open(ArrivalProcess),
    /// Closed loop: the round-robin owner of sequence `s + 1` publishes
    /// `think_ms` after *it* delivers sequence `s`. Requires a
    /// fault-free, churn-free scenario (a silenced publisher would stall
    /// the chain) — the runner asserts this.
    Closed {
        /// Fixed think time between a delivery and the next publish, ms.
        think_ms: f64,
    },
}

/// Plans `messages` open-loop multicasts starting at `start`, rotating
/// round-robin over `senders` with gaps drawn from `process`. The
/// schedule has the same shape as [`crate::traffic::plan`] output —
/// dense sequence numbers, non-decreasing times — so everything
/// downstream (delivery log, traffic accounting) is agnostic to which
/// planner produced it.
///
/// # Panics
///
/// Panics if `senders` is empty or the process parameters are malformed
/// (non-finite or non-positive rates, negative windows).
pub fn plan(
    process: &ArrivalProcess,
    senders: &[NodeId],
    messages: usize,
    start: SimTime,
    rng: &mut Rng,
) -> Vec<PlannedMulticast> {
    assert!(!senders.is_empty(), "need at least one sender");
    process.validate();
    let mut out = Vec::with_capacity(messages);
    let mut acc = 0.0f64;
    for seq in 0..messages {
        let offset = process.next_offset_ms(&mut acc, rng);
        out.push(PlannedMulticast {
            seq: seq as u64,
            source: senders[seq % senders.len()],
            at: start + SimDuration::from_ms(offset),
        });
    }
    out
}

/// Empirically detects the warm-up knee of a planned schedule: the
/// offset in ms (from `start`) of the first `bin_ms` bin whose arrival
/// count reaches 80 % of the steady rate, where the steady rate is the
/// mean count over the last half of the bins. Returns `0.0` for
/// schedules that are flat from the first bin (stationary processes) and
/// the full span when no bin qualifies (monotone ramps that never
/// plateau within the schedule).
///
/// This is a measurement utility — the runner uses the analytic
/// [`ArrivalProcess::warmup_ms`] when the process is known — and it is
/// deterministic: a pure function of the schedule.
pub fn detect_warmup_ms(schedule: &[PlannedMulticast], start: SimTime, bin_ms: f64) -> f64 {
    assert!(bin_ms.is_finite() && bin_ms > 0.0, "bin must be > 0");
    let Some(last) = schedule.last() else {
        return 0.0;
    };
    let span = (last.at - start).as_ms();
    let bins = ((span / bin_ms).ceil() as usize).max(1);
    let mut counts = vec![0u64; bins];
    for p in schedule {
        let idx = (((p.at - start).as_ms() / bin_ms) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let tail = &counts[bins / 2..];
    let steady = tail.iter().sum::<u64>() as f64 / tail.len() as f64;
    for (i, &c) in counts.iter().enumerate() {
        if c as f64 >= 0.8 * steady {
            return i as f64 * bin_ms;
        }
    }
    span
}

/// Steady-state throughput block measured over one run's post-warm-up
/// window (see [`crate::runner::RunOutcome::steady`]). The window spans
/// from traffic start plus the process's analytic warm-up to the end of
/// the run (drain included), so the rates are mild underestimates of the
/// instantaneous steady rate — comparable across runs of one scenario
/// shape, which is what the sustained bench pins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyState {
    /// Window start, absolute sim time in ms.
    pub window_start_ms: f64,
    /// Window end (end of run, drain included), absolute sim time in ms.
    pub window_end_ms: f64,
    /// Messages published within the window.
    pub published: usize,
    /// Deliveries of window-published messages.
    pub delivered: u64,
    /// Window publish throughput, messages per simulated second.
    pub publishes_per_sec: f64,
    /// Window delivery throughput, deliveries per simulated second.
    pub deliveries_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::{detect_warmup_ms, plan, Arrival, ArrivalProcess};
    use egm_rng::Rng;
    use egm_simnet::{NodeId, SimTime};

    fn senders(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn poisson_hits_the_offered_rate() {
        let mut rng = Rng::seed_from_u64(7);
        let p = ArrivalProcess::Poisson { rate_per_sec: 40.0 };
        let s = plan(&p, &senders(3), 20_000, SimTime::ZERO, &mut rng);
        assert_eq!(s.len(), 20_000);
        let span_s = s.last().unwrap().at.as_ms() / 1000.0;
        let rate = 20_000.0 / span_s;
        assert!((rate - 40.0).abs() < 1.0, "measured rate {rate}");
        // Round-robin sources, dense seqs, non-decreasing times.
        let mut last = SimTime::ZERO;
        for (i, p) in s.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
            assert_eq!(p.source, NodeId(i % 3));
            assert!(p.at >= last);
            last = p.at;
        }
    }

    #[test]
    fn bursty_arrivals_only_land_in_on_windows() {
        let mut rng = Rng::seed_from_u64(8);
        let p = ArrivalProcess::Bursty {
            rate_per_sec: 200.0,
            on_ms: 100.0,
            off_ms: 400.0,
        };
        let s = plan(&p, &senders(2), 5_000, SimTime::ZERO, &mut rng);
        for m in &s {
            let phase = m.at.as_ms() % 500.0;
            assert!(
                phase <= 100.0 + 1e-9,
                "arrival at {} ms in off window",
                m.at.as_ms()
            );
        }
        // Long-run rate = 200 × 100/500 = 40/s.
        let span_s = s.last().unwrap().at.as_ms() / 1000.0;
        let rate = 5_000.0 / span_s;
        assert!((rate - 40.0).abs() < 2.0, "measured long-run rate {rate}");
    }

    #[test]
    fn diurnal_ramps_from_low_to_high() {
        let mut rng = Rng::seed_from_u64(9);
        let p = ArrivalProcess::Diurnal {
            low_rate: 5.0,
            high_rate: 100.0,
            ramp_ms: 10_000.0,
        };
        let s = plan(&p, &senders(4), 30_000, SimTime::ZERO, &mut rng);
        let count_in = |lo: f64, hi: f64| {
            s.iter()
                .filter(|m| m.at.as_ms() >= lo && m.at.as_ms() < hi)
                .count() as f64
        };
        // First second ≈ low rate (the ramp barely moves), a post-ramp
        // second ≈ high rate.
        let early = count_in(0.0, 1000.0);
        let late = count_in(15_000.0, 16_000.0);
        assert!(early < 20.0, "early rate {early}/s");
        assert!((late - 100.0).abs() < 25.0, "late rate {late}/s");
        assert_eq!(p.warmup_ms(), 10_000.0);
    }

    #[test]
    fn generators_are_deterministic() {
        for p in [
            ArrivalProcess::Poisson { rate_per_sec: 25.0 },
            ArrivalProcess::Bursty {
                rate_per_sec: 80.0,
                on_ms: 50.0,
                off_ms: 150.0,
            },
            ArrivalProcess::Diurnal {
                low_rate: 2.0,
                high_rate: 60.0,
                ramp_ms: 4_000.0,
            },
        ] {
            let mut a = Rng::seed_from_u64(11);
            let mut b = Rng::seed_from_u64(11);
            let sa = plan(&p, &senders(5), 500, SimTime::from_ms(100.0), &mut a);
            let sb = plan(&p, &senders(5), 500, SimTime::from_ms(100.0), &mut b);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn detect_warmup_finds_the_diurnal_knee() {
        let mut rng = Rng::seed_from_u64(12);
        let p = ArrivalProcess::Diurnal {
            low_rate: 10.0,
            high_rate: 100.0,
            ramp_ms: 20_000.0,
        };
        let s = plan(&p, &senders(2), 40_000, SimTime::ZERO, &mut rng);
        let detected = detect_warmup_ms(&s, SimTime::ZERO, 1000.0);
        // The 80 %-of-steady threshold is crossed at
        // (0.8·hi − lo)/(hi − lo) ≈ 0.78 of the ramp.
        assert!(
            detected > 0.4 * 20_000.0 && detected < 1.1 * 20_000.0,
            "detected warm-up {detected} ms for a 20 s ramp"
        );
    }

    #[test]
    fn detect_warmup_is_zero_for_stationary_processes() {
        let mut rng = Rng::seed_from_u64(13);
        let p = ArrivalProcess::Poisson { rate_per_sec: 50.0 };
        let s = plan(&p, &senders(2), 10_000, SimTime::ZERO, &mut rng);
        assert_eq!(detect_warmup_ms(&s, SimTime::ZERO, 1000.0), 0.0);
    }

    #[test]
    fn steady_rate_accounts_for_duty_cycle() {
        let p = ArrivalProcess::Bursty {
            rate_per_sec: 100.0,
            on_ms: 100.0,
            off_ms: 300.0,
        };
        assert_eq!(p.steady_rate_per_sec(), 25.0);
        let open = Arrival::Open(p);
        assert_eq!(open, open.clone());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn malformed_rate_panics() {
        let mut rng = Rng::seed_from_u64(14);
        let p = ArrivalProcess::Poisson { rate_per_sec: 0.0 };
        let _ = plan(&p, &senders(1), 1, SimTime::ZERO, &mut rng);
    }
}
