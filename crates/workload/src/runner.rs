//! Scenario execution: prepare (topology, ranking, views) → warm up →
//! inject faults → multicast → drain → measure.
//!
//! The deterministic *prefix* of a run — building the routed model,
//! ranking the best set, bootstrapping overlay views and positioning the
//! harness RNG — is factored into [`RunSetup`] so repeated or related
//! runs can amortize it: [`prepare`] once, then [`run_prepared`] many
//! times, each byte-identical to a cold [`run_detailed`]. [`run_sweep`]
//! applies the same amortization automatically, sharing one setup across
//! all scenarios whose setup inputs (topology, seed, view config, rank
//! configuration) coincide — at 10 000 nodes this removes ~0.2 s of view
//! construction plus the ranking cost from every run after the first.

use crate::arrival::{self, Arrival, SteadyState};
use crate::faults::{FaultAction, FaultSchedule, RerankPlan};
use crate::scenario::Scenario;
use crate::traffic;
use egm_core::strategy::Noisy;
use egm_core::{BestSet, EgmNode, PublishChain, SchedulerStats};
use egm_membership::PartialView;
use egm_metrics::{link, DeliveryLog, LatencyHistogram, RunReport};
use egm_rng::Rng;
use egm_simnet::{
    NodeId, ProgressEvent, QueueStats, ShardStats, ShardedSim, SharedSink, Sim, SimConfig,
    SimDuration, SimTime, Traffic,
};
use egm_topology::RoutedModel;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Salt XORed into the scenario seed for the rank-source RNG stream.
///
/// Decentralized rank sources draw from this dedicated stream, so they
/// never perturb the harness stream (views, victims, traffic) — which is
/// why oracle-ranked runs are byte-identical whether or not any
/// decentralized source exists in the build.
const RANK_SEED_SALT: u64 = 0x524E_4B53;

/// Virtual-time slice the *observed* sequential engine advances per
/// [`ProgressEvent::Chunk`]. A pure constant (never derived from live
/// state), so chunked execution replays the exact event schedule of one
/// uninterrupted `run_until` — the same argument that makes the re-rank
/// ticks and the closed-loop chunks byte-identical across engines.
const PROGRESS_CHUNK_MS: f64 = 500.0;

/// Everything measured in one run: the summary report plus the raw data
/// the figure harnesses and examples drill into.
#[derive(Debug)]
pub struct RunOutcome {
    /// The aggregated report (one figure point).
    pub report: RunReport,
    /// Full multicast/delivery log.
    pub log: DeliveryLog,
    /// Payload counts per directed link that carried any traffic,
    /// alongside the link endpoints.
    pub payload_links: Vec<((NodeId, NodeId), u64)>,
    /// Payloads sent per node.
    pub payloads_per_node: Vec<u64>,
    /// Nodes silenced by the fault plan.
    pub victims: Vec<NodeId>,
    /// Ids of best nodes (empty when the strategy has none). With online
    /// re-ranking this is the *initial* set; the final set is in
    /// [`RunOutcome::reranked_best_ids`].
    pub best_ids: Vec<NodeId>,
    /// Ids of the best set after the last online re-rank tick (`None`
    /// unless [`Scenario::rerank`] is set). Comparing against
    /// [`RunOutcome::best_ids`] measures hub-overlap stability under
    /// churn.
    pub reranked_best_ids: Option<Vec<NodeId>>,
    /// Aggregated scheduler counters over all nodes.
    pub scheduler: SchedulerStats,
    /// Simulator events processed by the run (perf accounting; stale
    /// cancelled-timer pops are excluded, see [`egm_simnet::Sim`]).
    pub events: u64,
    /// Request timers cancelled before firing (index-free cancellation).
    pub timers_cancelled: u64,
    /// Cancelled timer events dropped at pop time without dispatch.
    pub stale_timer_drops: u64,
    /// Event-queue counters (pushes/pops plus calendar-queue geometry).
    /// Under sharding these aggregate the per-shard queues, so they are
    /// comparable across runs of one width but not across widths
    /// (replicated fault events are queued once per shard).
    pub queue: QueueStats,
    /// Messages retired from the per-node arenas after their horizon
    /// elapsed, summed over all nodes (zero unless the scenario sets
    /// [`egm_core::ProtocolConfig::retire_after`]).
    pub retired_messages: u64,
    /// Largest number of arena slots simultaneously live on any one node
    /// — the steady-state working-set ceiling retirement bounds.
    pub arena_high_water: usize,
    /// Bytes of compacted traffic tallies streamed to the disk spool
    /// (zero unless [`Scenario::traffic_spool`] is set).
    pub traffic_spill_bytes: u64,
    /// Hot-path reallocations of the per-node payload table (pinned to
    /// zero by the scale regression tests — the table is pre-sized).
    pub payload_vec_growths: u32,
    /// Publish→delivery latency histogram over messages published in the
    /// steady-state window (log-bucketed, O(1) memory, ≤ 1/32 relative
    /// error on the percentiles; see [`egm_metrics::LatencyHistogram`]).
    /// With `arrival: None` the window is the whole traffic phase, so
    /// this covers every delivery.
    pub latency: LatencyHistogram,
    /// Steady-state throughput block: post-warm-up window bounds, the
    /// messages published and delivered within it, and the corresponding
    /// rates per simulated second.
    pub steady: SteadyState,
    /// Largest link-accumulator working set the shard-merge path held at
    /// any instant while folding per-shard traffic (zero for sequential
    /// runs and unbounded merges; bounded by the spill threshold
    /// otherwise — the shard-mode spool regression pins this).
    pub traffic_acc_peak: usize,
    /// Sharded-engine counters: worker count, effective partition
    /// strategy, window lookahead (configured and realized), windows
    /// executed, cross-shard lane events/flushes/skips, and per-shard
    /// event counts (the observable partition balance). A sequential run
    /// reports one shard and zero windows.
    pub shard_stats: ShardStats,
    /// The network model the run used.
    pub model: Arc<RoutedModel>,
}

/// The engine one run executes on — the sequential simulator or the
/// deterministic sharded loop, selected by
/// [`SimConfig::shard_choice`] (scenario override, then `EGM_SHARDS`,
/// then the size-based default). Both engines produce byte-identical
/// outputs (`shard_determinism` asserts it), so the choice only affects
/// wall-clock time.
enum Engine {
    Seq(Box<Sim<EgmNode>>),
    Sharded(Box<ShardedSim<EgmNode>>),
}

impl Engine {
    /// Installs the observe-only progress sink where the engine supports
    /// window-boundary reporting (the sharded loop). The sequential
    /// engine has no windows; the runner chunks its `run_until` instead.
    fn set_progress_sink(&mut self, sink: SharedSink) {
        match self {
            Engine::Seq(_) => {}
            Engine::Sharded(s) => s.set_progress_sink(sink),
        }
    }

    fn schedule_command(&mut self, at: SimTime, node: NodeId, value: u64) {
        match self {
            Engine::Seq(s) => s.schedule_command(at, node, value),
            Engine::Sharded(s) => s.schedule_command(at, node, value),
        }
    }

    fn schedule_silence(&mut self, at: SimTime, node: NodeId) {
        match self {
            Engine::Seq(s) => s.schedule_silence(at, node),
            Engine::Sharded(s) => s.schedule_silence(at, node),
        }
    }

    fn schedule_revive(&mut self, at: SimTime, node: NodeId) {
        match self {
            Engine::Seq(s) => s.schedule_revive(at, node),
            Engine::Sharded(s) => s.schedule_revive(at, node),
        }
    }

    fn schedule_degrade(&mut self, at: SimTime, latency_mult: f64, extra_loss: f64) {
        match self {
            Engine::Seq(s) => s.schedule_degrade(at, latency_mult, extra_loss),
            Engine::Sharded(s) => s.schedule_degrade(at, latency_mult, extra_loss),
        }
    }

    fn schedule_slowdown(&mut self, at: SimTime, node: NodeId, delay: SimDuration) {
        match self {
            Engine::Seq(s) => s.schedule_slowdown(at, node, delay),
            Engine::Sharded(s) => s.schedule_slowdown(at, node, delay),
        }
    }

    fn run_until(&mut self, deadline: SimTime) {
        match self {
            Engine::Seq(s) => s.run_until(deadline),
            Engine::Sharded(s) => s.run_until(deadline),
        }
    }

    fn seal_traffic(&mut self) {
        match self {
            Engine::Seq(s) => s.seal_traffic(),
            Engine::Sharded(s) => s.seal_traffic(),
        }
    }

    fn traffic(&self) -> &Traffic {
        match self {
            Engine::Seq(s) => s.traffic(),
            Engine::Sharded(s) => s.traffic(),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Engine::Seq(s) => s.now(),
            Engine::Sharded(s) => s.now(),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            Engine::Seq(s) => s.node_count(),
            Engine::Sharded(s) => s.node_count(),
        }
    }

    fn nodes(&self) -> Box<dyn Iterator<Item = (NodeId, &EgmNode)> + '_> {
        match self {
            Engine::Seq(s) => Box::new(s.nodes()),
            Engine::Sharded(s) => Box::new(s.nodes()),
        }
    }

    fn nodes_mut(&mut self) -> Box<dyn Iterator<Item = (NodeId, &mut EgmNode)> + '_> {
        match self {
            Engine::Seq(s) => Box::new(s.nodes_mut()),
            Engine::Sharded(s) => Box::new(s.nodes_mut()),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Engine::Seq(s) => s.events_processed(),
            Engine::Sharded(s) => s.events_processed(),
        }
    }

    fn timers_cancelled(&self) -> u64 {
        match self {
            Engine::Seq(s) => s.timers_cancelled(),
            Engine::Sharded(s) => s.timers_cancelled(),
        }
    }

    fn stale_timer_drops(&self) -> u64 {
        match self {
            Engine::Seq(s) => s.stale_timer_drops(),
            Engine::Sharded(s) => s.stale_timer_drops(),
        }
    }

    fn queue_stats(&self) -> QueueStats {
        match self {
            Engine::Seq(s) => s.queue_stats(),
            Engine::Sharded(s) => s.queue_stats(),
        }
    }

    fn shard_stats(&self) -> ShardStats {
        match self {
            Engine::Seq(_) => ShardStats {
                shards: 1,
                ..ShardStats::default()
            },
            Engine::Sharded(s) => s.shard_stats(),
        }
    }
}

/// Runs a scenario (see [`Scenario::run`]); `model` overrides topology
/// construction so sweeps can share one network.
pub fn run(scenario: &Scenario, model: Option<Arc<RoutedModel>>) -> RunReport {
    run_detailed(scenario, model).report
}

/// The deterministic pre-run state of a scenario: the routed model, the
/// ranked best set, the bootstrapped overlay views, and the harness RNG
/// positioned exactly where a cold run would leave it after view
/// bootstrap.
///
/// Build one with [`prepare`] and execute with [`run_prepared`]; the
/// outcome is byte-identical to [`run_detailed`] because the setup is a
/// pure function of the scenario's setup inputs and each run works on a
/// clone. This is how the scale benches separate the *fixed per-run
/// cost* (ranking + construction, paid once here) from steady-state
/// event-loop throughput.
#[derive(Debug, Clone)]
pub struct RunSetup {
    model: Arc<RoutedModel>,
    best: Option<Arc<BestSet>>,
    views: Vec<PartialView>,
    rng: Rng,
    /// The sharing key of the scenario this setup was computed from;
    /// [`run_prepared`] asserts it against the scenario it is handed, so
    /// a setup can never silently be replayed under a scenario whose
    /// setup inputs (topology, seed, view config, rank config) drifted.
    key: String,
}

impl RunSetup {
    /// Computes the setup for `scenario`; `model` overrides topology
    /// construction (it must match the scenario's node count).
    ///
    /// # Panics
    ///
    /// Panics if the scenario has fewer than two nodes, a provided model
    /// or best-set override mismatches the node count.
    pub fn for_scenario(scenario: &Scenario, model: Option<Arc<RoutedModel>>) -> RunSetup {
        let n = scenario.node_count();
        assert!(n > 1, "need at least two nodes");
        let model = model.unwrap_or_else(|| Arc::new(scenario.build_model()));
        assert_eq!(model.client_count(), n, "model size must match scenario");

        let best = match &scenario.best_override {
            Some(b) => {
                assert_eq!(b.len(), n, "best-set override must cover all nodes");
                Some(b.clone())
            }
            None => scenario.strategy.best_fraction().map(|fraction| {
                scenario
                    .rank_source
                    .best_set(
                        &model,
                        fraction,
                        &scenario.protocol.view,
                        scenario.seed ^ RANK_SEED_SALT,
                    )
                    .shared()
            }),
        };

        // Harness randomness (views, victims, traffic plan) is forked from
        // the scenario seed, independent of the simulator's own streams —
        // and of the rank source's stream, see `RANK_SEED_SALT`.
        let mut rng = Rng::seed_from_u64(scenario.seed ^ 0xE1A7_BEEF);
        let views = egm_membership::bootstrap_views(n, &scenario.protocol.view, &mut rng);
        RunSetup {
            model,
            best,
            views,
            rng,
            key: Self::key(scenario),
        }
    }

    /// The network model the runs will use.
    pub fn model(&self) -> &Arc<RoutedModel> {
        &self.model
    }

    /// The ranked best set, when the scenario's strategy uses one.
    pub fn best(&self) -> Option<&Arc<BestSet>> {
        self.best.as_ref()
    }

    /// The setup-sharing key: scenarios with equal keys produce
    /// bit-identical setups, so [`run_sweep`] computes the setup once per
    /// distinct key. Distinct `best_override` allocations hash by
    /// identity — equal-but-separate sets merely forgo sharing.
    fn key(scenario: &Scenario) -> String {
        use std::fmt::Write;
        let mut key = String::new();
        write!(
            key,
            "{:?}|{:?}|{}",
            scenario.topology, scenario.protocol.view, scenario.seed
        )
        .expect("write to String");
        match (&scenario.best_override, scenario.strategy.best_fraction()) {
            (Some(b), _) => write!(key, "|override:{:p}", Arc::as_ptr(b)).expect("write"),
            (None, Some(fraction)) => {
                write!(key, "|{:?}:{}", scenario.rank_source, fraction.to_bits()).expect("write")
            }
            (None, None) => key.push_str("|no-best"),
        }
        key
    }
}

/// Computes the deterministic pre-run state of `scenario` (see
/// [`RunSetup`]): topology, ranking, overlay views.
///
/// # Panics
///
/// See [`RunSetup::for_scenario`].
pub fn prepare(scenario: &Scenario, model: Option<Arc<RoutedModel>>) -> RunSetup {
    RunSetup::for_scenario(scenario, model)
}

/// Runs a scenario over a previously [`prepare`]d setup, skipping
/// topology construction, ranking and view bootstrap. Byte-identical to
/// [`run_detailed`] on the same scenario.
///
/// The scenario may differ from the one the setup was prepared from only
/// in fields the setup does not depend on (strategy parameters that keep
/// the same rank configuration, traffic volume, faults, queue choice…);
/// any drift in the setup inputs — topology, seed, view config, rank
/// source — is rejected.
///
/// # Panics
///
/// Panics if `setup` was prepared for a scenario with different setup
/// inputs, or the scenario is inconsistent (zero messages).
pub fn run_prepared(scenario: &Scenario, setup: &RunSetup) -> RunOutcome {
    assert_eq!(
        setup.key,
        RunSetup::key(scenario),
        "setup was prepared for a different scenario configuration"
    );
    run_with_setup(scenario, setup.clone())
}

/// [`run_prepared`] with an observe-only [`egm_simnet::ProgressSink`]
/// attached: the sink receives window plans from the sharded engine,
/// deterministic chunk boundaries from the sequential engine, scheduled
/// fault activations, re-rank ticks, and a final summary. The sink never
/// feeds back into execution, so the outcome is byte-identical to
/// [`run_prepared`] (the `progress_determinism` test asserts it).
///
/// # Panics
///
/// See [`run_prepared`].
pub fn run_prepared_observed(
    scenario: &Scenario,
    setup: &RunSetup,
    sink: SharedSink,
) -> RunOutcome {
    assert_eq!(
        setup.key,
        RunSetup::key(scenario),
        "setup was prepared for a different scenario configuration"
    );
    run_with_setup_observed(scenario, setup.clone(), Some(sink))
}

/// [`run_detailed`] with an observe-only progress sink attached; see
/// [`run_prepared_observed`] for the event stream and the determinism
/// guarantee.
///
/// # Panics
///
/// See [`run_detailed`].
pub fn run_detailed_observed(
    scenario: &Scenario,
    model: Option<Arc<RoutedModel>>,
    sink: SharedSink,
) -> RunOutcome {
    run_with_setup_observed(
        scenario,
        RunSetup::for_scenario(scenario, model),
        Some(sink),
    )
}

/// Runs a batch of independent scenarios across all available cores,
/// returning one [`RunOutcome`] per scenario **in input order**.
///
/// Every scenario forks its entire RNG tree (views, victims, traffic,
/// node and network streams) from its own seed and owns all of its
/// mutable state, so parallel execution is byte-identical to running the
/// scenarios sequentially — the `sweep_determinism` integration test
/// asserts this, report for report and link table for link table. Thread
/// count follows rayon (`RAYON_NUM_THREADS` to cap it).
///
/// `model` is the shared network topology, used by every run (the paper
/// holds the model fixed while sweeping strategy parameters); pass `None`
/// to let each scenario build its own from its seed.
///
/// This is the execution engine behind every figure experiment in
/// [`crate::experiments`] — a figure point sweep (e.g. the Fig. 5 π
/// sweep) fans one scenario per point.
///
/// Scenarios whose setup inputs coincide — same topology source, seed,
/// view configuration and rank configuration — share one [`RunSetup`]:
/// the model, the ranked best set and the bootstrapped views are computed
/// once and cloned per run, so e.g. a strategy-parameter sweep over one
/// seed pays the oracle's O(n²) ranking once instead of per point. The
/// sharing is invisible in the results (the setup is a pure function of
/// those inputs; `sweep_determinism` asserts byte-identity against
/// sequential cold runs).
///
/// # Panics
///
/// Panics if any scenario is inconsistent (see [`run_detailed`]).
pub fn run_sweep(scenarios: Vec<Scenario>, model: Option<Arc<RoutedModel>>) -> Vec<RunOutcome> {
    use rayon::prelude::*;
    let keys: Vec<String> = scenarios.iter().map(RunSetup::key).collect();
    // First occurrence of each distinct setup key, in input order.
    let mut seen: HashSet<&str> = HashSet::new();
    let mut distinct_keys: Vec<String> = Vec::new();
    let mut distinct_scenarios: Vec<Scenario> = Vec::new();
    for (key, scenario) in keys.iter().zip(&scenarios) {
        if seen.insert(key) {
            distinct_keys.push(key.clone());
            distinct_scenarios.push(scenario.clone());
        }
    }
    // Build the distinct setups in parallel (each can carry an O(n²)
    // oracle sweep), then fan the runs out with their shared setup.
    let built: Vec<Arc<RunSetup>> = distinct_scenarios
        .into_par_iter()
        .map(|scenario| Arc::new(RunSetup::for_scenario(&scenario, model.clone())))
        .collect();
    let setups: HashMap<String, Arc<RunSetup>> = distinct_keys.into_iter().zip(built).collect();
    let paired: Vec<(Scenario, Arc<RunSetup>)> = scenarios
        .into_iter()
        .zip(keys)
        .map(|(scenario, key)| {
            let setup = setups.get(&key).expect("setup built for every key").clone();
            (scenario, setup)
        })
        .collect();
    paired
        .into_par_iter()
        .map(|(scenario, setup)| run_with_setup(&scenario, (*setup).clone()))
        .collect()
}

/// [`run_sweep`], keeping only the aggregated reports.
pub fn run_sweep_reports(
    scenarios: Vec<Scenario>,
    model: Option<Arc<RoutedModel>>,
) -> Vec<RunReport> {
    run_sweep(scenarios, model)
        .into_iter()
        .map(|outcome| outcome.report)
        .collect()
}

/// Runs a scenario and returns the full [`RunOutcome`].
///
/// # Panics
///
/// Panics if a provided model's size differs from the scenario's node
/// count, or if the scenario is internally inconsistent (e.g. zero
/// messages).
pub fn run_detailed(scenario: &Scenario, model: Option<Arc<RoutedModel>>) -> RunOutcome {
    run_with_setup(scenario, RunSetup::for_scenario(scenario, model))
}

/// Executes the post-setup phase of a run, consuming the setup.
fn run_with_setup(scenario: &Scenario, setup: RunSetup) -> RunOutcome {
    run_with_setup_observed(scenario, setup, None)
}

/// [`run_with_setup`] with an optional observe-only progress sink. With
/// `None` the execution path is exactly the unobserved one; with a sink
/// the only deltas are (a) the sharded engine reports its window plans
/// and (b) the sequential engine's single `run_until(end)` is advanced
/// in fixed [`PROGRESS_CHUNK_MS`] slices — both proven byte-identical by
/// `progress_determinism`.
fn run_with_setup_observed(
    scenario: &Scenario,
    setup: RunSetup,
    sink: Option<SharedSink>,
) -> RunOutcome {
    let n = scenario.node_count();
    assert!(scenario.messages > 0, "need at least one message");
    let RunSetup {
        model,
        best,
        mut views,
        mut rng,
        key: _,
    } = setup;
    assert_eq!(
        model.client_count(),
        n,
        "setup must match the scenario's node count"
    );

    let best_ids = best.as_ref().map(|b| b.best_ids()).unwrap_or_default();

    // Closed-loop arrival installs a publish chain on every node before
    // the engine is built: the chain is part of node state, and a
    // silenced or churned publisher would stall it, so those axes are
    // mutually exclusive with this mode.
    let chain_think = match scenario.arrival {
        Some(Arrival::Closed { think_ms }) => {
            assert!(
                scenario.faults.is_none()
                    && scenario.churn.is_none()
                    && scenario.fault_schedule.is_none()
                    && scenario.rerank.is_none(),
                "closed-loop arrival requires a fault-free, churn-free scenario"
            );
            assert!(
                think_ms.is_finite() && think_ms >= 0.0,
                "think time must be finite and non-negative"
            );
            Some(SimDuration::from_ms(think_ms))
        }
        _ => None,
    };

    // Build nodes over the bootstrapped overlay.
    if scenario.protocol.shuffle_interval.is_none() {
        for v in &mut views {
            v.set_static(true);
        }
    }
    let nodes: Vec<EgmNode> = views
        .into_iter()
        .enumerate()
        .map(|(i, view)| {
            let mut strategy = scenario.strategy.build(best.clone());
            if let Some(noise) = scenario.noise {
                strategy = Noisy::boxed(strategy, noise.c, noise.o);
            }
            let monitor = scenario.monitor.build(Some(&model));
            let mut node = EgmNode::new(
                NodeId(i),
                scenario.protocol.clone(),
                view,
                strategy,
                monitor,
            );
            if let Some(think) = chain_think {
                node.set_publish_chain(PublishChain {
                    index: i as u64,
                    senders: n as u64,
                    total: scenario.messages as u64,
                    think,
                });
            }
            node
        })
        .collect();

    let mut sim_config = SimConfig::from_model((*model).clone())
        .with_loss(scenario.loss)
        .with_jitter(scenario.jitter);
    if let Some(bw) = scenario.egress_bandwidth {
        sim_config = sim_config.with_egress_bandwidth(bw);
    }
    if let Some(links) = scenario.link_spill_threshold {
        sim_config = sim_config.with_link_spill_threshold(links);
    }
    if scenario.traffic_spool {
        sim_config = sim_config.with_traffic_spool(std::env::temp_dir());
    }
    if let Some(queue) = scenario.event_queue {
        sim_config = sim_config.with_event_queue(queue);
    }
    if let Some(shards) = scenario.shards {
        sim_config = sim_config.with_shards(shards);
    }
    if let Some(partition) = scenario.partition {
        sim_config = sim_config.with_partition(partition);
    }
    // Seed the rate-balanced planner's per-domain event-rate estimate
    // with the workload's actual gossip parameters.
    sim_config =
        sim_config.with_rate_hint(scenario.protocol.fanout, scenario.protocol.view.capacity);
    let choice = sim_config.shard_choice();
    let mut sim = if choice.use_sharded() {
        Engine::Sharded(Box::new(ShardedSim::new(
            sim_config,
            scenario.seed,
            nodes,
            choice.count(),
        )))
    } else {
        Engine::Seq(Box::new(Sim::new(sim_config, scenario.seed, nodes)))
    };
    if let Some(sink) = &sink {
        sim.set_progress_sink(sink.clone());
    }

    // Fault injection at the end of warm-up, immediately before traffic
    // starts (§6.3).
    let warmup_end = SimTime::from_ms(scenario.warmup_ms);
    let victims = match &scenario.faults {
        Some(plan) => plan.choose_victims(n, best.as_deref(), &mut rng),
        None => Vec::new(),
    };
    for &v in &victims {
        sim.schedule_silence(warmup_end, v);
        if let Some(sink) = &sink {
            sink.emit(ProgressEvent::Fault {
                at_ms: scenario.warmup_ms,
                action: format!("warm-up kill {v}"),
            });
        }
    }

    // Explicit fault trace (extension): replayed verbatim, in event
    // order. Draws no harness randomness, so a schedule never perturbs
    // victims, views or the traffic plan.
    if let Some(schedule) = &scenario.fault_schedule {
        schedule.validate(n);
        for ev in &schedule.events {
            let at = SimTime::from_ms(ev.at_ms);
            if let Some(sink) = &sink {
                sink.emit(ProgressEvent::Fault {
                    at_ms: ev.at_ms,
                    action: format!("{:?}", ev.action),
                });
            }
            match ev.action {
                FaultAction::Silence { node } => sim.schedule_silence(at, NodeId(node)),
                FaultAction::Revive { node } => sim.schedule_revive(at, NodeId(node)),
                FaultAction::Degrade {
                    latency_mult,
                    extra_loss,
                } => sim.schedule_degrade(at, latency_mult, extra_loss),
                FaultAction::Slowdown { node, delay_ms } => {
                    sim.schedule_slowdown(at, NodeId(node), SimDuration::from_ms(delay_ms))
                }
            }
        }
    }

    // Traffic: live nodes multicast round-robin (§5.3), driven by the
    // scenario's arrival mode.
    let senders: Vec<NodeId> = (0..n)
        .map(NodeId)
        .filter(|id| !victims.contains(id))
        .collect();
    let mut reranked_best_ids = None;
    if chain_think.is_some() {
        // Closed loop: seed sequence 0 at its round-robin owner; every
        // later publish is self-scheduled by the chain, so the end time
        // is a function of dissemination latency discovered by running.
        sim.schedule_command(warmup_end, NodeId(0), 0);
        run_closed_loop(&mut sim, scenario, warmup_end, sink.as_ref());
    } else {
        let schedule = match &scenario.arrival {
            Some(Arrival::Open(process)) => {
                arrival::plan(process, &senders, scenario.messages, warmup_end, &mut rng)
            }
            _ => traffic::plan(
                &senders,
                scenario.messages,
                warmup_end,
                scenario.mean_interval_ms,
                &mut rng,
            ),
        };
        for p in &schedule {
            sim.schedule_command(p.at, p.source, p.seq);
        }
        let end = schedule.last().expect("non-empty schedule").at
            + SimDuration::from_ms(scenario.drain_ms);

        // Transient churn (extension): periodic silence + revive cycles
        // while traffic flows. Victims are drawn with bounded rejection
        // against permanent victims *and* nodes still down from an
        // earlier overlapping outage (see `ChurnPlan::schedule`), so a
        // churn event never lands as a no-op on a dead node.
        if let Some(churn) = scenario.churn {
            let window = (end - warmup_end).as_ms();
            for ev in churn.schedule(n, window, &victims, &mut rng) {
                let down = warmup_end + SimDuration::from_ms(ev.at_ms);
                sim.schedule_silence(down, ev.node);
                sim.schedule_revive(down + SimDuration::from_ms(churn.down_ms), ev.node);
                if let Some(sink) = &sink {
                    sink.emit(ProgressEvent::Fault {
                        at_ms: down.as_ms(),
                        action: format!("churn {} down for {} ms", ev.node, churn.down_ms),
                    });
                }
            }
        }

        // Online re-ranking (extension): advance warm-up in global
        // barrier ticks, re-ranking the hubs at each one.
        if let Some(plan) = scenario.rerank {
            reranked_best_ids =
                rerank_during_warmup(&mut sim, scenario, &model, plan, warmup_end, sink.as_ref());
        }

        // The sequential engine has no window boundaries to report from,
        // so an observed run advances it in fixed virtual-time chunks —
        // deadlines are multiples of a constant, a pure function of
        // nothing, so the event schedule is exactly that of one
        // uninterrupted `run_until(end)`.
        match &sink {
            Some(sink) if matches!(sim, Engine::Seq(_)) => {
                let mut k = 1u64;
                loop {
                    let deadline = SimTime::from_ms(k as f64 * PROGRESS_CHUNK_MS);
                    if deadline >= end {
                        break;
                    }
                    sim.run_until(deadline);
                    sink.emit(ProgressEvent::Chunk {
                        now_ms: deadline.as_ms(),
                        events: sim.events_processed(),
                    });
                    k += 1;
                }
                sim.run_until(end);
                sink.emit(ProgressEvent::Chunk {
                    now_ms: end.as_ms(),
                    events: sim.events_processed(),
                });
            }
            _ => sim.run_until(end),
        }
    }

    let outcome = collect(scenario, sim, model, victims, best_ids, reranked_best_ids);
    if let Some(sink) = &sink {
        sink.emit(ProgressEvent::Summary {
            events: outcome.events,
            delivery_fraction: outcome.report.mean_delivery_fraction,
            p50_ms: outcome.latency.p50_ms(),
            p99_ms: outcome.latency.p99_ms(),
            p999_ms: outcome.latency.p999_ms(),
        });
    }
    outcome
}

/// Runs the warm-up phase in re-rank ticks: every `plan.period_ms` the
/// engine stops at a global barrier, the best set is recomputed through
/// the scenario's rank source over the *live* population — nodes the
/// fault schedule has down at that instant are excluded — and every
/// node's strategy is rebound to the new set.
///
/// The tick times, the down mask and the per-tick rank seed are pure
/// functions of the scenario (never of live simulator state), so chunked
/// execution stays byte-identical across engines and shard widths — the
/// `fault_determinism` suite pins this. Returns the final set's ids.
///
/// # Panics
///
/// Panics if the strategy carries no best set, or a best-set override is
/// installed (the override pins the ranking, re-ranking would fight it).
fn rerank_during_warmup(
    sim: &mut Engine,
    scenario: &Scenario,
    model: &RoutedModel,
    plan: RerankPlan,
    warmup_end: SimTime,
    sink: Option<&SharedSink>,
) -> Option<Vec<NodeId>> {
    let fraction = scenario
        .strategy
        .best_fraction()
        .expect("online re-ranking requires a strategy with a best set");
    assert!(
        scenario.best_override.is_none(),
        "online re-ranking conflicts with a best-set override"
    );
    let n = scenario.node_count();
    let empty = FaultSchedule::empty();
    let schedule = scenario.fault_schedule.as_ref().unwrap_or(&empty);
    let mut last: Option<Arc<BestSet>> = None;
    for k in 1..=plan.ticks {
        let t_ms = k as f64 * plan.period_ms;
        let tick = SimTime::from_ms(t_ms);
        if tick > warmup_end {
            break;
        }
        sim.run_until(tick);
        let down = schedule.down_at(t_ms, n);
        // Each tick re-ranks on its own salted seed, so consecutive
        // decentralized rankings are independent measurements instead
        // of replays of the first.
        let tick_seed =
            scenario.seed ^ RANK_SEED_SALT ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let best = scenario
            .rank_source
            .best_set_excluding(model, fraction, &scenario.protocol.view, tick_seed, &down)
            .shared();
        for (_, node) in sim.nodes_mut() {
            node.rebind_best(best.clone());
        }
        if let Some(sink) = sink {
            sink.emit(ProgressEvent::Rerank {
                tick: k,
                at_ms: t_ms,
                best: best.best_ids().len(),
            });
        }
        last = Some(best);
    }
    last.map(|b| b.best_ids())
}

/// Runs a closed-loop scenario to completion: the deadline is unknown up
/// front (each publish waits on the previous delivery), so the engine
/// advances in fixed chunks until every message has been multicast —
/// with a stall guard, since a break in the chain would otherwise spin
/// forever — then drains from the last multicast.
///
/// The chunk deadlines are a pure function of the scenario, so chunked
/// execution stays byte-identical across engines and shard widths.
fn run_closed_loop(
    sim: &mut Engine,
    scenario: &Scenario,
    start: SimTime,
    sink: Option<&SharedSink>,
) {
    let chunk = SimDuration::from_ms(5_000.0);
    let mut deadline = start;
    let mut last_done = 0usize;
    let mut quiet = 0u32;
    loop {
        deadline += chunk;
        sim.run_until(deadline);
        if let Some(sink) = sink {
            sink.emit(ProgressEvent::Chunk {
                now_ms: deadline.as_ms(),
                events: sim.events_processed(),
            });
        }
        let done: usize = sim.nodes().map(|(_, node)| node.multicasts().len()).sum();
        if done >= scenario.messages {
            break;
        }
        if done == last_done {
            quiet += 1;
            assert!(
                quiet < 64,
                "closed-loop run stalled at {done}/{} messages ({quiet} quiet chunks of {} ms)",
                scenario.messages,
                chunk.as_ms()
            );
        } else {
            quiet = 0;
            last_done = done;
        }
    }
    let last = sim
        .nodes()
        .flat_map(|(_, node)| node.multicasts().iter().map(|m| m.time))
        .fold(start, |a, b| if b > a { b } else { a });
    sim.run_until(last + SimDuration::from_ms(scenario.drain_ms));
}

/// Gathers node-side and network-side records into the outcome.
fn collect(
    scenario: &Scenario,
    mut sim: Engine,
    model: Arc<RoutedModel>,
    victims: Vec<NodeId>,
    best_ids: Vec<NodeId>,
    reranked_best_ids: Option<Vec<NodeId>>,
) -> RunOutcome {
    // The run is over: seal the traffic log so the per-link queries below
    // aggregate once instead of re-scanning the send log each.
    sim.seal_traffic();
    let n = sim.node_count();

    // Messages published near the end of the run can carry retire
    // horizons past the last event; sweep the remaining FIFOs so
    // `retired_messages` accounts for every retirable slot (a no-op when
    // retirement is off).
    for (_, node) in sim.nodes_mut() {
        node.sweep_retirements();
    }

    // Rebuild the delivery log from per-node records.
    let mut sends: Vec<Option<(usize, f64)>> = vec![None; scenario.messages];
    for (id, node) in sim.nodes() {
        for m in node.multicasts() {
            sends[m.seq as usize] = Some((id.index(), m.time.as_ms()));
        }
    }
    let mut log = DeliveryLog::new(n);
    for (seq, send) in sends.iter().enumerate() {
        let (source, time) = send.unwrap_or_else(|| panic!("message {seq} was never multicast"));
        let idx = log.record_multicast(source, time);
        debug_assert_eq!(idx, seq);
    }

    // Tail-latency histogram over the steady-state window: publish →
    // delivery for every message published after the arrival process's
    // analytic warm-up. Pure counter accumulation, so the node iteration
    // order (global for the sequential engine, shard-major for the
    // sharded one) cannot perturb it.
    let window_start_ms = scenario.warmup_ms
        + match &scenario.arrival {
            Some(Arrival::Open(process)) => process.warmup_ms(),
            _ => 0.0,
        };
    let window_end_ms = sim.now().as_ms();
    let mut latency = LatencyHistogram::new();
    let mut window_deliveries = 0u64;
    for (id, node) in sim.nodes() {
        for d in node.deliveries() {
            let sent_ms = sends[d.seq as usize].expect("checked above").1;
            if sent_ms >= window_start_ms {
                latency.record_ms(d.time.as_ms() - sent_ms);
                window_deliveries += 1;
            }
            log.record_delivery(d.seq as usize, id.index(), d.time.as_ms(), d.round);
        }
    }
    let window_published = sends
        .iter()
        .filter(|s| s.expect("checked above").1 >= window_start_ms)
        .count();
    let span_s = ((window_end_ms - window_start_ms) / 1000.0).max(f64::MIN_POSITIVE);
    let steady = SteadyState {
        window_start_ms,
        window_end_ms,
        published: window_published,
        delivered: window_deliveries,
        publishes_per_sec: window_published as f64 / span_s,
        deliveries_per_sec: window_deliveries as f64 / span_s,
    };

    let mut scheduler = SchedulerStats::default();
    let mut retired_messages = 0u64;
    let mut arena_high_water = 0usize;
    for (_, node) in sim.nodes() {
        let arena = node.arena_stats();
        retired_messages += arena.retired;
        arena_high_water = arena_high_water.max(arena.high_water);
        let s = node.scheduler_stats();
        scheduler.eager_sends += s.eager_sends;
        scheduler.lazy_advertisements += s.lazy_advertisements;
        scheduler.requests_sent += s.requests_sent;
        scheduler.request_replies += s.request_replies;
        scheduler.request_misses += s.request_misses;
        scheduler.duplicate_payloads += s.duplicate_payloads;
        scheduler.suppressed_sends += s.suppressed_sends;
        scheduler.resolved_timer_pops += s.resolved_timer_pops;
    }

    let traffic = sim.traffic();
    let payload_links: Vec<((NodeId, NodeId), u64)> = traffic
        .links()
        .into_iter()
        .map(|(pair, tally)| (pair, tally.payloads))
        .collect();
    let payloads_per_node = traffic.payloads_sent_per_node(n);

    let eligible: Vec<bool> = (0..n).map(|i| !victims.contains(&NodeId(i))).collect();
    let total_deliveries = log.total_deliveries();

    let label = match scenario.noise {
        Some(noise) => format!("{} o={:.0}%", scenario.strategy.label(), noise.o * 100.0),
        None => scenario.strategy.label(),
    };
    let mut report = RunReport::empty(label, n, scenario.messages);
    report.latency = log.latency_summary();
    report.payloads_per_delivery = if total_deliveries == 0 {
        0.0
    } else {
        traffic.total_payloads() as f64 / total_deliveries as f64
    };
    // Per-group payload contribution: payload transmissions *sent by* the
    // group, per message and group member ("payload/message", §6.4).
    if !best_ids.is_empty() {
        let live_group = |ids: &[NodeId]| -> Option<f64> {
            let live: Vec<&NodeId> = ids.iter().filter(|id| eligible[id.index()]).collect();
            if live.is_empty() {
                return None;
            }
            let sent: u64 = live.iter().map(|id| payloads_per_node[id.index()]).sum();
            Some(sent as f64 / (scenario.messages as f64 * live.len() as f64))
        };
        let regular: Vec<NodeId> = (0..n)
            .map(NodeId)
            .filter(|id| !best_ids.contains(id))
            .collect();
        report.payloads_per_delivery_low = live_group(&regular);
        report.payloads_per_delivery_best = live_group(&best_ids);
    }
    report.mean_delivery_fraction = log.mean_delivery_fraction(&eligible);
    report.atomic_delivery_fraction = log.atomic_delivery_fraction(&eligible);
    if !payload_links.is_empty() {
        let mut counts: Vec<u64> = payload_links.iter().map(|&(_, c)| c).collect();
        // The owned scratch buffer lets the O(n) selection variant skip
        // the clone + full sort; `gini` sorts its own copy afterwards.
        report.top5_link_share = link::top_fraction_share_mut(&mut counts, 0.05);
        report.link_gini = link::gini(&counts);
    }
    report.node_gini = link::gini(&payloads_per_node);
    let rounds = log.delivery_rounds();
    report.mean_delivery_round = if rounds.is_empty() {
        0.0
    } else {
        rounds.iter().map(|&r| r as f64).sum::<f64>() / rounds.len() as f64
    };
    report.total_messages = traffic.total_messages();
    report.total_payloads = traffic.total_payloads();
    report.total_bytes = traffic.total_bytes();
    report.used_links = traffic.link_count();
    report.sim_duration_ms = sim.now().as_ms();

    RunOutcome {
        report,
        log,
        payload_links,
        payloads_per_node,
        victims,
        best_ids,
        reranked_best_ids,
        scheduler,
        events: sim.events_processed(),
        timers_cancelled: sim.timers_cancelled(),
        stale_timer_drops: sim.stale_timer_drops(),
        queue: sim.queue_stats(),
        shard_stats: sim.shard_stats(),
        retired_messages,
        arena_high_water,
        traffic_spill_bytes: traffic.spool_bytes(),
        payload_vec_growths: traffic.node_payload_growths(),
        latency,
        steady,
        traffic_acc_peak: traffic.shard_merge_acc_peak(),
        model,
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::Scenario;
    use crate::{FaultPlan, FaultSelection};
    use egm_core::StrategySpec;

    #[test]
    fn eager_smoke_run_delivers_everything() {
        let report = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 1.0 })
            .run();
        assert!(report.mean_delivery_fraction > 0.99, "{report}");
        assert!(report.payloads_per_delivery > 3.0, "{report}");
        assert_eq!(report.messages, 30);
        assert_eq!(report.nodes, 24);
    }

    #[test]
    fn lazy_smoke_run_is_near_optimal_bandwidth() {
        let report = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 0.0 })
            .run();
        assert!(report.mean_delivery_fraction > 0.99, "{report}");
        assert!(report.payloads_per_delivery < 1.3, "{report}");
    }

    #[test]
    fn lazy_is_slower_than_eager() {
        let eager = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 1.0 })
            .run();
        let lazy = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 0.0 })
            .run();
        assert!(
            lazy.mean_latency_ms() > 1.5 * eager.mean_latency_ms(),
            "lazy {} vs eager {}",
            lazy.mean_latency_ms(),
            eager.mean_latency_ms()
        );
    }

    #[test]
    fn same_seed_reproduces_report_exactly() {
        let scenario = Scenario::smoke_test().with_strategy(StrategySpec::Ttl { u: 2 });
        let a = scenario.run();
        let b = scenario.run();
        assert_eq!(a, b, "runs must be deterministic");
    }

    #[test]
    fn fault_injection_excludes_victims() {
        let scenario = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 1.0 })
            .with_faults(Some(FaultPlan::new(0.25, FaultSelection::Random)));
        let outcome = super::run_detailed(&scenario, None);
        assert_eq!(outcome.victims.len(), 6);
        // Victims never multicast.
        for m in 0..outcome.log.message_count() {
            assert!(outcome.log.delivery_count(m) > 0);
        }
        assert!(
            outcome.report.mean_delivery_fraction > 0.9,
            "{}",
            outcome.report
        );
    }

    #[test]
    fn prepared_runs_are_byte_identical_to_cold_runs() {
        let scenario = Scenario::smoke_test().with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        });
        let cold = super::run_detailed(&scenario, None);
        let setup = super::prepare(&scenario, None);
        let warm_a = super::run_prepared(&scenario, &setup);
        let warm_b = super::run_prepared(&scenario, &setup);
        for warm in [&warm_a, &warm_b] {
            assert_eq!(cold.report, warm.report, "reports diverged");
            assert_eq!(cold.log, warm.log, "delivery logs diverged");
            assert_eq!(cold.payload_links, warm.payload_links);
            assert_eq!(cold.payloads_per_node, warm.payloads_per_node);
            assert_eq!(cold.best_ids, warm.best_ids);
            assert_eq!(cold.victims, warm.victims);
            assert_eq!(cold.scheduler, warm.scheduler);
            assert_eq!(cold.events, warm.events);
        }
    }

    #[test]
    fn sweep_shares_setup_without_changing_results() {
        use egm_core::RankSource;
        // Three scenarios over the same (topology, seed, view, rank)
        // tuple — the sweep computes one setup — plus one with a different
        // rank source, which must not leak into the others.
        let base = Scenario::smoke_test().with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        });
        let scenarios = vec![
            base.clone(),
            base.clone().with_messages(10),
            base.clone(),
            base.clone()
                .with_rank_source(RankSource::GossipSorted { rounds: 3 }),
        ];
        let swept = super::run_sweep(scenarios.clone(), None);
        let solo: Vec<_> = scenarios
            .iter()
            .map(|s| super::run_detailed(s, None))
            .collect();
        for (a, b) in swept.iter().zip(&solo) {
            assert_eq!(a.report, b.report, "sweep sharing changed a result");
            assert_eq!(a.best_ids, b.best_ids);
            assert_eq!(a.events, b.events);
        }
        // The decentralized source really ranked differently from the
        // oracle here (otherwise this test pins nothing).
        assert_ne!(swept[0].best_ids, swept[3].best_ids);
        assert_eq!(swept[0].best_ids.len(), swept[3].best_ids.len());
    }

    #[test]
    fn rank_source_does_not_perturb_harness_randomness() {
        use egm_core::RankSource;
        // Same scenario, oracle vs gossip ranking: victims and the
        // traffic plan come from the harness stream and must be
        // identical; only the best set (and hence relaying) may differ.
        let base = Scenario::smoke_test()
            .with_strategy(StrategySpec::Ranked {
                best_fraction: 0.25,
            })
            .with_faults(Some(crate::FaultPlan::new(
                0.25,
                crate::FaultSelection::Random,
            )));
        let oracle = super::run_detailed(&base, None);
        let gossip = super::run_detailed(
            &base
                .clone()
                .with_rank_source(RankSource::GossipSorted { rounds: 3 }),
            None,
        );
        assert_eq!(oracle.victims, gossip.victims, "victim draw perturbed");
        assert_ne!(oracle.best_ids, gossip.best_ids);
    }

    #[test]
    fn degradation_schedule_slows_delivery() {
        use crate::faults::FaultSchedule;
        // Uniform topologies have no domain structure, so every pair is
        // "cross-domain": a 3× latency multiplier over the whole run
        // must show up in the mean delivery latency.
        let base = Scenario::smoke_test().with_strategy(StrategySpec::Flat { pi: 1.0 });
        let healthy = base.run();
        let degraded = base
            .clone()
            .with_fault_schedule(Some(FaultSchedule::transit_degradation(0.0, 1e9, 3.0, 0.0)))
            .run();
        assert!(
            degraded.mean_latency_ms() > 1.5 * healthy.mean_latency_ms(),
            "degraded {} vs healthy {}",
            degraded.mean_latency_ms(),
            healthy.mean_latency_ms()
        );
        assert!(degraded.mean_delivery_fraction > 0.99, "{degraded}");
    }

    #[test]
    fn slowdown_schedule_is_deterministic_and_slows_victims() {
        use crate::faults::FaultSchedule;
        let schedule = FaultSchedule::node_slowdown(24, 0.5, 0.0, 20.0, 1e9, 3);
        let scenario = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 1.0 })
            .with_fault_schedule(Some(schedule));
        let healthy = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 1.0 })
            .run();
        let a = scenario.run();
        let b = scenario.run();
        assert_eq!(a, b, "slowdown runs must be deterministic");
        assert!(
            a.mean_latency_ms() > healthy.mean_latency_ms(),
            "slowed {} vs healthy {}",
            a.mean_latency_ms(),
            healthy.mean_latency_ms()
        );
    }

    #[test]
    fn online_rerank_replaces_downed_hubs() {
        use crate::faults::{FaultAction, FaultSchedule, RerankPlan, TimedFault};
        let base = Scenario::smoke_test().with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        });
        let initial = super::run_detailed(&base, None);
        assert_eq!(initial.best_ids.len(), 6);
        assert!(initial.reranked_best_ids.is_none());

        // Silence every initial hub mid-warm-up; the re-rank ticks at
        // 100 ms and 200 ms must rank replacement hubs from the live
        // population only.
        let schedule = FaultSchedule {
            events: initial
                .best_ids
                .iter()
                .map(|id| TimedFault {
                    at_ms: 50.0,
                    action: FaultAction::Silence { node: id.index() },
                })
                .collect(),
        };
        let reranked = super::run_detailed(
            &base
                .clone()
                .with_fault_schedule(Some(schedule))
                .with_rerank(Some(RerankPlan::new(100.0, 2))),
            None,
        );
        assert_eq!(reranked.best_ids, initial.best_ids, "initial set kept");
        let final_ids = reranked.reranked_best_ids.as_ref().expect("reranked");
        // 18 live nodes × 0.25 → 4 or 5 hubs, none of them dead.
        assert!(!final_ids.is_empty());
        for id in final_ids {
            assert!(
                !initial.best_ids.contains(id),
                "downed hub {id:?} survived the re-rank"
            );
        }
        let again = super::run_detailed(
            &base
                .clone()
                .with_fault_schedule(Some(reranked_schedule_for(&initial)))
                .with_rerank(Some(RerankPlan::new(100.0, 2))),
            None,
        );
        assert_eq!(again.report, reranked.report, "re-rank runs deterministic");
        assert_eq!(again.reranked_best_ids, reranked.reranked_best_ids);
    }

    fn reranked_schedule_for(initial: &super::RunOutcome) -> crate::faults::FaultSchedule {
        use crate::faults::{FaultAction, FaultSchedule, TimedFault};
        FaultSchedule {
            events: initial
                .best_ids
                .iter()
                .map(|id| TimedFault {
                    at_ms: 50.0,
                    action: FaultAction::Silence { node: id.index() },
                })
                .collect(),
        }
    }

    #[test]
    fn churned_victim_redraw_avoids_overlapping_outages() {
        use crate::faults::ChurnPlan;
        // Heavily overlapping outages (down 4× the period) on a small
        // population: before the bounded re-draw fix this scheduled
        // no-op silences + premature revives on already-down nodes.
        let scenario = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi: 1.0 })
            .with_churn(Some(ChurnPlan::new(200.0, 800.0)))
            .with_faults(Some(FaultPlan::new(0.25, FaultSelection::Random)));
        let a = super::run_detailed(&scenario, None);
        let b = super::run_detailed(&scenario, None);
        assert_eq!(a.report, b.report, "churn runs must be deterministic");
        assert!(a.report.mean_delivery_fraction > 0.5, "{}", a.report);
    }

    #[test]
    fn ranked_outcome_exposes_best_ids() {
        let scenario = Scenario::smoke_test().with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        });
        let outcome = super::run_detailed(&scenario, None);
        assert_eq!(outcome.best_ids.len(), 6);
        assert!(outcome.report.payloads_per_delivery_low.is_some());
        assert!(outcome.report.payloads_per_delivery_best.is_some());
        let low = outcome.report.payloads_per_delivery_low.expect("set");
        let best = outcome.report.payloads_per_delivery_best.expect("set");
        assert!(best > low, "hubs must carry more: best {best} vs low {low}");
    }
}
