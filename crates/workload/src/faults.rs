//! Fault plans: node silencing after warm-up (§6.3).
//!
//! The paper *"simulates failed nodes by silencing them with firewall
//! rules after letting them join the overlay and warm up, i.e. immediately
//! before starting to log message deliveries"*. A [`FaultPlan`] selects a
//! fraction of nodes — uniformly at random, or precisely the best-ranked
//! hubs (the adversarial case of Fig. 5(b)) — and the runner silences them
//! at the end of warm-up. Failed nodes neither multicast nor count toward
//! delivery statistics.

use egm_core::BestSet;
use egm_rng::{sample, Rng};
use egm_simnet::NodeId;
use egm_topology::RoutedModel;
use serde::{Deserialize, Serialize};

/// How failed nodes are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSelection {
    /// Uniformly random victims.
    Random,
    /// The best-ranked nodes — exactly those carrying most payload under
    /// the Ranked strategy.
    BestRanked,
}

/// A fault-injection plan.
///
/// # Examples
///
/// ```
/// use egm_workload::{FaultPlan, FaultSelection};
///
/// let plan = FaultPlan::new(0.2, FaultSelection::Random);
/// assert_eq!(plan.victim_count(100), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fraction of nodes to silence, in `[0, 1)`.
    pub fraction: f64,
    /// Victim selection policy.
    pub selection: FaultSelection,
}

impl FaultPlan {
    /// Creates a plan killing `fraction` of nodes.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1)` (killing everyone leaves
    /// nothing to measure).
    pub fn new(fraction: f64, selection: FaultSelection) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "fault fraction must be in [0, 1)"
        );
        FaultPlan {
            fraction,
            selection,
        }
    }

    /// Number of victims for an `n`-node system.
    pub fn victim_count(&self, n: usize) -> usize {
        ((n as f64 * self.fraction).round() as usize).min(n.saturating_sub(1))
    }

    /// Chooses the victims.
    ///
    /// For [`FaultSelection::BestRanked`], the best set must be provided
    /// (hubs are killed first; if the plan needs more victims than there
    /// are hubs, the remainder is drawn randomly from regular nodes —
    /// matching "select the nodes with the best ranks").
    ///
    /// # Panics
    ///
    /// Panics if `BestRanked` is requested without a best set.
    pub fn choose_victims(&self, n: usize, best: Option<&BestSet>, rng: &mut Rng) -> Vec<NodeId> {
        let k = self.victim_count(n);
        if k == 0 {
            return Vec::new();
        }
        match self.selection {
            FaultSelection::Random => sample::distinct_indices(rng, n, k)
                .into_iter()
                .map(NodeId)
                .collect(),
            FaultSelection::BestRanked => {
                let best = best.expect("BestRanked faults require a best set");
                let mut victims: Vec<NodeId> = best.best_ids();
                if victims.len() > k {
                    victims.truncate(k);
                } else if victims.len() < k {
                    let regular = best.regular_ids();
                    let extra = k - victims.len();
                    for idx in sample::distinct_indices(rng, regular.len(), extra) {
                        victims.push(regular[idx]);
                    }
                }
                victims
            }
        }
    }
}

/// Transient churn: nodes go silent for a while and come back, repeatedly,
/// *during* dissemination.
///
/// This extends §6.3's permanent fail-by-firewall to the transient
/// partitions real overlays see. Every `period_ms`, one uniformly random
/// node is silenced for `down_ms` and then revived. Unlike permanent
/// victims, churned nodes stay in the delivery denominator: messages they
/// miss while down genuinely count against reliability.
///
/// # Examples
///
/// ```
/// use egm_workload::faults::ChurnPlan;
///
/// let plan = ChurnPlan::new(500.0, 1500.0);
/// assert_eq!(plan.events_within(5000.0), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Interval between churn events in milliseconds.
    pub period_ms: f64,
    /// How long each churned node stays silent, in milliseconds.
    pub down_ms: f64,
}

impl ChurnPlan {
    /// Creates a plan with the given churn period and outage duration.
    ///
    /// # Panics
    ///
    /// Panics if either duration is not strictly positive and finite.
    pub fn new(period_ms: f64, down_ms: f64) -> Self {
        assert!(
            period_ms.is_finite() && period_ms > 0.0,
            "period must be positive"
        );
        assert!(
            down_ms.is_finite() && down_ms > 0.0,
            "down time must be positive"
        );
        ChurnPlan { period_ms, down_ms }
    }

    /// Number of churn events within a window of `window_ms`.
    pub fn events_within(&self, window_ms: f64) -> usize {
        if window_ms <= 0.0 {
            0
        } else {
            (window_ms / self.period_ms).floor() as usize
        }
    }

    /// Picks the victim of the `k`-th churn event among `n` nodes.
    pub fn victim(&self, n: usize, rng: &mut Rng) -> NodeId {
        NodeId(rng.range_usize(0, n))
    }

    /// Lays out the plan's outages over a window of `window_ms`: one
    /// event every `period_ms`, each victim drawn uniformly but
    /// *rejected* if it is in `excluded` (permanent fault victims) or
    /// still down from an earlier churn outage (`down_ms > period_ms`
    /// makes outages overlap). Redraws are bounded; an event whose
    /// budget runs out is skipped rather than silently doubled onto an
    /// already-dead node.
    ///
    /// Times are relative to the start of the churn window.
    pub fn schedule(
        &self,
        n: usize,
        window_ms: f64,
        excluded: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<ChurnEvent> {
        /// Redraw budget per event: generous enough that a draw only
        /// fails when nearly every node is excluded or mid-outage.
        const MAX_REDRAWS: u32 = 64;
        let mut down_until = vec![f64::NEG_INFINITY; n];
        let blocked = |node: NodeId, at_ms: f64, down_until: &[f64]| {
            excluded.contains(&node) || down_until[node.index()] > at_ms
        };
        let mut events = Vec::new();
        for k in 1..=self.events_within(window_ms) {
            let at_ms = k as f64 * self.period_ms;
            let mut node = self.victim(n, rng);
            let mut redraws = 0;
            while blocked(node, at_ms, &down_until) && redraws < MAX_REDRAWS {
                node = self.victim(n, rng);
                redraws += 1;
            }
            if blocked(node, at_ms, &down_until) {
                continue;
            }
            down_until[node.index()] = at_ms + self.down_ms;
            events.push(ChurnEvent { at_ms, node });
        }
        events
    }
}

/// One laid-out churn outage (see [`ChurnPlan::schedule`]): `node` goes
/// silent at `at_ms` and revives `down_ms` later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Outage start, relative to the start of the churn window.
    pub at_ms: f64,
    /// The churned node.
    pub node: NodeId,
}

/// One timed fault action (see [`FaultSchedule`]). Nodes are raw indices
/// so traces serialize without depending on simulator types.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The node stops sending and receiving (fail-by-firewall, §6.3).
    Silence {
        /// Victim node index.
        node: usize,
    },
    /// The node comes back online (its protocol state intact).
    Revive {
        /// Revived node index.
        node: usize,
    },
    /// Cross-domain (transit) links degrade: latencies multiply by
    /// `latency_mult` and each message is additionally lost with
    /// probability `extra_loss`. `1.0` / `0.0` restores the healthy
    /// network. Intra-domain traffic is unaffected.
    Degrade {
        /// Latency multiplier on cross-domain links (`≥ 1.0`).
        latency_mult: f64,
        /// Extra loss probability on cross-domain links (`[0, 1]`).
        extra_loss: f64,
    },
    /// The node's receive-side processing slows by `delay_ms` per
    /// message (`0` restores full speed).
    Slowdown {
        /// Slowed node index.
        node: usize,
        /// Additive per-message delay in milliseconds.
        delay_ms: f64,
    },
}

impl FaultAction {
    /// The node this action targets, if any (degradation is global).
    pub fn node(&self) -> Option<usize> {
        match *self {
            FaultAction::Silence { node }
            | FaultAction::Revive { node }
            | FaultAction::Slowdown { node, .. } => Some(node),
            FaultAction::Degrade { .. } => None,
        }
    }
}

/// A timed fault: `action` fires at `at_ms` of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// When the action fires, in absolute simulated milliseconds.
    pub at_ms: f64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic fault trace: timed join/leave/crash/revive/degrade
/// events, generalizing [`FaultPlan`] (one permanent cut at warm-up end)
/// and [`ChurnPlan`] (periodic transient outages) into an explicit
/// schedule the runner replays event by event.
///
/// Schedules are plain data — seed-derived, serde-round-trippable, and
/// independent of simulator state — so the same trace drives the
/// sequential engine and every shard width to byte-identical outcomes
/// (the `fault_determinism` suite pins this). Library constructors cover
/// the scenarios the resilience experiment sweeps: correlated
/// [domain outages](FaultSchedule::domain_outage), transit-link
/// [degradation](FaultSchedule::transit_degradation),
/// [flash crowds](FaultSchedule::flash_crowd), per-node
/// [slowdowns](FaultSchedule::node_slowdown) and
/// [rolling churn](FaultSchedule::rolling_churn); [`FaultSchedule::merge`]
/// composes them.
///
/// # Examples
///
/// ```
/// use egm_workload::faults::FaultSchedule;
///
/// let s = FaultSchedule::transit_degradation(1000.0, 500.0, 2.0, 0.05);
/// assert_eq!(s.events.len(), 2, "onset plus recovery");
/// assert!(!s.down_at(1200.0, 8).iter().any(|&d| d), "degradation kills nobody");
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The timed events, in firing order.
    pub events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    fn push(&mut self, at_ms: f64, action: FaultAction) {
        self.events.push(TimedFault { at_ms, action });
    }

    /// Correlated stub-domain outage: every client of one stub domain
    /// goes silent at `at_ms` and revives `down_ms` later — the
    /// "access ISP fails" case a uniform random fault plan cannot
    /// express. `which` selects the domain among the model's populated
    /// stub domains (wrapping, so any index is valid).
    ///
    /// Dense models have no stub domains; there the outage falls back to
    /// a contiguous block of `n/8` clients so synthetic test topologies
    /// can still run the scenario.
    pub fn domain_outage(model: &RoutedModel, which: usize, at_ms: f64, down_ms: f64) -> Self {
        let members: Vec<usize> = match model.populated_domains() {
            Some(domains) => {
                let domain = domains[which % domains.len()];
                model
                    .domain_clients(domain)
                    .expect("populated domain has clients")
            }
            None => {
                let n = model.client_count();
                let size = (n / 8).max(1);
                let start = (which * size) % n;
                (start..start + size).map(|i| i % n).collect()
            }
        };
        let mut s = FaultSchedule::empty();
        for &node in &members {
            s.push(at_ms, FaultAction::Silence { node });
        }
        for &node in &members {
            s.push(at_ms + down_ms, FaultAction::Revive { node });
        }
        s
    }

    /// Transit-link degradation: from `at_ms` until `at_ms +
    /// duration_ms`, cross-domain latencies multiply by `latency_mult`
    /// and cross-domain messages suffer `extra_loss` additional loss.
    pub fn transit_degradation(
        at_ms: f64,
        duration_ms: f64,
        latency_mult: f64,
        extra_loss: f64,
    ) -> Self {
        assert!(
            latency_mult.is_finite() && latency_mult >= 1.0,
            "degradation may only lengthen delays"
        );
        assert!(
            (0.0..=1.0).contains(&extra_loss),
            "extra loss must be a probability"
        );
        let mut s = FaultSchedule::empty();
        s.push(
            at_ms,
            FaultAction::Degrade {
                latency_mult,
                extra_loss,
            },
        );
        s.push(
            at_ms + duration_ms,
            FaultAction::Degrade {
                latency_mult: 1.0,
                extra_loss: 0.0,
            },
        );
        s
    }

    /// Flash crowd: a seed-chosen `fraction` of the `n` nodes sit out
    /// the start of the run (silenced at time 0) and mass-join at
    /// `join_at_ms`. At most `n - 1` nodes can sit out.
    pub fn flash_crowd(n: usize, fraction: f64, join_at_ms: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "crowd fraction must be in [0, 1]"
        );
        let k = ((n as f64 * fraction).round() as usize).min(n.saturating_sub(1));
        let mut rng = Rng::seed_from_u64(seed);
        let crowd = sample::distinct_indices(&mut rng, n, k);
        let mut s = FaultSchedule::empty();
        for &node in &crowd {
            s.push(0.0, FaultAction::Silence { node });
        }
        for &node in &crowd {
            s.push(join_at_ms, FaultAction::Revive { node });
        }
        s
    }

    /// Node slowdown: a seed-chosen `fraction` of the `n` nodes process
    /// messages `delay_ms` slower between `at_ms` and
    /// `at_ms + duration_ms`.
    pub fn node_slowdown(
        n: usize,
        fraction: f64,
        at_ms: f64,
        delay_ms: f64,
        duration_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "slowdown fraction must be in [0, 1]"
        );
        assert!(
            delay_ms.is_finite() && delay_ms >= 0.0,
            "slowdown delay must be non-negative"
        );
        let k = (n as f64 * fraction).round() as usize;
        let mut rng = Rng::seed_from_u64(seed);
        let slowed = sample::distinct_indices(&mut rng, n, k.min(n));
        let mut s = FaultSchedule::empty();
        for &node in &slowed {
            s.push(at_ms, FaultAction::Slowdown { node, delay_ms });
        }
        for &node in &slowed {
            s.push(
                at_ms + duration_ms,
                FaultAction::Slowdown {
                    node,
                    delay_ms: 0.0,
                },
            );
        }
        s
    }

    /// Rolling churn: lays out `plan` over `[start_ms, start_ms +
    /// window_ms)` with a seed-derived RNG (see [`ChurnPlan::schedule`]
    /// for the overlap-aware victim rejection).
    pub fn rolling_churn(
        n: usize,
        plan: ChurnPlan,
        start_ms: f64,
        window_ms: f64,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut s = FaultSchedule::empty();
        for ev in plan.schedule(n, window_ms, &[], &mut rng) {
            s.push(
                start_ms + ev.at_ms,
                FaultAction::Silence {
                    node: ev.node.index(),
                },
            );
            s.push(
                start_ms + ev.at_ms + plan.down_ms,
                FaultAction::Revive {
                    node: ev.node.index(),
                },
            );
        }
        s
    }

    /// Merges two schedules, keeping events time-ordered (ties keep
    /// `self`'s events first — the stable sort preserves insertion
    /// order, and the runner breaks remaining ties by scheduling order).
    pub fn merge(mut self, other: FaultSchedule) -> Self {
        self.events.extend(other.events);
        self.events.sort_by(|a, b| {
            a.at_ms
                .partial_cmp(&b.at_ms)
                .expect("fault times are finite")
        });
        self
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The silenced-node mask at time `t_ms`: replays every
    /// `Silence`/`Revive` with `at_ms <= t_ms`. This is how the online
    /// re-ranker knows which nodes to exclude — pure schedule data, so
    /// every shard width computes the identical mask.
    pub fn down_at(&self, t_ms: f64, n: usize) -> Vec<bool> {
        let mut down = vec![false; n];
        for ev in &self.events {
            if ev.at_ms > t_ms {
                continue;
            }
            match ev.action {
                FaultAction::Silence { node } => down[node] = true,
                FaultAction::Revive { node } => down[node] = false,
                FaultAction::Degrade { .. } | FaultAction::Slowdown { .. } => {}
            }
        }
        down
    }

    /// Checks every event against an `n`-node system: node indices in
    /// range, times finite and non-negative, degradation parameters
    /// valid. The runner calls this before scheduling.
    ///
    /// # Panics
    ///
    /// Panics on the first invalid event.
    pub fn validate(&self, n: usize) {
        for ev in &self.events {
            assert!(
                ev.at_ms.is_finite() && ev.at_ms >= 0.0,
                "fault time must be finite and non-negative, got {}",
                ev.at_ms
            );
            if let Some(node) = ev.action.node() {
                assert!(node < n, "fault targets node {node} of {n}");
            }
            match ev.action {
                FaultAction::Degrade {
                    latency_mult,
                    extra_loss,
                } => {
                    assert!(
                        latency_mult.is_finite() && latency_mult >= 1.0,
                        "degradation may only lengthen delays"
                    );
                    assert!(
                        (0.0..=1.0).contains(&extra_loss),
                        "extra loss must be a probability"
                    );
                }
                FaultAction::Slowdown { delay_ms, .. } => {
                    assert!(
                        delay_ms.is_finite() && delay_ms >= 0.0,
                        "slowdown delay must be non-negative"
                    );
                }
                FaultAction::Silence { .. } | FaultAction::Revive { .. } => {}
            }
        }
    }
}

/// The library fault scenarios the resilience experiment sweeps
/// (`fault_resilience`): each maps to one canonical [`FaultSchedule`]
/// via [`FaultScenarioKind::schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScenarioKind {
    /// No faults: the reference cell.
    Baseline,
    /// One whole stub domain fails mid-warm-up and recovers mid-traffic.
    DomainOutage,
    /// Transit links run at 2× latency with 5 % extra loss.
    TransitDegradation,
    /// A quarter of the nodes join mid-warm-up instead of at time 0.
    FlashCrowd,
    /// A fifth of the nodes process messages 5 ms slower.
    NodeSlowdown,
}

impl FaultScenarioKind {
    /// All library scenarios, baseline first.
    pub fn all() -> [FaultScenarioKind; 5] {
        [
            FaultScenarioKind::Baseline,
            FaultScenarioKind::DomainOutage,
            FaultScenarioKind::TransitDegradation,
            FaultScenarioKind::FlashCrowd,
            FaultScenarioKind::NodeSlowdown,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultScenarioKind::Baseline => "baseline",
            FaultScenarioKind::DomainOutage => "domain outage",
            FaultScenarioKind::TransitDegradation => "transit degrade",
            FaultScenarioKind::FlashCrowd => "flash crowd",
            FaultScenarioKind::NodeSlowdown => "node slowdown",
        }
    }

    /// Builds the canonical schedule: faults strike at half warm-up —
    /// while the online re-ranker is still running, so it can react —
    /// and (where transient) recover halfway through the traffic phase.
    pub fn schedule(
        &self,
        model: &RoutedModel,
        warmup_ms: f64,
        traffic_ms: f64,
        seed: u64,
    ) -> FaultSchedule {
        let n = model.client_count();
        let onset = 0.5 * warmup_ms;
        let hold = 0.5 * warmup_ms + 0.5 * traffic_ms;
        match self {
            FaultScenarioKind::Baseline => FaultSchedule::empty(),
            FaultScenarioKind::DomainOutage => FaultSchedule::domain_outage(model, 0, onset, hold),
            FaultScenarioKind::TransitDegradation => {
                FaultSchedule::transit_degradation(onset, hold, 2.0, 0.05)
            }
            FaultScenarioKind::FlashCrowd => {
                FaultSchedule::flash_crowd(n, 0.25, onset, seed ^ 0x464C_4153)
            }
            FaultScenarioKind::NodeSlowdown => {
                FaultSchedule::node_slowdown(n, 0.2, onset, 5.0, hold, seed ^ 0x534C_4F57)
            }
        }
    }
}

/// Online re-ranking during warm-up: every `period_ms` the runner
/// pauses the engine at a global barrier, recomputes the best set
/// through the scenario's [`RankSource`](egm_core::RankSource) —
/// excluding nodes the fault schedule has down at that instant — and
/// rebinds every node's strategy to the new set. This is how hubs
/// re-rank *while churn is active* instead of trusting a pre-fault
/// ranking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RerankPlan {
    /// Interval between re-rank ticks in milliseconds.
    pub period_ms: f64,
    /// Number of ticks (all must land within warm-up).
    pub ticks: u32,
}

impl RerankPlan {
    /// Creates a plan with `ticks` re-rank barriers every `period_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the period is not strictly positive and finite or
    /// `ticks` is zero.
    pub fn new(period_ms: f64, ticks: u32) -> Self {
        assert!(
            period_ms.is_finite() && period_ms > 0.0,
            "re-rank period must be positive"
        );
        assert!(ticks > 0, "need at least one re-rank tick");
        RerankPlan { period_ms, ticks }
    }
}

#[cfg(test)]
mod tests {
    use super::{ChurnPlan, FaultPlan, FaultSelection};
    use egm_core::BestSet;
    use egm_rng::Rng;
    use egm_simnet::NodeId;
    use std::collections::HashSet;

    #[test]
    fn victim_counts_round_and_cap() {
        let plan = FaultPlan::new(0.5, FaultSelection::Random);
        assert_eq!(plan.victim_count(10), 5);
        assert_eq!(plan.victim_count(1), 0, "never kill the last node");
        let heavy = FaultPlan::new(0.99, FaultSelection::Random);
        assert_eq!(heavy.victim_count(10), 9);
    }

    #[test]
    fn random_victims_are_distinct() {
        let plan = FaultPlan::new(0.4, FaultSelection::Random);
        let mut rng = Rng::seed_from_u64(1);
        let victims = plan.choose_victims(20, None, &mut rng);
        assert_eq!(victims.len(), 8);
        let set: HashSet<_> = victims.iter().collect();
        assert_eq!(set.len(), 8);
        assert!(victims.iter().all(|v| v.index() < 20));
    }

    #[test]
    fn best_ranked_kills_hubs_first() {
        let best = BestSet::from_ids(10, &[NodeId(1), NodeId(3)]);
        let plan = FaultPlan::new(0.2, FaultSelection::BestRanked);
        let mut rng = Rng::seed_from_u64(2);
        let victims = plan.choose_victims(10, Some(&best), &mut rng);
        assert_eq!(victims, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn best_ranked_spills_into_regular_nodes() {
        let best = BestSet::from_ids(10, &[NodeId(0)]);
        let plan = FaultPlan::new(0.5, FaultSelection::BestRanked);
        let mut rng = Rng::seed_from_u64(3);
        let victims = plan.choose_victims(10, Some(&best), &mut rng);
        assert_eq!(victims.len(), 5);
        assert!(victims.contains(&NodeId(0)), "hub dies first");
        let set: HashSet<_> = victims.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn zero_fraction_kills_nobody() {
        let plan = FaultPlan::new(0.0, FaultSelection::Random);
        let mut rng = Rng::seed_from_u64(4);
        assert!(plan.choose_victims(10, None, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "fault fraction")]
    fn full_kill_is_rejected() {
        let _ = FaultPlan::new(1.0, FaultSelection::Random);
    }

    #[test]
    #[should_panic(expected = "require a best set")]
    fn best_ranked_without_set_panics() {
        let plan = FaultPlan::new(0.2, FaultSelection::BestRanked);
        let mut rng = Rng::seed_from_u64(5);
        let _ = plan.choose_victims(10, None, &mut rng);
    }

    #[test]
    fn churn_event_counting() {
        let plan = ChurnPlan::new(100.0, 50.0);
        assert_eq!(plan.events_within(1000.0), 10);
        assert_eq!(plan.events_within(99.0), 0);
        assert_eq!(plan.events_within(-5.0), 0);
    }

    #[test]
    fn churn_victims_are_in_range() {
        let plan = ChurnPlan::new(100.0, 50.0);
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(plan.victim(7, &mut rng).index() < 7);
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn churn_rejects_zero_period() {
        let _ = ChurnPlan::new(0.0, 10.0);
    }

    #[test]
    fn churn_schedule_rejects_overlapping_and_excluded_victims() {
        // down_ms ≫ period_ms: outages overlap heavily, so without the
        // rejection loop later events would re-silence already-down
        // nodes (a no-op silence + a premature revive).
        let plan = ChurnPlan::new(100.0, 450.0);
        let excluded = [NodeId(0), NodeId(1)];
        let mut rng = Rng::seed_from_u64(7);
        let events = plan.schedule(6, 2000.0, &excluded, &mut rng);
        assert!(!events.is_empty());
        let mut down_until = [f64::NEG_INFINITY; 6];
        for ev in &events {
            assert!(
                !excluded.contains(&ev.node),
                "permanent victim churned: {:?}",
                ev.node
            );
            assert!(
                down_until[ev.node.index()] <= ev.at_ms,
                "node {:?} churned at {} while down until {}",
                ev.node,
                ev.at_ms,
                down_until[ev.node.index()]
            );
            down_until[ev.node.index()] = ev.at_ms + plan.down_ms;
        }
    }

    #[test]
    fn churn_schedule_skips_events_when_no_victim_is_healthy() {
        // One eligible node, held down across every period: once it is
        // down, later events find no healthy victim and are skipped
        // instead of looping forever.
        let plan = ChurnPlan::new(100.0, 10_000.0);
        let excluded = [NodeId(1)];
        let mut rng = Rng::seed_from_u64(8);
        let events = plan.schedule(2, 1000.0, &excluded, &mut rng);
        assert_eq!(events.len(), 1, "only the first outage can fire");
        assert_eq!(events[0].node, NodeId(0));
    }

    #[test]
    fn schedule_types_are_serde_round_trippable() {
        fn assert_round_trippable<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_round_trippable::<super::FaultSchedule>();
        assert_round_trippable::<super::TimedFault>();
        assert_round_trippable::<super::FaultAction>();
        assert_round_trippable::<super::FaultScenarioKind>();
        assert_round_trippable::<super::RerankPlan>();
    }

    #[test]
    fn domain_outage_kills_one_whole_domain() {
        use egm_topology::TransitStubConfig;
        let model = TransitStubConfig::small()
            .with_clients(24)
            .with_seed(5)
            .build();
        let s = super::FaultSchedule::domain_outage(&model, 0, 100.0, 50.0);
        let domains = model.populated_domains().expect("stub model");
        let members = model.domain_clients(domains[0]).expect("clients");
        assert_eq!(s.events.len(), 2 * members.len());
        let down = s.down_at(100.0, 24);
        for (i, &d) in down.iter().enumerate() {
            assert_eq!(d, members.contains(&i), "node {i}");
        }
        // After the revive, everyone is back.
        assert!(!s.down_at(200.0, 24).iter().any(|&d| d));
    }

    #[test]
    fn domain_outage_falls_back_to_a_block_on_dense_models() {
        let model = egm_topology::RoutedModel::uniform_synthetic(16, 1.0, 2.0, 3);
        let s = super::FaultSchedule::domain_outage(&model, 0, 10.0, 10.0);
        let down = s.down_at(10.0, 16);
        assert_eq!(down.iter().filter(|&&d| d).count(), 2, "n/8 block");
    }

    #[test]
    fn flash_crowd_sits_out_until_the_join() {
        let s = super::FaultSchedule::flash_crowd(20, 0.25, 500.0, 9);
        let at_start = s.down_at(0.0, 20);
        assert_eq!(at_start.iter().filter(|&&d| d).count(), 5);
        assert!(!s.down_at(500.0, 20).iter().any(|&d| d), "all joined");
    }

    #[test]
    fn merge_orders_by_time() {
        let a = super::FaultSchedule::transit_degradation(300.0, 100.0, 2.0, 0.0);
        let b = super::FaultSchedule::flash_crowd(10, 0.2, 350.0, 1);
        let merged = a.merge(b);
        let times: Vec<f64> = merged.events.iter().map(|e| e.at_ms).collect();
        let mut sorted = times.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        assert_eq!(times, sorted);
    }

    #[test]
    fn validate_catches_out_of_range_nodes() {
        let s = super::FaultSchedule::flash_crowd(10, 0.3, 100.0, 2);
        s.validate(10);
        let r = std::panic::catch_unwind(|| s.validate(2));
        assert!(r.is_err(), "node index past n must be rejected");
    }

    #[test]
    fn library_scenarios_build_valid_schedules() {
        use egm_topology::TransitStubConfig;
        let model = TransitStubConfig::small()
            .with_clients(24)
            .with_seed(5)
            .build();
        for kind in super::FaultScenarioKind::all() {
            let s = kind.schedule(&model, 1000.0, 3000.0, 17);
            s.validate(24);
            let again = kind.schedule(&model, 1000.0, 3000.0, 17);
            assert_eq!(
                s,
                again,
                "{}: schedule must be seed-deterministic",
                kind.label()
            );
            if kind == super::FaultScenarioKind::Baseline {
                assert!(s.is_empty());
            } else {
                assert!(!s.is_empty(), "{}", kind.label());
            }
        }
    }

    #[test]
    #[should_panic(expected = "re-rank period must be positive")]
    fn rerank_rejects_zero_period() {
        let _ = super::RerankPlan::new(0.0, 3);
    }
}
