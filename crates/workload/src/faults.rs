//! Fault plans: node silencing after warm-up (§6.3).
//!
//! The paper *"simulates failed nodes by silencing them with firewall
//! rules after letting them join the overlay and warm up, i.e. immediately
//! before starting to log message deliveries"*. A [`FaultPlan`] selects a
//! fraction of nodes — uniformly at random, or precisely the best-ranked
//! hubs (the adversarial case of Fig. 5(b)) — and the runner silences them
//! at the end of warm-up. Failed nodes neither multicast nor count toward
//! delivery statistics.

use egm_core::BestSet;
use egm_rng::{sample, Rng};
use egm_simnet::NodeId;
use serde::{Deserialize, Serialize};

/// How failed nodes are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSelection {
    /// Uniformly random victims.
    Random,
    /// The best-ranked nodes — exactly those carrying most payload under
    /// the Ranked strategy.
    BestRanked,
}

/// A fault-injection plan.
///
/// # Examples
///
/// ```
/// use egm_workload::{FaultPlan, FaultSelection};
///
/// let plan = FaultPlan::new(0.2, FaultSelection::Random);
/// assert_eq!(plan.victim_count(100), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fraction of nodes to silence, in `[0, 1)`.
    pub fraction: f64,
    /// Victim selection policy.
    pub selection: FaultSelection,
}

impl FaultPlan {
    /// Creates a plan killing `fraction` of nodes.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1)` (killing everyone leaves
    /// nothing to measure).
    pub fn new(fraction: f64, selection: FaultSelection) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "fault fraction must be in [0, 1)"
        );
        FaultPlan {
            fraction,
            selection,
        }
    }

    /// Number of victims for an `n`-node system.
    pub fn victim_count(&self, n: usize) -> usize {
        ((n as f64 * self.fraction).round() as usize).min(n.saturating_sub(1))
    }

    /// Chooses the victims.
    ///
    /// For [`FaultSelection::BestRanked`], the best set must be provided
    /// (hubs are killed first; if the plan needs more victims than there
    /// are hubs, the remainder is drawn randomly from regular nodes —
    /// matching "select the nodes with the best ranks").
    ///
    /// # Panics
    ///
    /// Panics if `BestRanked` is requested without a best set.
    pub fn choose_victims(&self, n: usize, best: Option<&BestSet>, rng: &mut Rng) -> Vec<NodeId> {
        let k = self.victim_count(n);
        if k == 0 {
            return Vec::new();
        }
        match self.selection {
            FaultSelection::Random => sample::distinct_indices(rng, n, k)
                .into_iter()
                .map(NodeId)
                .collect(),
            FaultSelection::BestRanked => {
                let best = best.expect("BestRanked faults require a best set");
                let mut victims: Vec<NodeId> = best.best_ids();
                if victims.len() > k {
                    victims.truncate(k);
                } else if victims.len() < k {
                    let regular = best.regular_ids();
                    let extra = k - victims.len();
                    for idx in sample::distinct_indices(rng, regular.len(), extra) {
                        victims.push(regular[idx]);
                    }
                }
                victims
            }
        }
    }
}

/// Transient churn: nodes go silent for a while and come back, repeatedly,
/// *during* dissemination.
///
/// This extends §6.3's permanent fail-by-firewall to the transient
/// partitions real overlays see. Every `period_ms`, one uniformly random
/// node is silenced for `down_ms` and then revived. Unlike permanent
/// victims, churned nodes stay in the delivery denominator: messages they
/// miss while down genuinely count against reliability.
///
/// # Examples
///
/// ```
/// use egm_workload::faults::ChurnPlan;
///
/// let plan = ChurnPlan::new(500.0, 1500.0);
/// assert_eq!(plan.events_within(5000.0), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Interval between churn events in milliseconds.
    pub period_ms: f64,
    /// How long each churned node stays silent, in milliseconds.
    pub down_ms: f64,
}

impl ChurnPlan {
    /// Creates a plan with the given churn period and outage duration.
    ///
    /// # Panics
    ///
    /// Panics if either duration is not strictly positive and finite.
    pub fn new(period_ms: f64, down_ms: f64) -> Self {
        assert!(
            period_ms.is_finite() && period_ms > 0.0,
            "period must be positive"
        );
        assert!(
            down_ms.is_finite() && down_ms > 0.0,
            "down time must be positive"
        );
        ChurnPlan { period_ms, down_ms }
    }

    /// Number of churn events within a window of `window_ms`.
    pub fn events_within(&self, window_ms: f64) -> usize {
        if window_ms <= 0.0 {
            0
        } else {
            (window_ms / self.period_ms).floor() as usize
        }
    }

    /// Picks the victim of the `k`-th churn event among `n` nodes.
    pub fn victim(&self, n: usize, rng: &mut Rng) -> NodeId {
        NodeId(rng.range_usize(0, n))
    }
}

#[cfg(test)]
mod tests {
    use super::{ChurnPlan, FaultPlan, FaultSelection};
    use egm_core::BestSet;
    use egm_rng::Rng;
    use egm_simnet::NodeId;
    use std::collections::HashSet;

    #[test]
    fn victim_counts_round_and_cap() {
        let plan = FaultPlan::new(0.5, FaultSelection::Random);
        assert_eq!(plan.victim_count(10), 5);
        assert_eq!(plan.victim_count(1), 0, "never kill the last node");
        let heavy = FaultPlan::new(0.99, FaultSelection::Random);
        assert_eq!(heavy.victim_count(10), 9);
    }

    #[test]
    fn random_victims_are_distinct() {
        let plan = FaultPlan::new(0.4, FaultSelection::Random);
        let mut rng = Rng::seed_from_u64(1);
        let victims = plan.choose_victims(20, None, &mut rng);
        assert_eq!(victims.len(), 8);
        let set: HashSet<_> = victims.iter().collect();
        assert_eq!(set.len(), 8);
        assert!(victims.iter().all(|v| v.index() < 20));
    }

    #[test]
    fn best_ranked_kills_hubs_first() {
        let best = BestSet::from_ids(10, &[NodeId(1), NodeId(3)]);
        let plan = FaultPlan::new(0.2, FaultSelection::BestRanked);
        let mut rng = Rng::seed_from_u64(2);
        let victims = plan.choose_victims(10, Some(&best), &mut rng);
        assert_eq!(victims, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn best_ranked_spills_into_regular_nodes() {
        let best = BestSet::from_ids(10, &[NodeId(0)]);
        let plan = FaultPlan::new(0.5, FaultSelection::BestRanked);
        let mut rng = Rng::seed_from_u64(3);
        let victims = plan.choose_victims(10, Some(&best), &mut rng);
        assert_eq!(victims.len(), 5);
        assert!(victims.contains(&NodeId(0)), "hub dies first");
        let set: HashSet<_> = victims.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn zero_fraction_kills_nobody() {
        let plan = FaultPlan::new(0.0, FaultSelection::Random);
        let mut rng = Rng::seed_from_u64(4);
        assert!(plan.choose_victims(10, None, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "fault fraction")]
    fn full_kill_is_rejected() {
        let _ = FaultPlan::new(1.0, FaultSelection::Random);
    }

    #[test]
    #[should_panic(expected = "require a best set")]
    fn best_ranked_without_set_panics() {
        let plan = FaultPlan::new(0.2, FaultSelection::BestRanked);
        let mut rng = Rng::seed_from_u64(5);
        let _ = plan.choose_victims(10, None, &mut rng);
    }

    #[test]
    fn churn_event_counting() {
        let plan = ChurnPlan::new(100.0, 50.0);
        assert_eq!(plan.events_within(1000.0), 10);
        assert_eq!(plan.events_within(99.0), 0);
        assert_eq!(plan.events_within(-5.0), 0);
    }

    #[test]
    fn churn_victims_are_in_range() {
        let plan = ChurnPlan::new(100.0, 50.0);
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(plan.victim(7, &mut rng).index() < 7);
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn churn_rejects_zero_period() {
        let _ = ChurnPlan::new(0.0, 10.0);
    }
}
