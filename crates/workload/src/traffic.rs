//! Traffic generation (§5.3): round-robin multicasts at uniform random
//! intervals.

use egm_rng::Rng;
use egm_simnet::{NodeId, SimTime};

/// One planned multicast: who sends sequence number `seq` and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMulticast {
    /// Harness sequence number (also the metrics message index).
    pub seq: u64,
    /// Sending node.
    pub source: NodeId,
    /// Virtual send time.
    pub at: SimTime,
}

/// Plans `messages` multicasts starting at `start`, rotating round-robin
/// over `senders` with gaps drawn uniformly from `[0, 2 × mean)` — i.e. a
/// uniform random interval with the requested average, as in §5.3.
///
/// # Panics
///
/// Panics if `senders` is empty or `mean_interval_ms` is negative.
///
/// # Examples
///
/// ```
/// use egm_rng::Rng;
/// use egm_simnet::{NodeId, SimTime};
/// use egm_workload::traffic::plan;
///
/// let mut rng = Rng::seed_from_u64(1);
/// let senders = [NodeId(0), NodeId(1)];
/// let schedule = plan(&senders, 4, SimTime::ZERO, 500.0, &mut rng);
/// assert_eq!(schedule.len(), 4);
/// assert_eq!(schedule[0].source, NodeId(0));
/// assert_eq!(schedule[1].source, NodeId(1));
/// assert_eq!(schedule[2].source, NodeId(0)); // round robin
/// ```
pub fn plan(
    senders: &[NodeId],
    messages: usize,
    start: SimTime,
    mean_interval_ms: f64,
    rng: &mut Rng,
) -> Vec<PlannedMulticast> {
    assert!(!senders.is_empty(), "need at least one sender");
    assert!(mean_interval_ms >= 0.0, "interval must be non-negative");
    let mut out = Vec::with_capacity(messages);
    let mut t = start;
    for seq in 0..messages {
        let gap = rng.range_f64(0.0, 2.0 * mean_interval_ms.max(f64::MIN_POSITIVE));
        t += egm_simnet::SimDuration::from_ms(gap);
        out.push(PlannedMulticast {
            seq: seq as u64,
            source: senders[seq % senders.len()],
            at: t,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::plan;
    use egm_rng::Rng;
    use egm_simnet::{NodeId, SimTime};

    #[test]
    fn round_robin_over_senders() {
        let mut rng = Rng::seed_from_u64(2);
        let senders = [NodeId(3), NodeId(5), NodeId(9)];
        let schedule = plan(&senders, 7, SimTime::ZERO, 100.0, &mut rng);
        for (i, p) in schedule.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
            assert_eq!(p.source, senders[i % 3]);
        }
    }

    #[test]
    fn times_are_increasing_and_after_start() {
        let mut rng = Rng::seed_from_u64(3);
        let start = SimTime::from_ms(1000.0);
        let schedule = plan(&[NodeId(0)], 50, start, 100.0, &mut rng);
        let mut last = start;
        for p in &schedule {
            assert!(p.at >= last);
            last = p.at;
        }
    }

    #[test]
    fn mean_gap_is_calibrated() {
        let mut rng = Rng::seed_from_u64(4);
        let schedule = plan(&[NodeId(0)], 10_000, SimTime::ZERO, 500.0, &mut rng);
        let total = schedule.last().expect("non-empty").at.as_ms();
        let mean = total / 10_000.0;
        assert!((mean - 500.0).abs() < 15.0, "mean gap {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn no_senders_panics() {
        let mut rng = Rng::seed_from_u64(5);
        let _ = plan(&[], 1, SimTime::ZERO, 100.0, &mut rng);
    }
}
