//! Experiment harness: scenarios, traffic, faults, calibration, and the
//! paper's figure experiments.
//!
//! One [`Scenario`] describes a full experiment run — topology, protocol
//! parameters, strategy, monitor, noise, fault plan and workload — and
//! [`Scenario::run`] executes it deterministically, producing an
//! [`egm_metrics::RunReport`]. The [`experiments`] module then sweeps
//! scenarios to regenerate every figure of the paper's evaluation
//! (Fig. 4, 5(a–c), 6(a–c)) plus the §5.1 network-model statistics.
//!
//! Sweeps execute through [`runner::run_sweep`], which fans independent
//! scenario runs across all cores and returns results in input order,
//! byte-identical to sequential execution (every run forks its full RNG
//! tree from its own seed), sharing one [`runner::RunSetup`] — model,
//! ranked best set, bootstrapped views — across scenarios whose setup
//! inputs coincide. `RAYON_NUM_THREADS` caps the parallelism;
//! `EGM_SCALE=paper` switches experiments from the reduced quick scale to
//! the paper's full 100-node × 400-message configuration (see
//! [`experiments::Scale`]).
//!
//! Strategies that need a best set select *how* it is ranked via
//! [`Scenario::rank_source`] ([`egm_core::RankSource`]): the exact O(n²)
//! oracle for the paper-scale figures, or the decentralized gossip-sorted
//! ranking the 1k–10k [`experiments::scale`] presets use.
//!
//! Heavy-traffic runs opt into the [`arrival`] axis
//! ([`Scenario::arrival`]): open-loop arrival-process generators
//! (Poisson, bursty, diurnal) at a fixed offered rate, or a closed loop
//! that gates each publish on the previous delivery. Either mode feeds
//! the publish→delivery latency histogram and steady-state throughput
//! block in [`runner::RunOutcome`].
//!
//! # Examples
//!
//! ```
//! use egm_core::StrategySpec;
//! use egm_workload::Scenario;
//!
//! let report = Scenario::smoke_test()
//!     .with_strategy(StrategySpec::Flat { pi: 1.0 })
//!     .run();
//! assert!(report.mean_delivery_fraction > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod calibrate;
pub mod experiments;
pub mod faults;
pub mod runner;
pub mod scenario;
pub mod traffic;

pub use arrival::{Arrival, ArrivalProcess, SteadyState};
pub use faults::{
    ChurnPlan, FaultAction, FaultPlan, FaultScenarioKind, FaultSchedule, FaultSelection,
    RerankPlan, TimedFault,
};
pub use scenario::{NoiseConfig, Scenario, TopologySource};
