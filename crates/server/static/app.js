"use strict";

// Dashboard state: jobs from /api/jobs, one EventSource for the
// selected job, and a metric panel fed by its SSE frames.
let selectedJob = null;
let source = null;

const $ = (id) => document.getElementById(id);

function strategySpec(kind) {
  if (kind === "eager") return { kind: "flat", pi: 1.0 };
  if (kind === "lazy") return { kind: "flat", pi: 0.0 };
  return { kind: "ranked", best_fraction: 0.2 };
}

async function submitJob(event) {
  event.preventDefault();
  const spec = {
    messages: Number($("messages").value) || 30,
    seed: Number($("seed").value) || 0,
    strategy: strategySpec($("strategy").value),
  };
  const preset = $("preset").value;
  if (preset) {
    spec.preset = preset;
  } else {
    spec.scenario = $("scenario").value;
  }
  const resp = await fetch("/api/jobs", {
    method: "POST",
    headers: { "Content-Type": "application/json" },
    body: JSON.stringify(spec),
  });
  const body = await resp.json();
  if (!resp.ok) {
    logLine("status", `submit rejected: ${body.error}`);
    return;
  }
  await refreshJobs();
  selectJob(body.id);
}

async function refreshJobs() {
  const resp = await fetch("/api/jobs");
  const body = await resp.json();
  const list = $("job-list");
  list.textContent = "";
  for (const job of body.jobs.slice().reverse()) {
    const row = document.createElement("div");
    row.className = "job" + (job.id === selectedJob ? " selected" : "");
    row.onclick = () => selectJob(job.id);
    const label = document.createElement("span");
    label.textContent = `#${job.id} (${job.runs} run${job.runs === 1 ? "" : "s"})`;
    const status = document.createElement("span");
    status.textContent = job.status;
    status.className = `status-${job.status}`;
    row.append(label, status);
    list.append(row);
  }
}

function logLine(kind, text) {
  const log = $("log");
  const line = document.createElement("div");
  line.className = kind;
  line.textContent = `[${kind}] ${text}`;
  log.append(line);
  while (log.childElementCount > 2000) log.firstElementChild.remove();
  log.scrollTop = log.scrollHeight;
}

function setMetric(id, value) {
  $(id).textContent = value;
}

function selectJob(id) {
  selectedJob = id;
  if (source) source.close();
  $("log").textContent = "";
  for (const m of ["status", "events", "eps", "now", "delivery", "p50", "p99", "windows"]) {
    setMetric(`m-${m}`, "—");
  }
  refreshJobs();

  source = new EventSource(`/api/jobs/${id}/events`);
  source.addEventListener("status", (e) => {
    const d = JSON.parse(e.data);
    setMetric("m-status", d.status);
    logLine("status", d.status);
    if (d.status === "done" || d.status === "failed") {
      source.close();
      refreshJobs();
    }
  });
  source.addEventListener("run", (e) => {
    const d = JSON.parse(e.data);
    logLine("status", `run ${d.run}: ${d.label}`);
  });
  source.addEventListener("window", (e) => {
    const d = JSON.parse(e.data);
    setMetric("m-events", d.events.toLocaleString());
    setMetric("m-now", `${d.now_ms.toFixed(0)} ms`);
    setMetric("m-windows", d.window);
    logLine("window", `window ${d.window} @ ${d.now_ms.toFixed(1)} ms, ${d.events} events`);
  });
  source.addEventListener("chunk", (e) => {
    const d = JSON.parse(e.data);
    setMetric("m-events", d.events.toLocaleString());
    setMetric("m-now", `${d.now_ms.toFixed(0)} ms`);
    logLine("chunk", `t=${d.now_ms.toFixed(0)} ms, ${d.events} events`);
  });
  source.addEventListener("fault", (e) => {
    const d = JSON.parse(e.data);
    logLine("fault", `t=${d.at_ms.toFixed(0)} ms: ${d.action}`);
  });
  source.addEventListener("rerank", (e) => {
    const d = JSON.parse(e.data);
    logLine("rerank", `tick ${d.tick} @ ${d.at_ms.toFixed(0)} ms, |best|=${d.best}`);
  });
  source.addEventListener("summary", (e) => {
    const d = JSON.parse(e.data);
    setMetric("m-events", d.events.toLocaleString());
    setMetric("m-delivery", `${(d.delivery_fraction * 100).toFixed(2)}%`);
    setMetric("m-p50", `${d.p50_ms.toFixed(1)} ms`);
    setMetric("m-p99", `${d.p99_ms.toFixed(1)} ms`);
    logLine("summary", `delivery ${(d.delivery_fraction * 100).toFixed(2)}%, p50 ${d.p50_ms.toFixed(1)} ms, p99 ${d.p99_ms.toFixed(1)} ms`);
  });
  source.addEventListener("result", (e) => {
    const d = JSON.parse(e.data);
    setMetric("m-eps", Math.round(d.events_per_sec).toLocaleString());
    logLine("result", `${d.label}: ${Math.round(d.events_per_sec).toLocaleString()} events/s over ${d.wall_ms.toFixed(0)} ms wall`);
  });
}

$("submit-form").addEventListener("submit", submitJob);
refreshJobs();
setInterval(refreshJobs, 3000);
