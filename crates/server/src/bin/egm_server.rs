//! `egm_server` binary: bind, announce the address, serve forever.

#![forbid(unsafe_code)]

use egm_server::{Server, ServerConfig};

fn main() -> std::io::Result<()> {
    let config = ServerConfig::from_env();
    let workers = config.workers;
    let bench = config.bench_path.clone();
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    println!(
        "egm_server listening on http://{addr} ({workers} workers, bench record {})",
        bench.display()
    );
    server.serve()
}
