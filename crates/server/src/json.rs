//! Minimal JSON value: parse, render, and typed accessors.
//!
//! The workspace deliberately carries no JSON dependency (the bench
//! record module hand-parses its own bins the same way); this module is
//! the server's equivalent for request bodies and responses. It covers
//! the full JSON grammar except exotic number forms (`NaN`/`Infinity`
//! are rejected, as in the spec) and renders with the same conventions
//! the rest of the repository uses: shortest round-trip floats, no
//! insignificant whitespace.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion order (a `Vec` of
/// pairs, not a map) so rendering is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing whitespace only).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(out, "{}", *x as i64).expect("write to String");
                } else {
                    write!(out, "{x}").expect("write to String");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < 9e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: a number value.
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to String"),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not reassembled; lone
                            // surrogates render as the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let x: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_nested_values() {
        let text = r#"{"a":[1,2.5,null,true],"b":{"c":"x\n\"y\""},"d":-3}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(-3.0));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }
}
