//! Background jobs: submission parsing, the bounded worker pool, and
//! the per-job event log the SSE endpoint streams from.
//!
//! A job is a short list of [`Scenario`]s (one, or a sweep over one
//! strategy parameter) validated against the same builders the runner
//! uses — `ScalePreset::scenario`, `Scenario::smoke_test` /
//! `paper_default`, `with_strategy`, `with_shards` — so anything the
//! server accepts is exactly something `egm_workload` can run. Workers
//! execute each run via [`runner::prepare`] / [`runner::run_prepared_observed`]
//! with a sink that appends pre-rendered SSE frames to the job's event
//! log; readers replay the log from any index and block on a condvar
//! for the tail.

use crate::json::Json;
use egm_core::StrategySpec;
use egm_simnet::{ProgressEvent, ProgressSink};
use egm_workload::experiments::scale::ScalePreset;
use egm_workload::{runner, Scenario};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Upper bound on events kept per job. Window events from very long
/// runs past the cap are dropped (terminal and summary events are
/// always appended), so one 1M-node job cannot grow without bound.
pub const MAX_JOB_EVENTS: usize = 65_536;

/// Hard cap on runs per submitted job (sweep width).
pub const MAX_RUNS_PER_JOB: usize = 32;

/// One validated run of a job: a scenario plus its display label.
#[derive(Debug, Clone)]
pub struct PlannedRun {
    /// Display label (strategy + sweep value).
    pub label: String,
    /// The validated scenario.
    pub scenario: Scenario,
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing its runs.
    Running,
    /// All runs finished.
    Done,
    /// A run panicked or the job was otherwise aborted.
    Failed,
}

impl JobStatus {
    /// Lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether no further events can be appended.
    pub fn terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

/// Mutable job state behind the [`Job`] mutex.
#[derive(Debug)]
pub struct JobInner {
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Pre-rendered SSE frames (`event: ...\ndata: ...\n\n`).
    pub events: Vec<String>,
    /// Window/chunk events dropped past [`MAX_JOB_EVENTS`].
    pub dropped_events: u64,
    /// Per-run result summaries, in run order.
    pub results: Vec<Json>,
    /// Populated when `status == Failed`.
    pub error: Option<String>,
}

/// One submitted job: id, validated runs, and the event log.
#[derive(Debug)]
pub struct Job {
    /// Job id (dense, assigned at submission).
    pub id: u64,
    /// The validated runs, in execution order.
    pub runs: Vec<PlannedRun>,
    /// Mutable state; lock order is leaf (never held across a run).
    pub inner: Mutex<JobInner>,
    /// Signalled on every event append and status change.
    pub cond: Condvar,
}

impl Job {
    fn new(id: u64, runs: Vec<PlannedRun>) -> Job {
        Job {
            id,
            runs,
            inner: Mutex::new(JobInner {
                status: JobStatus::Queued,
                events: Vec::new(),
                dropped_events: 0,
                results: Vec::new(),
                error: None,
            }),
            cond: Condvar::new(),
        }
    }

    /// Appends one SSE frame (unless it is a droppable kind and the log
    /// is full) and wakes streaming readers.
    pub fn push_event(&self, kind: &str, data: &Json, droppable: bool) {
        let mut inner = self.inner.lock().unwrap();
        if droppable && inner.events.len() >= MAX_JOB_EVENTS {
            inner.dropped_events += 1;
            return;
        }
        let frame = format!("event: {kind}\ndata: {}\n\n", data.render());
        inner.events.push(frame);
        drop(inner);
        self.cond.notify_all();
    }

    /// Status change and its announcement frame land under one lock, so
    /// a streaming reader that observes a terminal status has already
    /// been handed the final frame.
    fn set_status(&self, status: JobStatus, error: Option<String>) {
        let mut data = vec![("status", Json::str(status.name()))];
        if let Some(e) = &error {
            data.push(("error", Json::str(e.clone())));
        }
        let frame = format!("event: status\ndata: {}\n\n", Json::obj(data).render());
        {
            let mut inner = self.inner.lock().unwrap();
            inner.status = status;
            if error.is_some() {
                inner.error = error;
            }
            inner.events.push(frame);
        }
        self.cond.notify_all();
    }

    /// Status summary for `GET /api/jobs[/:id]`.
    pub fn status_json(&self) -> Json {
        let inner = self.inner.lock().unwrap();
        Json::obj(vec![
            ("id", Json::num(self.id as f64)),
            ("status", Json::str(inner.status.name())),
            ("runs", Json::num(self.runs.len() as f64)),
            ("done_runs", Json::num(inner.results.len() as f64)),
            (
                "labels",
                Json::Arr(self.runs.iter().map(|r| Json::str(&r.label)).collect()),
            ),
            ("events", Json::num(inner.events.len() as f64)),
            ("dropped_events", Json::num(inner.dropped_events as f64)),
            ("results", Json::Arr(inner.results.clone())),
            ("error", inner.error.clone().map_or(Json::Null, Json::Str)),
        ])
    }
}

/// The job registry plus the worker queue feeding the pool.
#[derive(Debug, Default)]
pub struct Registry {
    jobs: Mutex<Vec<Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cond: Condvar,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a new job and enqueues it for the worker pool.
    pub fn submit(&self, runs: Vec<PlannedRun>) -> Arc<Job> {
        let mut jobs = self.jobs.lock().unwrap();
        let job = Arc::new(Job::new(jobs.len() as u64, runs));
        jobs.push(job.clone());
        drop(jobs);
        job.push_event(
            "status",
            &Json::obj(vec![("status", Json::str("queued"))]),
            false,
        );
        self.queue.lock().unwrap().push_back(job.clone());
        self.queue_cond.notify_one();
        job
    }

    /// Looks a job up by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().unwrap().get(id as usize).cloned()
    }

    /// All jobs, in submission order.
    pub fn all(&self) -> Vec<Arc<Job>> {
        self.jobs.lock().unwrap().clone()
    }

    /// Blocks until a job is queued and claims it (worker loop body).
    fn claim(&self) -> Arc<Job> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(job) = queue.pop_front() {
                return job;
            }
            queue = self.queue_cond.wait(queue).unwrap();
        }
    }

    /// Spawns `workers` detached worker threads draining the queue.
    pub fn spawn_workers(self: &Arc<Self>, workers: usize) {
        for i in 0..workers.max(1) {
            let registry = self.clone();
            std::thread::Builder::new()
                .name(format!("egm-worker-{i}"))
                .spawn(move || loop {
                    let job = registry.claim();
                    execute(&job);
                })
                .expect("spawn worker thread");
        }
    }
}

/// Runs every scenario of a job, streaming progress into its event log.
fn execute(job: &Arc<Job>) {
    job.set_status(JobStatus::Running, None);
    for (index, run) in job.runs.iter().enumerate() {
        job.push_event(
            "run",
            &Json::obj(vec![
                ("run", Json::num(index as f64)),
                ("label", Json::str(&run.label)),
                ("nodes", Json::num(run.scenario.node_count() as f64)),
                ("messages", Json::num(run.scenario.messages as f64)),
            ]),
            false,
        );
        let sink = Arc::new(JobSink {
            job: job.clone(),
            run: index,
        });
        let scenario = run.scenario.clone();
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let setup = runner::prepare(&scenario, None);
            runner::run_prepared_observed(&scenario, &setup, sink)
        }));
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        match outcome {
            Ok(outcome) => {
                let result = Json::obj(vec![
                    ("run", Json::num(index as f64)),
                    ("label", Json::str(&run.label)),
                    ("events", Json::num(outcome.events as f64)),
                    ("wall_ms", Json::num(wall_ms)),
                    (
                        "events_per_sec",
                        Json::num(outcome.events as f64 / (wall_ms / 1000.0).max(1e-9)),
                    ),
                    (
                        "delivery_fraction",
                        Json::num(outcome.report.mean_delivery_fraction),
                    ),
                    (
                        "payloads_per_delivery",
                        Json::num(outcome.report.payloads_per_delivery),
                    ),
                    ("p50_ms", Json::num(outcome.latency.p50_ms())),
                    ("p99_ms", Json::num(outcome.latency.p99_ms())),
                    ("p999_ms", Json::num(outcome.latency.p999_ms())),
                    ("windows", Json::num(outcome.shard_stats.windows as f64)),
                    ("shards", Json::num(outcome.shard_stats.shards as f64)),
                ]);
                job.inner.lock().unwrap().results.push(result.clone());
                job.push_event("result", &result, false);
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("run panicked")
                    .to_string();
                job.set_status(JobStatus::Failed, Some(format!("run {index}: {msg}")));
                return;
            }
        }
    }
    job.set_status(JobStatus::Done, None);
}

/// The [`ProgressSink`] feeding a job's event log: each engine/runner
/// event becomes one SSE frame tagged with the run index. Window and
/// chunk frames are droppable past [`MAX_JOB_EVENTS`].
#[derive(Debug)]
struct JobSink {
    job: Arc<Job>,
    run: usize,
}

impl ProgressSink for JobSink {
    fn emit(&self, event: ProgressEvent) {
        let run = ("run", Json::num(self.run as f64));
        match event {
            ProgressEvent::Window {
                window,
                now_us,
                events,
            } => self.job.push_event(
                "window",
                &Json::obj(vec![
                    run,
                    ("window", Json::num(window as f64)),
                    ("now_ms", Json::num(now_us as f64 / 1000.0)),
                    ("events", Json::num(events as f64)),
                ]),
                true,
            ),
            ProgressEvent::Chunk { now_ms, events } => self.job.push_event(
                "chunk",
                &Json::obj(vec![
                    run,
                    ("now_ms", Json::num(now_ms)),
                    ("events", Json::num(events as f64)),
                ]),
                true,
            ),
            ProgressEvent::Fault { at_ms, action } => self.job.push_event(
                "fault",
                &Json::obj(vec![
                    run,
                    ("at_ms", Json::num(at_ms)),
                    ("action", Json::str(action)),
                ]),
                false,
            ),
            ProgressEvent::Rerank { tick, at_ms, best } => self.job.push_event(
                "rerank",
                &Json::obj(vec![
                    run,
                    ("tick", Json::num(tick as f64)),
                    ("at_ms", Json::num(at_ms)),
                    ("best", Json::num(best as f64)),
                ]),
                false,
            ),
            ProgressEvent::Summary {
                events,
                delivery_fraction,
                p50_ms,
                p99_ms,
                p999_ms,
            } => self.job.push_event(
                "summary",
                &Json::obj(vec![
                    run,
                    ("events", Json::num(events as f64)),
                    ("delivery_fraction", Json::num(delivery_fraction)),
                    ("p50_ms", Json::num(p50_ms)),
                    ("p99_ms", Json::num(p99_ms)),
                    ("p999_ms", Json::num(p999_ms)),
                ]),
                false,
            ),
        }
    }
}

/// Parses and validates a `POST /api/jobs` body into planned runs.
///
/// Accepted fields (all optional unless noted):
/// - `preset`: a scale-preset label (`"1k"`, `"4k"`, `"10k"`, `"100k"`,
///   `"1m"`) — mutually exclusive with `scenario`;
/// - `scenario`: `"smoke"` (24 nodes) or `"paper"` (100 nodes,
///   the default);
/// - `messages`, `seed`: workload size and experiment seed;
/// - `strategy`: `{"kind":"flat","pi":0.5}`, `{"kind":"ttl","u":2}`,
///   `{"kind":"radius","rho":1.5,"t0_ms":40.0}`, or
///   `{"kind":"ranked","best_fraction":0.2}`;
/// - `shards`: shard-width override (`0` forces the sequential engine;
///   preset jobs default to 4 so progress streams as window frames);
/// - `sweep`: `{"field":"pi"|"best_fraction","values":[..]}` — one run
///   per value, overriding `strategy`.
pub fn parse_job(body: &Json) -> Result<Vec<PlannedRun>, String> {
    if !matches!(body, Json::Obj(_)) {
        return Err("job body must be a JSON object".into());
    }
    let known = [
        "preset", "scenario", "messages", "seed", "strategy", "shards", "sweep",
    ];
    if let Json::Obj(pairs) = body {
        for (key, _) in pairs {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown field '{key}'"));
            }
        }
    }

    let messages = match body.get("messages") {
        Some(v) => {
            let m = v
                .as_u64()
                .ok_or("'messages' must be a non-negative integer")?;
            if m == 0 || m > 100_000 {
                return Err("'messages' must be in 1..=100000".into());
            }
            Some(m as usize)
        }
        None => None,
    };
    let seed = match body.get("seed") {
        Some(v) => Some(v.as_u64().ok_or("'seed' must be a non-negative integer")?),
        None => None,
    };

    // Base scenario through the same constructors the benches use.
    let preset_used = body.get("preset").is_some();
    let mut base = match (body.get("preset"), body.get("scenario")) {
        (Some(_), Some(_)) => return Err("'preset' and 'scenario' are mutually exclusive".into()),
        (Some(p), None) => {
            let label = p.as_str().ok_or("'preset' must be a string")?;
            let preset = ScalePreset::parse(label).ok_or_else(|| {
                format!("unknown preset '{label}' (expected 1k, 4k, 10k, 100k or 1m)")
            })?;
            preset.scenario(messages.unwrap_or(30), seed.unwrap_or(42))
        }
        (None, name) => {
            let name = name.map_or(Ok("paper"), |v| {
                v.as_str().ok_or("'scenario' must be a string")
            })?;
            let mut s = match name {
                "smoke" => Scenario::smoke_test(),
                "paper" => Scenario::paper_default(),
                other => {
                    return Err(format!(
                        "unknown scenario '{other}' (expected 'smoke' or 'paper')"
                    ))
                }
            };
            if let Some(m) = messages {
                s = s.with_messages(m);
            }
            if let Some(seed) = seed {
                s = s.with_seed(seed);
            }
            s
        }
    };

    match body.get("shards") {
        Some(v) => {
            let w = v
                .as_u64()
                .ok_or("'shards' must be a non-negative integer")?;
            if w > 64 {
                return Err("'shards' must be at most 64".into());
            }
            base = base.with_shards(Some(w as usize));
        }
        // Preset (scale) jobs default onto the sharded engine so live
        // progress arrives as conservative-window frames; outcomes are
        // byte-identical either way (the workspace pins that), so this
        // only changes the progress granularity. `"shards": 0` opts back
        // into the sequential engine.
        None if preset_used => base = base.with_shards(Some(4)),
        None => {}
    }

    if let Some(spec) = body.get("strategy") {
        base = base.with_strategy(parse_strategy(spec)?);
    }

    let runs = match body.get("sweep") {
        None => vec![PlannedRun {
            label: base.strategy.label(),
            scenario: base,
        }],
        Some(sweep) => {
            let field = sweep
                .get("field")
                .and_then(Json::as_str)
                .ok_or("'sweep.field' must be a string")?;
            let values = sweep
                .get("values")
                .and_then(Json::as_arr)
                .ok_or("'sweep.values' must be an array of numbers")?;
            if values.is_empty() || values.len() > MAX_RUNS_PER_JOB {
                return Err(format!(
                    "'sweep.values' must hold 1..={MAX_RUNS_PER_JOB} entries"
                ));
            }
            let mut runs = Vec::with_capacity(values.len());
            for v in values {
                let x = v.as_f64().ok_or("'sweep.values' must be numbers")?;
                let strategy = match field {
                    "pi" => check_unit("pi", x).map(|pi| StrategySpec::Flat { pi })?,
                    "best_fraction" => check_fraction(x)
                        .map(|best_fraction| StrategySpec::Ranked { best_fraction })?,
                    other => {
                        return Err(format!(
                            "unknown sweep field '{other}' (expected 'pi' or 'best_fraction')"
                        ))
                    }
                };
                let scenario = base.clone().with_strategy(strategy);
                runs.push(PlannedRun {
                    label: format!("{field}={x}"),
                    scenario,
                });
            }
            runs
        }
    };
    Ok(runs)
}

fn parse_strategy(spec: &Json) -> Result<StrategySpec, String> {
    let kind = spec
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("'strategy.kind' must be a string")?;
    match kind {
        "flat" => {
            let pi = spec
                .get("pi")
                .and_then(Json::as_f64)
                .ok_or("'strategy.pi' must be a number")?;
            check_unit("pi", pi).map(|pi| StrategySpec::Flat { pi })
        }
        "ttl" => {
            let u = spec
                .get("u")
                .and_then(Json::as_u64)
                .ok_or("'strategy.u' must be a non-negative integer")?;
            if u > 64 {
                return Err("'strategy.u' must be at most 64".into());
            }
            Ok(StrategySpec::Ttl { u: u as u32 })
        }
        "radius" => {
            let rho = spec
                .get("rho")
                .and_then(Json::as_f64)
                .ok_or("'strategy.rho' must be a number")?;
            let t0_ms = spec
                .get("t0_ms")
                .and_then(Json::as_f64)
                .ok_or("'strategy.t0_ms' must be a number")?;
            if !(0.0..=1e6).contains(&rho) {
                return Err("'strategy.rho' must lie in [0, 1e6]".into());
            }
            if !(0.0..=1e6).contains(&t0_ms) {
                return Err("'strategy.t0_ms' must lie in [0, 1e6]".into());
            }
            Ok(StrategySpec::Radius { rho, t0_ms })
        }
        "ranked" => {
            let f = spec
                .get("best_fraction")
                .and_then(Json::as_f64)
                .ok_or("'strategy.best_fraction' must be a number")?;
            check_fraction(f).map(|best_fraction| StrategySpec::Ranked { best_fraction })
        }
        other => Err(format!(
            "unknown strategy kind '{other}' (expected 'flat', 'ttl', 'radius' or 'ranked')"
        )),
    }
}

fn check_unit(name: &str, x: f64) -> Result<f64, String> {
    if (0.0..=1.0).contains(&x) {
        Ok(x)
    } else {
        Err(format!("'{name}' must lie in [0, 1]"))
    }
}

fn check_fraction(x: f64) -> Result<f64, String> {
    if x > 0.0 && x <= 1.0 {
        Ok(x)
    } else {
        Err("'best_fraction' must lie in (0, 1]".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_job() {
        let body = Json::parse(r#"{"scenario":"smoke","messages":5,"seed":7}"#).unwrap();
        let runs = parse_job(&body).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].scenario.messages, 5);
        assert_eq!(runs[0].scenario.seed, 7);
        assert_eq!(runs[0].scenario.node_count(), 24);
    }

    #[test]
    fn parses_a_preset_job_with_sweep() {
        let body = Json::parse(
            r#"{"preset":"1k","messages":10,"sweep":{"field":"pi","values":[0,0.5,1]}}"#,
        )
        .unwrap();
        let runs = parse_job(&body).unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].scenario.node_count(), 1000);
        assert_eq!(runs[2].label, "pi=1");
    }

    #[test]
    fn rejects_invalid_submissions() {
        for (body, needle) in [
            (r#"{"preset":"9k"}"#, "unknown preset"),
            (r#"{"scenario":"huge"}"#, "unknown scenario"),
            (
                r#"{"preset":"1k","scenario":"smoke"}"#,
                "mutually exclusive",
            ),
            (r#"{"messages":0}"#, "messages"),
            (r#"{"strategy":{"kind":"flat","pi":1.5}}"#, "[0, 1]"),
            (r#"{"bogus":1}"#, "unknown field"),
            (r#"[1]"#, "object"),
        ] {
            let err = parse_job(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn registry_runs_a_smoke_job_to_completion() {
        let registry = Arc::new(Registry::new());
        registry.spawn_workers(1);
        let body = Json::parse(r#"{"scenario":"smoke","messages":5}"#).unwrap();
        let job = registry.submit(parse_job(&body).unwrap());
        let mut inner = job.inner.lock().unwrap();
        while !inner.status.terminal() {
            inner = job.cond.wait(inner).unwrap();
        }
        assert_eq!(inner.status, JobStatus::Done, "{:?}", inner.error);
        assert_eq!(inner.results.len(), 1);
        let frames = inner.events.join("");
        assert!(frames.contains("event: chunk") || frames.contains("event: window"));
        assert!(frames.contains("event: summary"));
    }
}
