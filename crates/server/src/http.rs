//! Minimal HTTP/1.1 plumbing: request parsing, response writing, and
//! SSE framing over a plain [`TcpStream`].
//!
//! One connection serves one request (`Connection: close`), which keeps
//! the server free of keep-alive state machines; SSE connections stay
//! open for the lifetime of their stream. Request bodies are bounded by
//! [`MAX_BODY_BYTES`].

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on accepted request bodies (jobs are small JSON specs).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, percent-decoded-free path, and body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request path without the query string.
    pub path: String,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Reads one request from the stream. Returns `None` on a closed or
/// malformed connection (the caller just drops it).
pub fn read_request(stream: &mut BufReader<TcpStream>) -> Option<Request> {
    let mut line = String::new();
    if stream.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if stream.read_line(&mut header).ok()? == 0 {
            return None;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        stream.read_exact(&mut body).ok()?;
    }
    Some(Request { method, path, body })
}

/// Writes a complete response with the given status line, content type
/// and body, then closes (via `Connection: close`).
pub fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nAccess-Control-Allow-Origin: *\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Writes a JSON response.
pub fn respond_json(stream: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    respond(stream, status, "application/json", body)
}

/// Writes a JSON error envelope `{"error": ...}`.
pub fn respond_error(stream: &mut TcpStream, status: &str, message: &str) -> io::Result<()> {
    let body = crate::json::Json::obj(vec![("error", crate::json::Json::str(message))]).render();
    respond_json(stream, status, &body)
}

/// Starts an SSE response: headers only; the caller then writes frames
/// (`event: ...\ndata: ...\n\n`) as they become available and keeps the
/// connection open until the stream ends.
pub fn start_sse(stream: &mut TcpStream) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nAccess-Control-Allow-Origin: *\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}
