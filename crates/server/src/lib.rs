//! `egm_server` — the live simulation service.
//!
//! Wraps the deterministic runner in a long-running HTTP service: jobs
//! are submitted as JSON (`POST /api/jobs`), validated against the same
//! scenario builders the benches use, executed on a bounded worker pool
//! via `runner::prepare` / `run_prepared_observed`, and observed live
//! over a server-sent-event stream (`GET /api/jobs/:id/events`) fed by
//! the [`egm_simnet::ProgressSink`] hooks in the runner and the sharded
//! window loop. `GET /api/bench` serves the benchmark record history
//! through `egm_bench::record`, and `/` serves a minimal vanilla-JS
//! dashboard. The full API is documented in `crates/server/README.md`;
//! the progress hooks are observe-only, so a served run is
//! byte-identical to the same scenario run from the CLI (the workload
//! `progress_determinism` test pins this).
//!
//! The transport is a plain `std::net` HTTP/1.1 + SSE implementation —
//! the build environment vendors its few dependencies offline and has
//! no async stack; see `Cargo.toml` for the trade-off note.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod jobs;
pub mod json;

use jobs::{parse_job, Registry};
use json::Json;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

/// Embedded dashboard page, served at `/`.
pub const INDEX_HTML: &str = include_str!("../static/index.html");
/// Embedded dashboard script, served at `/app.js`.
pub const APP_JS: &str = include_str!("../static/app.js");

/// Server configuration; see [`ServerConfig::from_env`] for the
/// environment mapping.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads executing jobs (the job queue is unbounded, the
    /// pool is not).
    pub workers: usize,
    /// Path of the benchmark record served by `GET /api/bench`.
    pub bench_path: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            bench_path: PathBuf::from("BENCH_events_per_sec.json"),
        }
    }
}

impl ServerConfig {
    /// Reads the configuration from the environment: `EGM_SERVER_ADDR`
    /// (default `127.0.0.1:7878`), `EGM_SERVER_WORKERS` (default 2),
    /// and `EGM_BENCH_OUT` (default `BENCH_events_per_sec.json`, the
    /// same variable the benches write through).
    pub fn from_env() -> ServerConfig {
        let defaults = ServerConfig::default();
        ServerConfig {
            addr: std::env::var("EGM_SERVER_ADDR").unwrap_or(defaults.addr),
            workers: std::env::var("EGM_SERVER_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&w| w > 0)
                .unwrap_or(defaults.workers),
            bench_path: std::env::var("EGM_BENCH_OUT")
                .map(PathBuf::from)
                .unwrap_or(defaults.bench_path),
        }
    }
}

/// The benchmark record re-serialized through the bench parser: parse
/// to bins, render back. Because `egm_bench::record::render_bins` is a
/// fixed point of its own output format (every writer goes through it),
/// the response is byte-identical to the checked-in file — the server
/// round-trip test asserts exactly that.
pub fn bench_json(path: &std::path::Path) -> io::Result<String> {
    let text = std::fs::read_to_string(path)?;
    let bins = egm_bench::record::parse_bins(&text);
    Ok(egm_bench::record::render_bins(&bins))
}

struct AppState {
    registry: Arc<Registry>,
    config: ServerConfig,
}

/// The HTTP server: a bound listener plus the job registry and worker
/// pool. Construct with [`Server::bind`], then either [`Server::serve`]
/// (blocking) or [`Server::spawn`] (background thread, for tests).
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let registry = Arc::new(Registry::new());
        registry.spawn_workers(config.workers);
        Ok(Server {
            listener,
            state: Arc::new(AppState { registry, config }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: one thread per connection. Worker threads and
    /// connection threads are detached; the process exits to stop them.
    pub fn serve(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let state = self.state.clone();
            std::thread::spawn(move || handle_connection(stream, &state));
        }
        Ok(())
    }

    /// Starts [`Server::serve`] on a background thread and returns the
    /// bound address — the test harness entry point.
    pub fn spawn(self) -> io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::Builder::new()
            .name("egm-server-accept".to_string())
            .spawn(move || {
                let _ = self.serve();
            })?;
        Ok(addr)
    }
}

fn handle_connection(stream: TcpStream, state: &AppState) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let Some(req) = http::read_request(&mut reader) else {
        return;
    };
    let _ = route(&mut stream, &req, state);
}

fn route(stream: &mut TcpStream, req: &http::Request, state: &AppState) -> io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => http::respond(stream, "200 OK", "text/html; charset=utf-8", INDEX_HTML),
        ("GET", "/app.js") => {
            http::respond(stream, "200 OK", "text/javascript; charset=utf-8", APP_JS)
        }
        ("GET", "/api/bench") => match bench_json(&state.config.bench_path) {
            Ok(body) => http::respond_json(stream, "200 OK", &body),
            Err(e) => http::respond_error(
                stream,
                "404 Not Found",
                &format!(
                    "no benchmark record at {}: {e}",
                    state.config.bench_path.display()
                ),
            ),
        },
        ("GET", "/api/jobs") => {
            let jobs: Vec<Json> = state
                .registry
                .all()
                .iter()
                .map(|job| job.status_json())
                .collect();
            http::respond_json(
                stream,
                "200 OK",
                &Json::obj(vec![("jobs", Json::Arr(jobs))]).render(),
            )
        }
        ("POST", "/api/jobs") => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(text) => text,
                Err(_) => {
                    return http::respond_error(stream, "400 Bad Request", "body is not UTF-8")
                }
            };
            let parsed = match Json::parse(body) {
                Ok(v) => v,
                Err(e) => {
                    return http::respond_error(
                        stream,
                        "400 Bad Request",
                        &format!("invalid JSON: {e}"),
                    )
                }
            };
            match parse_job(&parsed) {
                Ok(runs) => {
                    let job = state.registry.submit(runs);
                    http::respond_json(
                        stream,
                        "201 Created",
                        &Json::obj(vec![
                            ("id", Json::num(job.id as f64)),
                            ("runs", Json::num(job.runs.len() as f64)),
                            ("status", Json::str("queued")),
                        ])
                        .render(),
                    )
                }
                Err(e) => http::respond_error(stream, "400 Bad Request", &e),
            }
        }
        ("GET", path) if path.starts_with("/api/jobs/") => {
            let rest = &path["/api/jobs/".len()..];
            let (id, events) = match rest.strip_suffix("/events") {
                Some(id) => (id, true),
                None => (rest, false),
            };
            let Ok(id) = id.parse::<u64>() else {
                return http::respond_error(stream, "400 Bad Request", "job id must be an integer");
            };
            let Some(job) = state.registry.get(id) else {
                return http::respond_error(stream, "404 Not Found", &format!("no job {id}"));
            };
            if events {
                stream_job_events(stream, &job)
            } else {
                http::respond_json(stream, "200 OK", &job.status_json().render())
            }
        }
        _ => http::respond_error(stream, "404 Not Found", "no such route"),
    }
}

/// Streams a job's event log as SSE: replay from the start, then follow
/// the tail until the job reaches a terminal status and every frame has
/// been flushed (the stream then ends; `EventSource` clients should
/// close on the final `status` event to avoid auto-reconnect).
fn stream_job_events(stream: &mut TcpStream, job: &jobs::Job) -> io::Result<()> {
    http::start_sse(stream)?;
    let mut sent = 0usize;
    loop {
        let (frames, done) = {
            let mut inner = job.inner.lock().unwrap();
            while inner.events.len() == sent && !inner.status.terminal() {
                inner = job.cond.wait(inner).unwrap();
            }
            // A terminal status and its final frame are appended under
            // one lock, so `done` implies the copy below is complete.
            (inner.events[sent..].to_vec(), inner.status.terminal())
        };
        for frame in &frames {
            stream.write_all(frame.as_bytes())?;
        }
        stream.flush()?;
        sent += frames.len();
        if done {
            return Ok(());
        }
    }
}
