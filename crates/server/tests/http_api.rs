//! End-to-end HTTP API tests: spawn the server on an ephemeral port and
//! exercise every documented endpoint with raw `std::net` requests —
//! the same surface the `server-smoke` CI job drives with `curl`.

use egm_server::json::Json;
use egm_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn bench_record_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_events_per_sec.json")
}

fn spawn_server() -> SocketAddr {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        bench_path: bench_record_path(),
    };
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop")
}

/// One request/response over a fresh connection (the server speaks
/// `Connection: close`). Returns `(status_line, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .lines()
        .next()
        .expect("status line present")
        .to_string();
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn get_json(addr: SocketAddr, path: &str) -> (String, Json) {
    let (status, body) = request(addr, "GET", path, None);
    (status, Json::parse(&body).expect("JSON body"))
}

#[test]
fn bench_endpoint_round_trips_the_checked_in_record() {
    let addr = spawn_server();
    let (status, body) = request(addr, "GET", "/api/bench", None);
    assert_eq!(status, "HTTP/1.1 200 OK");
    let on_disk = std::fs::read_to_string(bench_record_path()).expect("checked-in bench record");
    // parse_bins -> render_bins must be the identity on the checked-in
    // file: every writer goes through render_bins, so the served bytes
    // match the repository bytes exactly (satellite 5).
    assert_eq!(body, on_disk);
}

#[test]
fn dashboard_assets_are_served() {
    let addr = spawn_server();
    let (status, body) = request(addr, "GET", "/", None);
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("<script src=\"/app.js\">"));
    let (status, body) = request(addr, "GET", "/app.js", None);
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("EventSource"));
}

#[test]
fn rejects_bad_submissions_and_unknown_routes() {
    let addr = spawn_server();
    let (status, body) = request(addr, "POST", "/api/jobs", Some("{not json"));
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("invalid JSON"));

    let (status, body) = request(
        addr,
        "POST",
        "/api/jobs",
        Some(r#"{"scenario":"smoke","bogus":1}"#),
    );
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("unknown field"));

    let (status, _) = request(addr, "GET", "/api/jobs/9999", None);
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    let (status, _) = request(addr, "GET", "/api/nope", None);
    assert_eq!(status, "HTTP/1.1 404 Not Found");
}

/// Submits a job, follows its SSE stream to completion, and returns the
/// collected `event:` kinds in order.
fn run_job_and_collect_events(addr: SocketAddr, spec: &str) -> (u64, Vec<String>) {
    let (status, body) = request(addr, "POST", "/api/jobs", Some(spec));
    assert_eq!(status, "HTTP/1.1 201 Created", "submit failed: {body}");
    let id = Json::parse(&body)
        .expect("submit response JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("job id");

    let mut stream = TcpStream::connect(addr).expect("connect SSE");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "GET /api/jobs/{id}/events HTTP/1.1\r\nHost: test\r\n\r\n"
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("SSE status line");
    assert!(line.starts_with("HTTP/1.1 200 OK"), "SSE refused: {line}");

    // The stream ends (EOF) once the job is terminal and flushed.
    let mut kinds = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read SSE frame") == 0 {
            break;
        }
        if let Some(kind) = line.trim_end().strip_prefix("event: ") {
            kinds.push(kind.to_string());
        }
    }
    (id, kinds)
}

#[test]
fn smoke_job_streams_progress_and_completes() {
    let addr = spawn_server();
    let (id, kinds) = run_job_and_collect_events(
        addr,
        r#"{"scenario":"smoke","messages":5,"seed":7,"strategy":{"kind":"ranked","best_fraction":0.25}}"#,
    );

    // The smoke scenario runs on the sequential engine, so progress
    // arrives as runner-level chunk frames.
    assert!(
        kinds.iter().any(|k| k == "chunk" || k == "window"),
        "no progress frames in {kinds:?}"
    );
    assert!(kinds.iter().any(|k| k == "summary"));
    assert!(kinds.iter().any(|k| k == "result"));
    assert_eq!(kinds.last().map(String::as_str), Some("status"));

    let (status, job) = get_json(addr, &format!("/api/jobs/{id}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(job.get("done_runs").and_then(Json::as_u64), Some(1));

    let (status, jobs) = get_json(addr, "/api/jobs");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        jobs.get("jobs").and_then(Json::as_arr).map(<[Json]>::len),
        Some(1)
    );
}

#[test]
fn sweep_job_runs_every_value() {
    let addr = spawn_server();
    let (id, kinds) = run_job_and_collect_events(
        addr,
        r#"{"scenario":"smoke","messages":3,"seed":1,"strategy":{"kind":"ranked","best_fraction":0.5},"sweep":{"field":"best_fraction","values":[0.25,0.5]}}"#,
    );
    assert_eq!(kinds.iter().filter(|k| *k == "result").count(), 2);
    let (_, job) = get_json(addr, &format!("/api/jobs/{id}"));
    assert_eq!(job.get("done_runs").and_then(Json::as_u64), Some(2));
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
}

/// The acceptance-criterion run: the 1k preset (1000 nodes) routes onto
/// the sharded engine, so progress must arrive as conservative-window
/// frames — at least one per executed window batch. Slower than the
/// tier-1 budget allows, hence ignored by default; CI's `server-smoke`
/// job drives the same path over curl.
#[test]
#[ignore = "multi-second 1k-preset run; exercised by the server-smoke CI job"]
fn preset_1k_job_streams_window_events_to_completion() {
    let addr = spawn_server();
    let (id, kinds) =
        run_job_and_collect_events(addr, r#"{"preset":"1k","messages":10,"seed":42}"#);
    let windows = kinds.iter().filter(|k| *k == "window").count() as u64;
    assert!(windows >= 1, "no window frames in {kinds:?}");
    let (_, job) = get_json(addr, &format!("/api/jobs/{id}"));
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    let results = job.get("results").and_then(Json::as_arr).expect("results");
    let reported = results[0]
        .get("windows")
        .and_then(Json::as_u64)
        .expect("windows");
    // One SSE window frame per executed window batch (minus any frames
    // dropped past the event-log cap, which a 10-message run never hits).
    assert_eq!(windows, reported);
}
