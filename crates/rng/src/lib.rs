//! Self-contained deterministic pseudo-random number generation.
//!
//! All stochastic components of the reproduction (topology generation, the
//! discrete-event simulator, protocol randomness) draw from [`Rng`], an
//! implementation of the xoshiro256\*\* generator seeded through SplitMix64.
//! Keeping the generator in-tree guarantees that a given seed produces the
//! same experiment forever, independent of external crate version bumps —
//! a property the paper's methodology (§5.4, confidence intervals over
//! repeated runs) depends on.
//!
//! # Examples
//!
//! ```
//! use egm_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.range_usize(1, 7); // uniform in [1, 7)
//! assert!((1..7).contains(&die));
//!
//! // Forked streams are independent but fully determined by the parent seed.
//! let mut child = rng.fork();
//! let _ = child.next_u64();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod xoshiro;

pub use xoshiro::Rng;

/// Fast, deterministic hashing for simulator-internal maps.
///
/// The event loop hashes message ids and link pairs on every send and
/// receive; `std`'s default SipHash (with its per-process random seed) is
/// both slower and non-reproducible across processes. This FxHash-style
/// multiply-rotate hasher is deterministic and an order of magnitude
/// cheaper on small fixed-size keys. It is **not** DoS-resistant — use it
/// only for keys the simulation itself generates, never for untrusted
/// input.
pub mod hash {
    use std::hash::{BuildHasherDefault, Hasher};

    /// `HashMap` keyed by the deterministic [`FxHasher`].
    pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
    /// `HashSet` keyed by the deterministic [`FxHasher`].
    pub type FastHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    /// FxHash-style multiply-rotate hasher (as used by rustc).
    #[derive(Debug, Default, Clone)]
    pub struct FxHasher {
        hash: u64,
    }

    impl FxHasher {
        #[inline]
        fn add(&mut self, word: u64) {
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
    }

    impl Hasher for FxHasher {
        #[inline]
        fn write(&mut self, bytes: &[u8]) {
            for chunk in bytes.chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                self.add(u64::from_le_bytes(buf));
            }
        }

        #[inline]
        fn write_u8(&mut self, n: u8) {
            self.add(u64::from(n));
        }

        #[inline]
        fn write_u32(&mut self, n: u32) {
            self.add(u64::from(n));
        }

        #[inline]
        fn write_u64(&mut self, n: u64) {
            self.add(n);
        }

        #[inline]
        fn write_usize(&mut self, n: usize) {
            self.add(n as u64);
        }

        #[inline]
        fn finish(&self) -> u64 {
            self.hash
        }
    }
}

/// Extension helpers for sampling from collections.
///
/// These are free functions rather than methods on `Rng` where they would
/// otherwise force generic parameters onto every call site.
pub mod sample {
    use super::Rng;

    /// Returns `k` distinct indices drawn uniformly from `0..n`.
    ///
    /// Uses Floyd's algorithm, which performs `k` insertions regardless of
    /// `n`. The result is in insertion order (not sorted, not uniform over
    /// permutations — uniform over *sets*).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn distinct_indices(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        distinct_indices_into(rng, n, k, &mut chosen);
        chosen
    }

    /// [`distinct_indices`] into a caller-owned buffer (cleared first).
    ///
    /// Draws exactly the same index sequence as `distinct_indices` for
    /// the same RNG state, but lets hot paths (gossip target sampling,
    /// shuffle subsets) reuse one scratch vector instead of allocating
    /// per call.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn distinct_indices_into(rng: &mut Rng, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        out.clear();
        for j in (n - k)..n {
            let t = rng.range_usize(0, j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
    }

    /// Draws one element uniformly from a non-empty slice.
    ///
    /// Returns `None` when the slice is empty.
    pub fn choose<'a, T>(rng: &mut Rng, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[rng.range_usize(0, items.len())])
        }
    }

    /// Fisher–Yates shuffle of a mutable slice.
    pub fn shuffle<T>(rng: &mut Rng, items: &mut [T]) {
        let n = items.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = rng.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sample::{choose, distinct_indices, shuffle};
    use super::Rng;
    use std::collections::HashSet;

    #[test]
    fn distinct_indices_are_distinct_and_in_range() {
        let mut rng = Rng::seed_from_u64(7);
        for n in [1usize, 2, 5, 17, 100] {
            for k in [0usize, 1, n / 2, n] {
                let picks = distinct_indices(&mut rng, n, k);
                assert_eq!(picks.len(), k);
                let set: HashSet<_> = picks.iter().copied().collect();
                assert_eq!(set.len(), k, "duplicates in {picks:?}");
                assert!(picks.iter().all(|&i| i < n));
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn distinct_indices_rejects_oversample() {
        let mut rng = Rng::seed_from_u64(1);
        let _ = distinct_indices(&mut rng, 3, 4);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(choose(&mut rng, &empty).is_none());
        assert_eq!(choose(&mut rng, &[9]), Some(&9));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_indices_cover_all_eventually() {
        // Sampling n-of-n must return every index.
        let mut rng = Rng::seed_from_u64(5);
        let picks = distinct_indices(&mut rng, 12, 12);
        let set: HashSet<_> = picks.into_iter().collect();
        assert_eq!(set.len(), 12);
    }
}

#[cfg(test)]
mod hash_tests {
    use super::hash::{FastHashMap, FastHashSet, FxHasher};
    use std::hash::{Hash, Hasher};

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            v.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(42), h(42), "same input, same hash");
        let distinct: std::collections::HashSet<u64> = (0..10_000).map(h).collect();
        assert_eq!(distinct.len(), 10_000, "no collisions on small ints");
    }

    #[test]
    fn fast_collections_behave_like_std() {
        let mut m: FastHashMap<(u32, u32), u64> = FastHashMap::default();
        m.insert((1, 2), 10);
        m.insert((1, 2), 20);
        assert_eq!(m.get(&(1, 2)), Some(&20));
        assert_eq!(m.len(), 1);
        let mut s: FastHashSet<u128> = FastHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
