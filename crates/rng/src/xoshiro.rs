//! xoshiro256\*\* core generator with SplitMix64 seeding and common
//! distributions (uniform ranges, Bernoulli, exponential, normal).

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// The generator is `Clone` (cloning duplicates the stream) and supports
/// [`Rng::fork`] to derive an independent child stream, which is how the
/// simulator hands per-node randomness out of a single experiment seed.
///
/// # Examples
///
/// ```
/// use egm_rng::Rng;
///
/// let mut a = Rng::seed_from_u64(1);
/// let mut b = Rng::seed_from_u64(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step used for seed expansion, as recommended by the xoshiro
/// authors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    ///
    /// Any seed (including 0) yields a valid, non-degenerate state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator from this one.
    ///
    /// The child's stream is fully determined by the parent's state at the
    /// time of the call; the parent advances by one draw.
    pub fn fork(&mut self) -> Self {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `u64` in `[lo, hi)` using Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Samples an exponentially distributed value with the given mean.
    ///
    /// Used for e.g. inter-arrival jitter. Returns 0 for `mean <= 0` and for
    /// non-finite means (`NaN`, `±∞`), so a malformed rate spec can never
    /// produce a `NaN` event time that would corrupt queue ordering. The
    /// result is always finite and non-negative.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if !mean.is_finite() || mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1 - f64() is in (0, 1] so ln is finite. The min()
        // guards against overflow to +inf for astronomically large means.
        (-mean * (1.0 - self.f64()).ln()).min(f64::MAX)
    }

    /// Samples a normally distributed value via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::seed_from_u64(0xDEAD_BEEF);
        let mut b = Rng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = Rng::seed_from_u64(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_u64_hits_all_values_of_small_range() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.range_u64(0, 6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v = rng.range_u64(17, 42);
            assert!((17..42).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_u64_rejects_empty() {
        let mut rng = Rng::seed_from_u64(7);
        let _ = rng.range_u64(5, 5);
    }

    #[test]
    fn bool_extremes() {
        let mut rng = Rng::seed_from_u64(8);
        assert!(!rng.bool(0.0));
        assert!(rng.bool(1.0));
        assert!(!rng.bool(-1.0));
        assert!(rng.bool(2.0));
    }

    #[test]
    fn bool_probability_is_calibrated() {
        let mut rng = Rng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn exponential_mean_is_calibrated() {
        let mut rng = Rng::seed_from_u64(10);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(250.0)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-3.0), 0.0);
    }

    #[test]
    fn exponential_clamps_malformed_means() {
        let mut rng = Rng::seed_from_u64(13);
        assert_eq!(rng.exponential(f64::NAN), 0.0);
        assert_eq!(rng.exponential(f64::INFINITY), 0.0);
        assert_eq!(rng.exponential(f64::NEG_INFINITY), 0.0);
        // A huge-but-finite mean must still yield a finite sample.
        for _ in 0..1000 {
            let v = rng.exponential(f64::MAX);
            assert!(v.is_finite() && v >= 0.0, "sample {v}");
        }
    }

    #[test]
    fn normal_moments_are_calibrated() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn clone_duplicates_stream() {
        let mut a = Rng::seed_from_u64(12);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
