//! Equivalence suite for the sharded event loop.
//!
//! The sharded engine is only allowed to exist because it is
//! indistinguishable from the sequential one: identical per-node dispatch
//! traces, identical counters, identical sealed traffic (including the
//! first-appearance spill order) for every shard count and both window
//! drivers. Layers:
//!
//! 1. **Partitioner properties** — every node lands in exactly one
//!    contiguous shard range, for arbitrary `(n, W)`.
//! 2. **Lookahead exactness** — the window lookahead's latency floor
//!    equals the true minimum cross-shard latency (brute-forced over all
//!    pairs) on dense and routed models.
//! 3. **Full-simulation lockstep** — a chaos protocol (bursty sends,
//!    same-tick ties, cancellable timers armed and cancelled from the
//!    node RNG streams, fault injection) runs once sequentially and once
//!    per shard width; all observable outputs must match byte for byte.
//!
//! The CI `shard-equivalence` job runs this suite with a fixed case
//! count (`PROPTEST_CASES`).

use egm_simnet::{
    Context, LinkTally, NodeId, Partition, PartitionStrategy, Protocol, ShardedSim, Sim, SimConfig,
    SimDuration, SimTime, TimerToken, Wire,
};
use egm_topology::{RoutedModel, TransitStubConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Probe(u64);

impl Wire for Probe {
    fn wire_bytes(&self) -> u32 {
        24
    }
    fn is_payload(&self) -> bool {
        true
    }
}

/// A `Send` chaos node: every dispatch appends to the node's *own* trace
/// (kind, virtual time, detail), so comparing per-node traces compares
/// the complete global dispatch behaviour without shared state.
struct Chaos {
    trace: Vec<(u8, u64, u64)>,
    tokens: Vec<TimerToken>,
    budget: u32,
}

impl Chaos {
    fn new(budget: u32) -> Self {
        Chaos {
            trace: Vec::new(),
            tokens: Vec::new(),
            budget,
        }
    }

    /// Drives send/schedule/cancel decisions from the node's
    /// deterministic RNG stream; both engines see identical streams, so
    /// any trace divergence is the engine's fault.
    fn act(&mut self, ctx: &mut Context<'_, Probe>) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let n = ctx.node_count();
        for _ in 0..2 {
            match ctx.rng().range_usize(0, 6) {
                0 => {
                    let delay = SimDuration::from_micros(ctx.rng().range_usize(0, 5_000) as u64);
                    ctx.set_timer(delay, 1);
                }
                1 => {
                    let delay = SimDuration::from_micros(ctx.rng().range_usize(0, 9_000) as u64);
                    let token = ctx.set_cancellable_timer(delay, 2);
                    self.tokens.push(token);
                }
                2 => {
                    if !self.tokens.is_empty() {
                        let i = ctx.rng().range_usize(0, self.tokens.len());
                        let token = self.tokens.swap_remove(i);
                        ctx.cancel_timer(token);
                    }
                }
                3 | 4 => {
                    let to = NodeId(ctx.rng().range_usize(0, n));
                    let stamp = ctx.now().as_micros();
                    ctx.send(to, Probe(stamp));
                }
                _ => {
                    // Same-tick tie: a zero-delay self-timer.
                    ctx.set_timer(SimDuration::ZERO, 3);
                }
            }
        }
    }
}

impl Protocol for Chaos {
    type Msg = Probe;

    fn on_start(&mut self, ctx: &mut Context<'_, Probe>) {
        self.trace.push((0, 0, 0));
        let first = SimDuration::from_micros(ctx.rng().range_usize(0, 500) as u64);
        ctx.set_timer(first, 0);
    }

    fn on_receive(&mut self, ctx: &mut Context<'_, Probe>, from: NodeId, msg: Probe) {
        self.trace.push((
            1,
            ctx.now().as_micros(),
            ((from.index() as u64) << 32) | msg.0 & 0xFFFF_FFFF,
        ));
        self.act(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Probe>, tag: u64) {
        self.trace.push((2, ctx.now().as_micros(), tag));
        self.act(ctx);
    }

    fn on_command(&mut self, ctx: &mut Context<'_, Probe>, value: u64) {
        self.trace.push((3, ctx.now().as_micros(), value));
        // A multicast-like burst, including same-tick fan-out.
        let n = ctx.node_count();
        for k in 0..3 {
            let to = NodeId((value as usize + k * 7 + 1) % n);
            ctx.send(to, Probe(value));
        }
        self.act(ctx);
    }
}

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct Snapshot {
    traces: Vec<Vec<(u8, u64, u64)>>,
    events: u64,
    cancelled: u64,
    stale_drops: u64,
    total_messages: u64,
    total_bytes: u64,
    total_payloads: u64,
    links: Vec<((NodeId, NodeId), LinkTally)>,
    spilled: LinkTally,
    link_count: usize,
    payloads_per_node: Vec<u64>,
    now_us: u64,
}

/// One scripted workload: harness commands plus fault injection.
#[derive(Debug, Clone)]
struct Script {
    n: usize,
    seed: u64,
    budget: u32,
    commands: Vec<(u64, usize, u64)>,
    faults: Vec<(u64, usize, u64)>,
    deadline_us: u64,
}

enum Engine {
    Seq(Box<Sim<Chaos>>),
    Sharded(Box<ShardedSim<Chaos>>),
}

fn run_script(config: SimConfig, script: &Script, shards: Option<(usize, bool)>) -> Snapshot {
    let nodes: Vec<Chaos> = (0..script.n).map(|_| Chaos::new(script.budget)).collect();
    let mut engine = match shards {
        None => Engine::Seq(Box::new(Sim::new(config, script.seed, nodes))),
        Some((w, threaded)) => {
            let mut sim = ShardedSim::new(config, script.seed, nodes, w);
            sim.set_threaded(threaded);
            Engine::Sharded(Box::new(sim))
        }
    };
    for &(at, node, value) in &script.commands {
        let (at, node) = (SimTime::from_micros(at), NodeId(node % script.n));
        match &mut engine {
            Engine::Seq(s) => s.schedule_command(at, node, value),
            Engine::Sharded(s) => s.schedule_command(at, node, value),
        }
    }
    for &(at, node, down_us) in &script.faults {
        let node = NodeId(node % script.n);
        let (down, up) = (SimTime::from_micros(at), SimTime::from_micros(at + down_us));
        match &mut engine {
            Engine::Seq(s) => {
                s.schedule_silence(down, node);
                s.schedule_revive(up, node);
            }
            Engine::Sharded(s) => {
                s.schedule_silence(down, node);
                s.schedule_revive(up, node);
            }
        }
    }
    let deadline = SimTime::from_micros(script.deadline_us);
    match engine {
        Engine::Seq(mut s) => {
            s.run_until(deadline);
            s.seal_traffic();
            let t = s.traffic();
            Snapshot {
                traces: s.nodes().map(|(_, n)| n.trace.clone()).collect(),
                events: s.events_processed(),
                cancelled: s.timers_cancelled(),
                stale_drops: s.stale_timer_drops(),
                total_messages: t.total_messages(),
                total_bytes: t.total_bytes(),
                total_payloads: t.total_payloads(),
                links: t.links(),
                spilled: t.spilled(),
                link_count: t.link_count(),
                payloads_per_node: t.payloads_sent_per_node(script.n),
                now_us: s.now().as_micros(),
            }
        }
        Engine::Sharded(mut s) => {
            s.run_until(deadline);
            s.seal_traffic();
            let t = s.traffic();
            Snapshot {
                traces: s.nodes().map(|(_, n)| n.trace.clone()).collect(),
                events: s.events_processed(),
                cancelled: s.timers_cancelled(),
                stale_drops: s.stale_timer_drops(),
                total_messages: t.total_messages(),
                total_bytes: t.total_bytes(),
                total_payloads: t.total_payloads(),
                links: t.links(),
                spilled: t.spilled(),
                link_count: t.link_count(),
                payloads_per_node: t.payloads_sent_per_node(script.n),
                now_us: s.now().as_micros(),
            }
        }
    }
}

fn default_script(n: usize, seed: u64) -> Script {
    Script {
        n,
        seed,
        budget: 40,
        commands: (0..8)
            .map(|k| (1_000 + k * 3_700, (seed as usize + k as usize) % n, k))
            .collect(),
        faults: vec![(9_000, seed as usize % n, 15_000)],
        deadline_us: 80_000,
    }
}

// --- fixed-scenario lockstep ----------------------------------------------

#[test]
fn sharded_matches_sequential_on_uniform_network() {
    let script = default_script(12, 7);
    let config = || SimConfig::uniform(12, 3.0);
    let seq = run_script(config(), &script, None);
    for w in [1, 2, 3, 4] {
        for threaded in [false, true] {
            let sharded = run_script(config(), &script, Some((w, threaded)));
            assert_eq!(seq, sharded, "divergence at W={w}, threaded={threaded}");
        }
    }
}

#[test]
fn sharded_matches_sequential_with_loss_jitter_and_spill() {
    let script = default_script(10, 21);
    let config = || {
        SimConfig::uniform(10, 2.5)
            .with_loss(0.2)
            .with_jitter(0.15)
            .with_link_spill_threshold(12)
    };
    let seq = run_script(config(), &script, None);
    assert!(
        seq.spilled.messages > 0,
        "the scenario must actually exercise the spill rule"
    );
    for w in [2, 4] {
        for threaded in [false, true] {
            let sharded = run_script(config(), &script, Some((w, threaded)));
            assert_eq!(seq, sharded, "divergence at W={w}, threaded={threaded}");
        }
    }
}

#[test]
fn sharded_matches_sequential_on_routed_model() {
    let model = TransitStubConfig::small().with_clients(40).build();
    let script = default_script(40, 3);
    let config = || SimConfig::from_model(model.clone()).with_egress_bandwidth(200_000.0);
    let seq = run_script(config(), &script, None);
    for w in [2, 4] {
        let sharded = run_script(config(), &script, Some((w, true)));
        assert_eq!(seq, sharded, "divergence at W={w}");
    }
}

#[test]
fn domain_aligned_chaos_matches_sequential_under_loss_jitter_faults_and_spill() {
    // The full chaos battery (bursty sends, same-tick ties, cancellable
    // timers, loss, jitter, fault injection, spill) in lockstep against
    // the sequential engine, but under the *planned* partition: the
    // domain-aligned cut must be just as invisible as the contiguous one,
    // at every width and on both window drivers.
    let model = TransitStubConfig::small().with_clients(40).build();
    let script = default_script(40, 17);
    let config = || {
        SimConfig::from_model(model.clone())
            .with_loss(0.2)
            .with_jitter(0.15)
            .with_link_spill_threshold(12)
            .with_partition(PartitionStrategy::DomainAligned)
    };
    // The planner must actually engage (W=1 legitimately stays
    // windowless-contiguous): a silent fallback would make this test
    // re-prove the contiguous case.
    for w in [2usize, 4] {
        let nodes: Vec<Chaos> = (0..40).map(|_| Chaos::new(0)).collect();
        let sim = ShardedSim::new(config(), 1, nodes, w);
        assert_eq!(
            sim.strategy(),
            PartitionStrategy::DomainAligned,
            "planner fell back to contiguous at W={w}"
        );
    }
    let seq = run_script(config(), &script, None);
    assert!(
        seq.spilled.messages > 0,
        "the scenario must actually exercise the spill rule"
    );
    for w in [1, 2, 4] {
        for threaded in [false, true] {
            let sharded = run_script(config(), &script, Some((w, threaded)));
            assert_eq!(seq, sharded, "divergence at W={w}, threaded={threaded}");
        }
    }
}

#[test]
fn single_shard_is_bit_identical_to_the_plain_sim() {
    // W = 1 runs the sharded engine windowless; it must still be the
    // sequential engine, observable bit for bit.
    for seed in [1, 11, 99] {
        let script = default_script(9, seed);
        let config = || SimConfig::uniform(9, 4.0).with_jitter(0.1);
        let seq = run_script(config(), &script, None);
        let sharded = run_script(config(), &script, Some((1, false)));
        assert_eq!(seq, sharded, "W=1 diverged at seed {seed}");
    }
}

#[test]
fn window_drivers_agree() {
    // The threaded and single-threaded window drivers plan identical
    // windows; equality to `seq` transitively covers this, but pinning
    // it directly localizes a failure.
    let script = default_script(14, 5);
    let config = || SimConfig::uniform(14, 2.0);
    let st = run_script(config(), &script, Some((4, false)));
    let mt = run_script(config(), &script, Some((4, true)));
    assert_eq!(st, mt);
}

/// A protocol engineered to invert key order against execution order
/// within one microsecond tick: node 2, on receiving from node 3, sends
/// on a fresh link *and* arms a zero-delay timer whose event key (origin
/// rank 3) is smaller than the triggering delivery's (origin rank 4);
/// the timer then sends on another fresh link. The sequential record
/// stream sees the delivery's link first, execution order — not key
/// order — and the sharded spill reconstruction must reproduce that.
struct Inversion;

impl Protocol for Inversion {
    type Msg = Probe;

    fn on_receive(&mut self, ctx: &mut Context<'_, Probe>, from: NodeId, _msg: Probe) {
        if ctx.id() == NodeId(2) && from == NodeId(3) {
            ctx.send(NodeId(0), Probe(2));
            ctx.set_timer(SimDuration::ZERO, 7);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Probe>, tag: u64) {
        if tag == 7 {
            ctx.send(NodeId(1), Probe(3));
        }
    }

    fn on_command(&mut self, ctx: &mut Context<'_, Probe>, value: u64) {
        match value {
            0 => ctx.send(NodeId(1), Probe(0)),
            _ => ctx.send(NodeId(2), Probe(1)),
        }
    }
}

#[test]
fn spill_order_survives_same_tick_key_inversion() {
    // Four distinct links appear in the order 0→1, 3→2, 2→0, 2→1; a
    // threshold of 3 puts the cutoff exactly between the same-tick
    // inverted pair, so ranking by event key instead of execution order
    // would track 2→1 and spill 2→0.
    let config = || SimConfig::uniform(4, 5.0).with_link_spill_threshold(3);
    let run = |shards: Option<(usize, bool)>| {
        let nodes: Vec<Inversion> = (0..4).map(|_| Inversion).collect();
        let deadline = SimTime::from_micros(50_000);
        match shards {
            None => {
                let mut s = Sim::new(config(), 1, nodes);
                s.schedule_command(SimTime::from_micros(1_000), NodeId(0), 0);
                s.schedule_command(SimTime::from_micros(2_000), NodeId(3), 1);
                s.run_until(deadline);
                s.seal_traffic();
                (s.traffic().links(), s.traffic().spilled())
            }
            Some((w, threaded)) => {
                let mut s = ShardedSim::new(config(), 1, nodes, w);
                s.set_threaded(threaded);
                s.schedule_command(SimTime::from_micros(1_000), NodeId(0), 0);
                s.schedule_command(SimTime::from_micros(2_000), NodeId(3), 1);
                s.run_until(deadline);
                s.seal_traffic();
                (s.traffic().links(), s.traffic().spilled())
            }
        }
    };
    let (seq_links, seq_spill) = run(None);
    assert_eq!(seq_links.len(), 3, "three tracked links");
    assert!(
        seq_links
            .iter()
            .any(|&((f, t), _)| f == NodeId(2) && t == NodeId(0)),
        "sequential tracks the delivery's link (2→0): {seq_links:?}"
    );
    assert_eq!(seq_spill.messages, 1, "the timer's link (2→1) spills");
    for w in [2usize, 4] {
        for threaded in [false, true] {
            let (links, spill) = run(Some((w, threaded)));
            assert_eq!(
                links, seq_links,
                "tracked set diverged at W={w}, threaded={threaded}"
            );
            assert_eq!(spill, seq_spill);
        }
    }
}

/// Arms one timer on node 3 and panics when it fires.
struct Bomb;

impl Protocol for Bomb {
    type Msg = Probe;

    fn on_start(&mut self, ctx: &mut Context<'_, Probe>) {
        if ctx.id() == NodeId(3) {
            ctx.set_timer(SimDuration::from_micros(5_000), 99);
        }
    }

    fn on_receive(&mut self, _ctx: &mut Context<'_, Probe>, _from: NodeId, _msg: Probe) {}

    fn on_timer(&mut self, _ctx: &mut Context<'_, Probe>, tag: u64) {
        if tag == 99 {
            panic!("protocol bomb");
        }
    }
}

#[test]
fn threaded_driver_propagates_worker_panics() {
    // `Barrier` does not poison: without the per-segment panic guards a
    // panicking worker would strand its peers forever. The panic must
    // surface to the caller instead of deadlocking.
    let result = std::panic::catch_unwind(|| {
        let nodes: Vec<Bomb> = (0..4).map(|_| Bomb).collect();
        let mut sim = ShardedSim::new(SimConfig::uniform(4, 1.0), 1, nodes, 2);
        sim.set_threaded(true);
        sim.run_until(SimTime::from_micros(20_000));
    });
    assert!(result.is_err(), "the worker panic must propagate");
}

#[test]
fn run_to_idle_clock_agrees_across_engines_and_drivers() {
    // `run_until` clamps the clock to the deadline, which would mask a
    // driver-dependent finish time; drain to idle instead and require
    // every engine/driver to stop at the same (last-event) instant.
    let n = 10;
    let config = || SimConfig::uniform(n, 3.0);
    let build = || -> Vec<Chaos> { (0..n).map(|_| Chaos::new(25)).collect() };
    let schedule = |f: &mut dyn FnMut(SimTime, NodeId, u64)| {
        for k in 0..5u64 {
            f(SimTime::from_micros(500 + k * 2_100), NodeId(k as usize), k);
        }
    };
    let mut seq = Sim::new(config(), 9, build());
    schedule(&mut |at, node, v| seq.schedule_command(at, node, v));
    seq.run_to_idle();
    for w in [1usize, 3] {
        for threaded in [false, true] {
            let mut sharded = ShardedSim::new(config(), 9, build(), w);
            sharded.set_threaded(threaded);
            schedule(&mut |at, node, v| sharded.schedule_command(at, node, v));
            sharded.run_to_idle();
            assert_eq!(
                sharded.now(),
                seq.now(),
                "finish time diverged at W={w}, threaded={threaded}"
            );
            assert_eq!(sharded.events_processed(), seq.events_processed());
        }
    }
}

// --- lookahead exactness --------------------------------------------------

/// Brute-force minimum cross-shard latency over all pairs.
fn brute_min_cross(model: &RoutedModel, assignment: &[u32]) -> Option<f64> {
    let n = model.client_count();
    let mut best: Option<f64> = None;
    for a in 0..n {
        for b in (a + 1)..n {
            if assignment[a] != assignment[b] {
                let l = model.latency_ms(a, b);
                if best.map_or(true, |x| l < x) {
                    best = Some(l);
                }
            }
        }
    }
    best
}

fn assert_lookahead_exact(model: &RoutedModel, w: usize) {
    let partition = Partition::contiguous(model.client_count(), w);
    let derived = model.min_cross_partition_latency_ms(partition.assignment());
    let brute = brute_min_cross(model, partition.assignment());
    match (derived, brute) {
        (Some(d), Some(b)) => {
            // Equal up to float-summation order; the derivation may only
            // ever sit *below* the pairwise scan (the safe direction).
            assert!(
                (d - b).abs() <= 1e-9 * b.max(1.0) && d <= b + 1e-12,
                "derived {d} vs brute {b} (W={w})"
            );
            // And the sim-level window never exceeds the true floor.
            let config = SimConfig::from_model(model.clone());
            let lookahead = config
                .conservative_lookahead(partition.assignment())
                .expect("cross pairs exist");
            assert!(
                lookahead <= SimDuration::from_ms(b),
                "lookahead {lookahead} above the latency floor {b} ms"
            );
        }
        (None, None) => {}
        (d, b) => panic!("derivation disagrees on existence: {d:?} vs {b:?}"),
    }
}

#[test]
fn lookahead_is_exact_on_routed_models() {
    for clients in [13, 40, 81] {
        let model = TransitStubConfig::small().with_clients(clients).build();
        assert_eq!(
            model.memory_shape().dense_cells,
            0,
            "transit-stub must build the routed layout"
        );
        for w in [2, 3, 4, 7] {
            if w <= clients {
                assert_lookahead_exact(&model, w);
            }
        }
    }
}

#[test]
fn lookahead_is_exact_on_dense_models() {
    for seed in [1, 5, 9] {
        let model = RoutedModel::uniform_synthetic(30, 5.0, 40.0, seed);
        for w in [2, 3, 5] {
            assert_lookahead_exact(&model, w);
        }
    }
}

#[test]
fn lookahead_respects_jitter_and_min_delay() {
    let model = RoutedModel::uniform_synthetic(16, 10.0, 20.0, 3);
    let partition = Partition::contiguous(16, 4);
    let base = SimConfig::from_model(model.clone())
        .conservative_lookahead(partition.assignment())
        .expect("cross pairs");
    let jittered = SimConfig::from_model(model.clone())
        .with_jitter(0.5)
        .conservative_lookahead(partition.assignment())
        .expect("cross pairs");
    assert!(
        jittered.as_micros() <= base.as_micros() / 2 + 1,
        "jitter must shrink the window: {jittered} vs {base}"
    );
    // A single shard has no cross pairs: no window needed.
    let one = Partition::contiguous(16, 1);
    assert_eq!(
        SimConfig::from_model(model).conservative_lookahead(one.assignment()),
        None
    );
}

// --- property layer -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary small workloads (uniform delays, optional loss/jitter,
    /// tight spill thresholds, faults) run identically at every width.
    #[test]
    fn sharded_runs_match_sequential(
        n in 2usize..16,
        seed in 0u64..1_000,
        w in 2usize..5,
        delay_ms in 1u32..20,
        lossy in proptest::bool::ANY,
        spill in proptest::bool::ANY,
        threaded in proptest::bool::ANY,
    ) {
        let script = default_script(n, seed);
        let config = || {
            let mut c = SimConfig::uniform(n, delay_ms as f64);
            if lossy {
                c = c.with_loss(0.15).with_jitter(0.1);
            }
            if spill {
                c = c.with_link_spill_threshold(n);
            }
            c
        };
        let seq = run_script(config(), &script, None);
        let sharded = run_script(config(), &script, Some((w.min(n), threaded)));
        prop_assert_eq!(&seq, &sharded);
    }

    /// Every partition strategy yields a total, disjoint cover of the
    /// scaled transit-stub model, the O(1) shard/local lookups agree with
    /// the per-shard member lists, and planned strategies never split a
    /// stub domain.
    #[test]
    fn every_strategy_partitions_exactly_once(
        n in 50usize..400,
        seed in 0u64..16,
        w in 2usize..6,
    ) {
        let model = TransitStubConfig::scaled(n).with_seed(seed).build();
        let config = SimConfig::from_model(model.clone());
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::DomainAligned,
            PartitionStrategy::RateBalanced,
        ] {
            let rate = strategy == PartitionStrategy::RateBalanced;
            let p = match strategy {
                PartitionStrategy::Contiguous => Partition::contiguous(n, w),
                // A declined plan falls back to contiguous in the sim;
                // here only a returned plan is checked.
                _ => match config.planned_assignment(w, rate) {
                    Some(assign) => Partition::from_assignment(assign, w),
                    None => continue,
                },
            };
            prop_assert_eq!(p.shard_count(), w);
            prop_assert_eq!(p.node_count(), n);
            let mut covered = vec![0u32; n];
            for s in 0..w {
                prop_assert!(!p.members(s).is_empty(), "no empty shard");
                for (li, &g) in p.members(s).iter().enumerate() {
                    covered[g as usize] += 1;
                    prop_assert_eq!(p.shard_of(g as usize), s);
                    prop_assert_eq!(p.local_of(g as usize), li);
                }
            }
            prop_assert!(covered.iter().all(|&c| c == 1), "each node exactly once");
            if strategy != PartitionStrategy::Contiguous {
                let assign = p.assignment();
                let mut domain_shard = std::collections::HashMap::new();
                for (c, &a) in assign.iter().enumerate() {
                    let d = model.client_domain(c).expect("routed client has a domain");
                    let s = *domain_shard.entry(d).or_insert(a);
                    prop_assert!(s == a, "stub domain split across shards");
                }
            }
        }
    }

    /// Every node lands in exactly one shard, ranges are contiguous and
    /// non-empty, and the O(1) lookup agrees with the ranges.
    #[test]
    fn partition_covers_exactly_once(n in 1usize..3000, w in 1usize..17) {
        let w = w.min(n);
        let p = Partition::contiguous(n, w);
        prop_assert_eq!(p.shard_count(), w);
        let mut covered = vec![0u32; n];
        for s in 0..w {
            let r = p.range(s);
            prop_assert!(!r.is_empty());
            if s > 0 {
                prop_assert!(p.range(s - 1).end == r.start, "ranges must abut");
            }
            for i in r {
                covered[i] += 1;
                prop_assert_eq!(p.shard_of(i), s);
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "each node exactly once");
    }
}
