//! Equivalence suite for the two event-queue implementations.
//!
//! The calendar queue is only allowed to exist because it is
//! indistinguishable from the binary heap: same pop order (bit-identical
//! `(time, seq)` dispatch, including same-tick ties), same counters, same
//! simulation results. Two layers of property tests pin that down:
//!
//! 1. **Raw queues** — arbitrary interleaved push/pop/bounded-pop
//!    sequences (clustered ties, far-future gaps, resize-sized bursts)
//!    driven against [`HeapQueue`] and [`CalendarQueue`] in lockstep.
//! 2. **Full simulations** — a protocol that schedules, re-arms and
//!    cancels generation-stamped timers (plus same-tick zero-delay
//!    sends) from its deterministic RNG stream, run once per queue
//!    implementation with identical seeds; the complete dispatch trace
//!    and every simulator counter must match.
//!
//! The CI `queue-equivalence` job runs this suite with a fixed case
//! count (`PROPTEST_CASES`); the vendored proptest stand-in derives its
//! case stream from the test name, so failures reproduce exactly.

use egm_simnet::event::{CalendarQueue, EventQueue, HeapQueue, Scheduled};
use egm_simnet::{
    Context, NodeId, Protocol, QueueKind, Sim, SimConfig, SimDuration, SimTime, TimerToken, Wire,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

// --- layer 1: raw queue lockstep -----------------------------------------

/// One scripted queue operation derived from a `(op, a, b)` triple.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at `now + delta` (delta picked from tie-prone distributions).
    Push { delta: u64 },
    /// Unbounded pop.
    Pop,
    /// Pop bounded at `now + bound`.
    PopBounded { bound: u64 },
}

fn decode(op: u32, a: u64, b: u64) -> Op {
    match op % 4 {
        // Two pushes per pop keeps the queues growing through resizes.
        0 | 1 => Op::Push {
            delta: match a % 4 {
                0 => 0,             // same-tick tie with the last pop
                1 => b % 64,        // sub-day cluster
                2 => b % 20_000,    // typical event horizon
                _ => b % 3_000_000, // beyond a calendar year
            },
        },
        2 => Op::Pop,
        _ => Op::PopBounded { bound: b % 50_000 },
    }
}

fn drive_lockstep(ops: &[(u32, u64, u64)]) -> Result<(), TestCaseError> {
    let mut heap: HeapQueue<u64> = HeapQueue::with_capacity(8);
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut now = 0u64;
    let mut seq = 0u64;
    for &(op, a, b) in ops {
        match decode(op, a, b) {
            Op::Push { delta } => {
                let ev = Scheduled {
                    time: SimTime::from_micros(now + delta),
                    seq,
                    item: seq,
                };
                seq += 1;
                heap.push(ev.clone());
                cal.push(ev);
            }
            Op::Pop => {
                let (x, y) = (heap.pop_next(None), cal.pop_next(None));
                match (&x, &y) {
                    (Some(h), Some(c)) => {
                        prop_assert_eq!((h.time, h.seq, h.item), (c.time, c.seq, c.item));
                        now = h.time.as_micros();
                    }
                    (None, None) => {}
                    _ => return Err(TestCaseError::fail("queues disagree on emptiness")),
                }
            }
            Op::PopBounded { bound } => {
                let b = SimTime::from_micros(now + bound);
                let (x, y) = (heap.pop_next(Some(b)), cal.pop_next(Some(b)));
                match (&x, &y) {
                    (Some(h), Some(c)) => {
                        prop_assert_eq!((h.time, h.seq, h.item), (c.time, c.seq, c.item));
                        prop_assert!(h.time <= b, "bound violated");
                        now = h.time.as_micros();
                    }
                    (None, None) => {}
                    _ => return Err(TestCaseError::fail("bounded pops disagree")),
                }
            }
        }
        prop_assert_eq!(heap.len(), cal.len());
    }
    // Drain both completely: the tails must agree too.
    loop {
        match (heap.pop_next(None), cal.pop_next(None)) {
            (Some(h), Some(c)) => {
                prop_assert_eq!((h.time, h.seq, h.item), (c.time, c.seq, c.item));
            }
            (None, None) => break,
            _ => return Err(TestCaseError::fail("drain tails disagree")),
        }
    }
    let (hs, cs) = (heap.stats(), cal.stats());
    prop_assert_eq!(hs.pushes, cs.pushes);
    prop_assert_eq!(hs.pops, cs.pops);
    prop_assert_eq!(hs.max_len, cs.max_len);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleaved schedule/pop sequences (with same-tick ties
    /// and year-crossing gaps) pop identically from both queues.
    #[test]
    fn raw_queues_pop_identically(
        ops in proptest::collection::vec((0u32..4, 0u64..u64::MAX, 0u64..u64::MAX), 1..600),
    ) {
        drive_lockstep(&ops)?;
    }
}

// --- layer 2: full simulations with cancellable timers -------------------

#[derive(Clone, Debug)]
struct Probe(#[allow(dead_code)] u64);

impl Wire for Probe {
    fn wire_bytes(&self) -> u32 {
        24
    }
    fn is_payload(&self) -> bool {
        true
    }
}

/// A global dispatch trace shared by all nodes of one simulation.
type Trace = Rc<RefCell<Vec<(u64, usize, u8, u64)>>>;

/// Drives schedule/cancel/send decisions from the node's deterministic
/// RNG stream: both runs see identical streams, so any divergence in the
/// trace is the queue's fault.
struct Chaos {
    trace: Trace,
    tokens: Vec<TimerToken>,
    budget: u32,
}

impl Chaos {
    fn act(&mut self, ctx: &mut Context<'_, Probe>) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let n = ctx.node_count();
        for _ in 0..2 {
            match ctx.rng().range_usize(0, 6) {
                0 => {
                    let delay = SimDuration::from_micros(ctx.rng().range_usize(0, 5_000) as u64);
                    ctx.set_timer(delay, 1);
                }
                1 | 2 => {
                    let delay = SimDuration::from_micros(ctx.rng().range_usize(0, 9_000) as u64);
                    let token = ctx.set_cancellable_timer(delay, 2);
                    self.tokens.push(token);
                }
                3 => {
                    if !self.tokens.is_empty() {
                        let i = ctx.rng().range_usize(0, self.tokens.len());
                        let token = self.tokens.swap_remove(i);
                        ctx.cancel_timer(token);
                    }
                }
                4 => {
                    let to = NodeId(ctx.rng().range_usize(0, n));
                    ctx.send(to, Probe(ctx.now().as_micros()));
                }
                _ => {
                    // Same-tick tie: a zero-delay self-timer.
                    ctx.set_timer(SimDuration::ZERO, 3);
                }
            }
        }
    }
}

impl Protocol for Chaos {
    type Msg = Probe;

    fn on_start(&mut self, ctx: &mut Context<'_, Probe>) {
        ctx.set_timer(SimDuration::from_micros(ctx.id().index() as u64 % 7), 0);
    }

    fn on_receive(&mut self, ctx: &mut Context<'_, Probe>, from: NodeId, msg: Probe) {
        self.trace.borrow_mut().push((
            ctx.now().as_micros(),
            ctx.id().index(),
            0,
            from.index() as u64,
        ));
        let _ = msg;
        self.act(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Probe>, tag: u64) {
        self.trace
            .borrow_mut()
            .push((ctx.now().as_micros(), ctx.id().index(), 1, tag));
        self.act(ctx);
    }

    fn on_command(&mut self, ctx: &mut Context<'_, Probe>, value: u64) {
        self.trace
            .borrow_mut()
            .push((ctx.now().as_micros(), ctx.id().index(), 2, value));
        self.act(ctx);
    }
}

/// Runs the chaos protocol on one queue kind; returns the trace and the
/// simulator counters.
#[allow(clippy::type_complexity)]
fn chaos_run(
    kind: QueueKind,
    seed: u64,
    nodes: usize,
    budget: u32,
) -> (Vec<(u64, usize, u8, u64)>, (u64, u64, u64), Vec<u64>) {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let protos: Vec<Chaos> = (0..nodes)
        .map(|_| Chaos {
            trace: trace.clone(),
            tokens: Vec::new(),
            budget,
        })
        .collect();
    let config = SimConfig::uniform(nodes, 1.5)
        .with_jitter(0.3)
        .with_loss(0.05)
        .with_event_queue(kind);
    let mut sim = Sim::new(config, seed, protos);
    for k in 0..4u64 {
        sim.schedule_command(SimTime::from_micros(k * 700), NodeId(k as usize % nodes), k);
    }
    sim.run_for(SimDuration::from_ms(200.0));
    let counters = (
        sim.events_processed(),
        sim.timers_cancelled(),
        sim.stale_timer_drops(),
    );
    let traffic = (
        sim.traffic().total_messages(),
        sim.traffic().total_bytes(),
        sim.traffic().total_payloads(),
    );
    drop(sim);
    let trace = Rc::try_unwrap(trace).expect("sim dropped").into_inner();
    (trace, counters, vec![traffic.0, traffic.1, traffic.2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A full simulation with interleaved schedule/cancel/same-tick
    /// activity produces an identical dispatch trace and identical
    /// counters under either queue.
    #[test]
    fn simulations_are_queue_invariant(
        seed in 0u64..10_000,
        nodes in 2usize..10,
        budget in 1u32..40,
    ) {
        let heap = chaos_run(QueueKind::Heap, seed, nodes, budget);
        let calendar = chaos_run(QueueKind::Calendar, seed, nodes, budget);
        prop_assert_eq!(&heap.0, &calendar.0);
        prop_assert_eq!(heap.1, calendar.1);
        prop_assert_eq!(&heap.2, &calendar.2);
    }
}
