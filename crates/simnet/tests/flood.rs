//! Simulator stress test: a naive flooding protocol over many nodes.

use egm_simnet::{Context, NodeId, Protocol, Sim, SimConfig, SimDuration, SimTime, Wire};

#[derive(Clone, Debug)]
struct Flood {
    hops: u32,
}

impl Wire for Flood {
    fn wire_bytes(&self) -> u32 {
        64
    }
    fn is_payload(&self) -> bool {
        true
    }
}

/// Forwards the first copy it sees to every other node, decrementing a
/// hop budget.
struct Node {
    seen: bool,
    received_at: Option<SimTime>,
}

impl Protocol for Node {
    type Msg = Flood;

    fn on_receive(&mut self, ctx: &mut Context<'_, Flood>, _from: NodeId, msg: Flood) {
        if self.seen {
            return;
        }
        self.seen = true;
        self.received_at = Some(ctx.now());
        if msg.hops == 0 {
            return;
        }
        for i in 0..ctx.node_count() {
            if NodeId(i) != ctx.id() {
                ctx.send(NodeId(i), Flood { hops: msg.hops - 1 });
            }
        }
    }

    fn on_command(&mut self, ctx: &mut Context<'_, Flood>, _value: u64) {
        self.seen = true;
        self.received_at = Some(ctx.now());
        for i in 0..ctx.node_count() {
            if NodeId(i) != ctx.id() {
                ctx.send(NodeId(i), Flood { hops: 2 });
            }
        }
    }
}

fn nodes(n: usize) -> Vec<Node> {
    (0..n)
        .map(|_| Node {
            seen: false,
            received_at: None,
        })
        .collect()
}

#[test]
fn five_hundred_node_flood_terminates_and_covers_everyone() {
    let n = 500;
    let mut sim = Sim::new(SimConfig::uniform(n, 10.0), 1, nodes(n));
    sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
    sim.run_for(SimDuration::from_ms(100.0));
    let covered = sim.nodes().filter(|(_, node)| node.seen).count();
    assert_eq!(covered, n);
    // One-hop coverage: everyone hears the seed directly at exactly 10ms.
    for (id, node) in sim.nodes() {
        if id != NodeId(0) {
            assert_eq!(node.received_at, Some(SimTime::from_ms(10.0)));
        }
    }
    // Messages: seed sends n-1, then each of n-1 nodes floods n-1 copies.
    assert_eq!(sim.traffic().total_messages() as usize, (n - 1) * n);
}

#[test]
fn flood_with_loss_still_mostly_covers() {
    let n = 200;
    let mut sim = Sim::new(SimConfig::uniform(n, 5.0).with_loss(0.3), 2, nodes(n));
    sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 0);
    sim.run_for(SimDuration::from_ms(100.0));
    let covered = sim.nodes().filter(|(_, node)| node.seen).count();
    // Two-hop flood with 30% loss: coverage should remain near-total.
    assert!(covered > n * 95 / 100, "covered {covered}/{n}");
}

#[test]
fn event_count_is_deterministic() {
    let run = || {
        let n = 100;
        let mut sim = Sim::new(
            SimConfig::uniform(n, 5.0).with_loss(0.1).with_jitter(0.2),
            3,
            nodes(n),
        );
        sim.schedule_command(SimTime::from_ms(0.0), NodeId(7), 0);
        sim.run_for(SimDuration::from_ms(200.0));
        (sim.events_processed(), sim.traffic().total_bytes())
    };
    assert_eq!(run(), run());
}
