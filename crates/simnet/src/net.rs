//! The virtual network: delays, loss, jitter, and fault injection.

use crate::event::QueueKind;
use crate::shard::PartitionStrategy;
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use egm_rng::Rng;
use egm_topology::{PlanBalance, RoutedModel};

/// Configuration of the virtual network between `n` protocol nodes.
///
/// Delay between a pair of nodes is the routed model latency (or a
/// synthetic constant/matrix), optionally perturbed by uniform
/// multiplicative jitter; messages are dropped independently with
/// probability `loss`, and any traffic to or from a *silenced* node is
/// dropped — the paper's firewall-based failure injection (§6.3).
///
/// # Examples
///
/// ```
/// use egm_simnet::SimConfig;
///
/// let cfg = SimConfig::uniform(10, 25.0).with_loss(0.01).with_jitter(0.05);
/// assert_eq!(cfg.node_count(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    delay: DelaySource,
    /// Independent drop probability per message.
    loss: f64,
    /// Uniform multiplicative jitter: delay is scaled by a factor drawn
    /// from `[1 - jitter, 1 + jitter]`.
    jitter: f64,
    /// Delay floor applied after jitter (also used for self-sends).
    min_delay: SimDuration,
    /// Per-node egress bandwidth in bytes/second; `None` models infinite
    /// capacity. When set, each transmission occupies the sender's uplink
    /// for `bytes / bandwidth` and queues FIFO behind earlier sends —
    /// reproducing the burst-induced latency of gossip fanouts that §5.3
    /// observes on the ModelNet testbed.
    egress_bandwidth: Option<f64>,
    /// Maximum distinct links the traffic accounting tracks individually
    /// (see [`crate::Traffic::with_spill_threshold`]).
    link_spill_threshold: usize,
    /// Which event-queue implementation the simulator uses; `None`
    /// resolves by size at simulation start (`EGM_EVENT_QUEUE` or
    /// [`SimConfig::with_event_queue`] override it).
    event_queue: Option<QueueKind>,
    /// How many worker shards a sharded run partitions the nodes across;
    /// `None` resolves via `EGM_SHARDS`, then the size-based default
    /// ([`crate::shard::auto_shards_for`]). `Some(0)` forces the
    /// sequential engine.
    shards: Option<usize>,
    /// How a sharded run maps nodes to shards; `None` resolves via
    /// `EGM_PARTITION`, then the auto default (domain-aligned when the
    /// delay source yields a plan, contiguous otherwise).
    partition: Option<PartitionStrategy>,
    /// `(fanout, view degree)` hint for the rate-balanced partition
    /// planner's per-domain event-rate estimate; `None` falls back to a
    /// uniform per-client rate.
    rate_hint: Option<(usize, usize)>,
    /// Directory for writer-backed traffic compaction (see
    /// [`crate::Traffic::enable_spool`]); `None` keeps folds in memory.
    traffic_spool: Option<std::path::PathBuf>,
}

#[derive(Debug, Clone)]
enum DelaySource {
    /// Constant one-way delay between every pair.
    Uniform { n: usize, ms: f64 },
    /// Latencies from a routed topology model.
    Model(RoutedModel),
}

impl SimConfig {
    /// A network of `n` nodes with constant pairwise one-way delay.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `ms` is negative/non-finite.
    pub fn uniform(n: usize, ms: f64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(ms.is_finite() && ms >= 0.0, "bad delay");
        SimConfig {
            delay: DelaySource::Uniform { n, ms },
            loss: 0.0,
            jitter: 0.0,
            min_delay: SimDuration::from_micros(10),
            egress_bandwidth: None,
            link_spill_threshold: usize::MAX,
            event_queue: QueueKind::from_env(),
            shards: None,
            partition: None,
            rate_hint: None,
            traffic_spool: None,
        }
    }

    /// A network whose delays come from a routed topology model — the
    /// standard configuration for reproducing the paper.
    pub fn from_model(model: RoutedModel) -> Self {
        SimConfig {
            delay: DelaySource::Model(model),
            loss: 0.0,
            jitter: 0.0,
            min_delay: SimDuration::from_micros(10),
            egress_bandwidth: None,
            link_spill_threshold: usize::MAX,
            event_queue: QueueKind::from_env(),
            shards: None,
            partition: None,
            rate_hint: None,
            traffic_spool: None,
        }
    }

    /// Sets the per-node egress bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn with_egress_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        self.egress_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self
    }

    /// Sets uniform multiplicative jitter (fraction of the base delay).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is outside `[0, 1)`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self
    }

    /// Bounds how many distinct links the simulator's traffic accounting
    /// tracks individually; traffic on further links is folded into an
    /// aggregate spill tally. Totals and per-node payload counters stay
    /// exact. The default is unbounded; 1k–10k-node scenarios should set
    /// a bound so link accounting cannot grow toward n².
    pub fn with_link_spill_threshold(mut self, links: usize) -> Self {
        self.link_spill_threshold = links;
        self
    }

    /// The configured link-accounting spill threshold.
    pub fn link_spill_threshold(&self) -> usize {
        self.link_spill_threshold
    }

    /// Selects the event-queue implementation (builder style),
    /// overriding both the `EGM_EVENT_QUEUE` variable and the size-based
    /// default. Both implementations dispatch in bit-identical order, so
    /// this is a performance A/B switch, never a behavioural one.
    pub fn with_event_queue(mut self, kind: QueueKind) -> Self {
        self.event_queue = Some(kind);
        self
    }

    /// The event-queue implementation this configuration resolves to:
    /// an explicit [`SimConfig::with_event_queue`] choice wins, then the
    /// `EGM_EVENT_QUEUE` environment override, then the size-based
    /// default ([`QueueKind::auto_for`]).
    pub fn event_queue(&self) -> QueueKind {
        self.event_queue
            .unwrap_or_else(|| QueueKind::auto_for(self.node_count()))
    }

    /// Selects how many worker shards partition the run (builder style),
    /// overriding both the `EGM_SHARDS` variable and the size-based
    /// default. `1` runs the sharded engine as a single windowless shard;
    /// `0` forces the plain sequential engine (the escape hatch, like
    /// `EGM_EVENT_QUEUE=heap`). Every shard count produces byte-identical
    /// results — this is a performance knob, never a behavioural one.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The shard count this configuration resolves to: an explicit
    /// [`SimConfig::with_shards`] choice wins, then the `EGM_SHARDS`
    /// environment override, then the size-based default
    /// ([`crate::shard::auto_shards_for`]). Counts above the node count
    /// are clamped. See [`crate::ShardChoice`] for how a forced choice
    /// differs from the default.
    pub fn shard_choice(&self) -> crate::shard::ShardChoice {
        use crate::shard::ShardChoice;
        let n = self.node_count();
        if let Some(w) = self.shards {
            return ShardChoice::Forced(w.min(n));
        }
        if let Some(w) = crate::shard::shards_from_env() {
            return ShardChoice::Forced(w.min(n));
        }
        ShardChoice::Auto(crate::shard::auto_shards_for(n))
    }

    /// Selects the partition strategy of a sharded run (builder style),
    /// overriding both the `EGM_PARTITION` variable and the auto
    /// default. Every strategy produces byte-identical results — this is
    /// a performance knob, never a behavioural one.
    pub fn with_partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = Some(strategy);
        self
    }

    /// Supplies the `(fanout, view_degree)` workload hint the
    /// rate-balanced partition planner weighs domains by. Without a hint
    /// the planner assumes a uniform per-client event rate (equivalent
    /// to balancing by node count).
    pub fn with_rate_hint(mut self, fanout: usize, view_degree: usize) -> Self {
        self.rate_hint = Some((fanout, view_degree));
        self
    }

    /// Streams folded traffic accumulators to temp files under `dir`
    /// instead of holding them in memory (builder style) — the
    /// writer-backed [`crate::Traffic`] mode for runs whose link log
    /// would otherwise dominate RSS. Results are byte-identical to the
    /// in-memory mode; sharded runs give each worker its own spool file.
    pub fn with_traffic_spool(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.traffic_spool = Some(dir.into());
        self
    }

    /// The traffic-spool directory, if writer-backed compaction is on.
    pub fn traffic_spool(&self) -> Option<&std::path::Path> {
        self.traffic_spool.as_deref()
    }

    /// The partition strategy this configuration resolves to: an
    /// explicit [`SimConfig::with_partition`] choice wins, then the
    /// `EGM_PARTITION` environment override; `None` means *auto* — the
    /// engine plans a domain-aligned partition when the delay source
    /// supports one and falls back to contiguous otherwise (see
    /// [`crate::ShardStats::strategy`] for what took effect).
    pub fn partition_strategy(&self) -> Option<PartitionStrategy> {
        self.partition.or_else(crate::shard::partition_from_env)
    }

    /// Plans a domain-aligned node→shard assignment over the routed
    /// delay model: `None` when the delay source has no domain structure
    /// (uniform or dense) or fewer populated domains than shards. With
    /// `rate_balanced`, shards are balanced by the per-domain event-rate
    /// estimate seeded from [`SimConfig::with_rate_hint`].
    pub fn planned_assignment(&self, shards: usize, rate_balanced: bool) -> Option<Vec<u32>> {
        let DelaySource::Model(m) = &self.delay else {
            return None;
        };
        let balance = if rate_balanced {
            let (fanout, view_degree) = self.rate_hint.unwrap_or((1, 1));
            PlanBalance::Rate {
                fanout,
                view_degree,
            }
        } else {
            PlanBalance::Nodes
        };
        m.partition_plan(shards, balance)
            .map(|p| p.assignment().to_vec())
    }

    /// A conservative lower bound on the delivery delay of any message
    /// crossing the given shard assignment — the sharded engine's window
    /// *lookahead*. Derived from the minimum cross-shard base latency of
    /// the delay source (exact on routed and dense models), shrunk by the
    /// worst-case jitter factor and one microsecond of rounding slack,
    /// and floored at the network's minimum delay. Returns `None` when no
    /// pair of nodes crosses shards (single shard), in which case windows
    /// are unnecessary.
    pub fn conservative_lookahead(&self, assignment: &[u32]) -> Option<SimDuration> {
        assert_eq!(assignment.len(), self.node_count(), "one shard per node");
        let min_ms = match &self.delay {
            DelaySource::Uniform { ms, .. } => {
                let first = *assignment.first()?;
                if assignment.iter().all(|&s| s == first) {
                    return None;
                }
                *ms
            }
            DelaySource::Model(m) => m.min_cross_partition_latency_ms(assignment)?,
        };
        let floor_us = (min_ms * 1000.0 * (1.0 - self.jitter)).floor().max(0.0) as u64;
        let lb = floor_us
            .saturating_sub(1)
            .max(self.min_delay.as_micros())
            .max(1);
        Some(SimDuration::from_micros(lb))
    }

    /// Number of protocol nodes.
    pub fn node_count(&self) -> usize {
        match &self.delay {
            DelaySource::Uniform { n, .. } => *n,
            DelaySource::Model(m) => m.client_count(),
        }
    }
}

/// The instantiated virtual network (configuration + mutable fault and
/// egress-queue state).
#[derive(Debug, Clone)]
pub struct Network {
    config: SimConfig,
    silenced: Vec<bool>,
    /// Time each node's uplink becomes free (egress-bandwidth model).
    egress_free: Vec<SimTime>,
    /// Transit degradation: latency multiplier on cross-domain base
    /// delays (`1.0` = healthy). Never below `1.0`, so the sharded
    /// engine's conservative lookahead stays a valid lower bound.
    degrade_mult: f64,
    /// Transit degradation: extra independent drop probability on
    /// cross-domain traffic, combined with the configured loss as
    /// `1 − (1−loss)(1−extra)` so it still costs exactly one RNG draw.
    degrade_loss: f64,
    /// Per-node processing slowdown added to the delivery delay of all
    /// traffic *into* the node (receive-side; `ZERO` = full speed).
    slowdown: Vec<SimDuration>,
    /// Cheap guard: true while any `slowdown` entry is non-zero.
    any_slowdown: bool,
}

impl Network {
    /// Builds the network from its configuration.
    pub fn new(config: SimConfig) -> Self {
        let n = config.node_count();
        Network {
            config,
            silenced: vec![false; n],
            egress_free: vec![SimTime::ZERO; n],
            degrade_mult: 1.0,
            degrade_loss: 0.0,
            slowdown: vec![SimDuration::ZERO; n],
            any_slowdown: false,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.silenced.len()
    }

    /// Base one-way delay between two nodes, before jitter.
    pub fn base_delay(&self, from: NodeId, to: NodeId) -> SimDuration {
        if from == to {
            return self.config.min_delay;
        }
        let ms = match &self.config.delay {
            DelaySource::Uniform { ms, .. } => *ms,
            DelaySource::Model(m) => m.latency_ms(from.index(), to.index()),
        };
        let d = SimDuration::from_ms(ms);
        if d < self.config.min_delay {
            self.config.min_delay
        } else {
            d
        }
    }

    /// Whether traffic between `from` and `to` crosses the transit core
    /// (and is therefore subject to transit degradation). Self-sends
    /// never cross; on a routed model two clients cross iff they live in
    /// different stub domains; structureless sources (uniform, dense
    /// matrix) treat every distinct pair as crossing.
    pub fn cross_transit(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        match &self.config.delay {
            DelaySource::Uniform { .. } => true,
            DelaySource::Model(m) => {
                match (m.client_domain(from.index()), m.client_domain(to.index())) {
                    (Some(a), Some(b)) => a != b,
                    _ => true,
                }
            }
        }
    }

    /// Decides the fate of one message of `bytes` sent at `now`:
    /// `Some(delay)` to deliver after `delay` (queueing + serialization +
    /// propagation), `None` if dropped by loss or silencing.
    pub fn transmit(
        &mut self,
        rng: &mut Rng,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u32,
    ) -> Option<SimDuration> {
        if self.silenced[from.index()] || self.silenced[to.index()] {
            return None;
        }
        let degraded = self.degrade_loss > 0.0 || self.degrade_mult > 1.0;
        let cross = degraded && self.cross_transit(from, to);
        // Degraded cross-transit traffic combines the extra loss with the
        // base loss into a single Bernoulli draw, keeping the per-sender
        // RNG stream aligned with the healthy network's draw count.
        let loss = if cross && self.degrade_loss > 0.0 {
            1.0 - (1.0 - self.config.loss) * (1.0 - self.degrade_loss)
        } else {
            self.config.loss
        };
        if loss > 0.0 && rng.bool(loss) {
            return None;
        }
        let mut base = self.base_delay(from, to);
        if cross && self.degrade_mult > 1.0 {
            base = base.mul_f64(self.degrade_mult);
        }
        let propagation = if self.config.jitter > 0.0 {
            let factor = rng.range_f64(1.0 - self.config.jitter, 1.0 + self.config.jitter);
            base.mul_f64(factor)
        } else {
            base
        };
        let mut delay = propagation;
        if let Some(bw) = self.config.egress_bandwidth {
            // FIFO uplink: the message departs when the link frees up and
            // occupies it for its serialization time.
            let serialization = SimDuration::from_ms(bytes as f64 / bw * 1000.0);
            let free = self.egress_free[from.index()];
            let depart_done = if free > now { free } else { now } + serialization;
            self.egress_free[from.index()] = depart_done;
            delay = (depart_done - now) + propagation;
        }
        if self.any_slowdown {
            delay = delay + self.slowdown[to.index()];
        }
        Some(if delay < self.config.min_delay {
            self.config.min_delay
        } else {
            delay
        })
    }

    /// Silences a node: all of its future traffic, in and out, is dropped.
    ///
    /// This emulates the paper's fail-by-firewall (§6.3): the process keeps
    /// running but its packets vanish.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn silence(&mut self, node: NodeId) {
        self.silenced[node.index()] = true;
    }

    /// Reverses [`Network::silence`] — used to model transient partitions.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn revive(&mut self, node: NodeId) {
        self.silenced[node.index()] = false;
    }

    /// Sets the transit degradation state: cross-domain base delays are
    /// multiplied by `latency_mult` and cross-domain messages suffer an
    /// extra independent drop probability `extra_loss`. `(1.0, 0.0)`
    /// restores the healthy network.
    ///
    /// The multiplier can only *lengthen* delays (≥ 1.0), so the sharded
    /// engine's conservative lookahead — a lower bound on cross-shard
    /// delivery delay — remains valid under degradation.
    ///
    /// # Panics
    ///
    /// Panics if `latency_mult < 1.0` or is non-finite, or `extra_loss`
    /// is outside `[0, 1]`.
    pub fn degrade_transit(&mut self, latency_mult: f64, extra_loss: f64) {
        assert!(
            latency_mult.is_finite() && latency_mult >= 1.0,
            "degradation may only lengthen delays"
        );
        assert!(
            (0.0..=1.0).contains(&extra_loss),
            "extra loss must be a probability"
        );
        self.degrade_mult = latency_mult;
        self.degrade_loss = extra_loss;
    }

    /// The current transit degradation state as
    /// `(latency_mult, extra_loss)`; `(1.0, 0.0)` when healthy.
    pub fn degradation(&self) -> (f64, f64) {
        (self.degrade_mult, self.degrade_loss)
    }

    /// Sets `node`'s processing slowdown: `delay` is added to the
    /// delivery delay of every message *into* the node. `ZERO` restores
    /// full speed.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn slow_down(&mut self, node: NodeId, delay: SimDuration) {
        self.slowdown[node.index()] = delay;
        self.any_slowdown = self.slowdown.iter().any(|&d| d > SimDuration::ZERO);
    }

    /// The node's current processing slowdown.
    pub fn slowdown_of(&self, node: NodeId) -> SimDuration {
        self.slowdown[node.index()]
    }

    /// Whether the node is currently silenced.
    pub fn is_silenced(&self, node: NodeId) -> bool {
        self.silenced[node.index()]
    }

    /// Indices of all currently silenced nodes.
    pub fn silenced_nodes(&self) -> Vec<NodeId> {
        self.silenced
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(NodeId(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::{Network, SimConfig};
    use crate::{NodeId, SimDuration};
    use egm_rng::Rng;
    use egm_topology::RoutedModel;

    #[test]
    fn uniform_delay_is_constant() {
        let net = Network::new(SimConfig::uniform(3, 25.0));
        assert_eq!(
            net.base_delay(NodeId(0), NodeId(2)),
            SimDuration::from_ms(25.0)
        );
        // self-sends use the floor delay
        assert_eq!(
            net.base_delay(NodeId(1), NodeId(1)),
            SimDuration::from_micros(10)
        );
    }

    #[test]
    fn model_delay_matches_matrix() {
        let model = RoutedModel::uniform_synthetic(4, 10.0, 20.0, 1);
        let expect = model.latency_ms(1, 3);
        let net = Network::new(SimConfig::from_model(model));
        assert_eq!(
            net.base_delay(NodeId(1), NodeId(3)),
            SimDuration::from_ms(expect)
        );
    }

    fn tx(net: &mut Network, rng: &mut Rng, from: usize, to: usize) -> Option<SimDuration> {
        net.transmit(rng, crate::SimTime::ZERO, NodeId(from), NodeId(to), 100)
    }

    #[test]
    fn zero_loss_always_delivers() {
        let mut net = Network::new(SimConfig::uniform(2, 5.0));
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(tx(&mut net, &mut rng, 0, 1).is_some());
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let mut net = Network::new(SimConfig::uniform(2, 5.0).with_loss(1.0));
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(tx(&mut net, &mut rng, 0, 1).is_none());
        }
    }

    #[test]
    fn partial_loss_is_calibrated() {
        let mut net = Network::new(SimConfig::uniform(2, 5.0).with_loss(0.2));
        let mut rng = Rng::seed_from_u64(2);
        let delivered = (0..10_000)
            .filter(|_| tx(&mut net, &mut rng, 0, 1).is_some())
            .count();
        let frac = delivered as f64 / 10_000.0;
        assert!((frac - 0.8).abs() < 0.02, "delivered fraction {frac}");
    }

    #[test]
    fn silencing_kills_both_directions() {
        let mut net = Network::new(SimConfig::uniform(3, 5.0));
        net.silence(NodeId(1));
        let mut rng = Rng::seed_from_u64(3);
        assert!(tx(&mut net, &mut rng, 0, 1).is_none());
        assert!(tx(&mut net, &mut rng, 1, 0).is_none());
        assert!(tx(&mut net, &mut rng, 0, 2).is_some());
        assert!(net.is_silenced(NodeId(1)));
        assert_eq!(net.silenced_nodes(), vec![NodeId(1)]);
        net.revive(NodeId(1));
        assert!(tx(&mut net, &mut rng, 0, 1).is_some());
    }

    #[test]
    fn jitter_spreads_delay_within_bounds() {
        let mut net = Network::new(SimConfig::uniform(2, 100.0).with_jitter(0.1));
        let mut rng = Rng::seed_from_u64(4);
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for _ in 0..1000 {
            let d = tx(&mut net, &mut rng, 0, 1).expect("no loss").as_ms();
            min = min.min(d);
            max = max.max(d);
        }
        assert!(min >= 90.0 && max <= 110.0, "range [{min}, {max}]");
        assert!(max - min > 10.0, "jitter should spread delays");
    }

    #[test]
    fn egress_bandwidth_serializes_bursts() {
        // 1000 bytes/sec, 100-byte messages => 100ms serialization each.
        let mut net = Network::new(SimConfig::uniform(2, 10.0).with_egress_bandwidth(1000.0));
        let mut rng = Rng::seed_from_u64(5);
        let d1 = tx(&mut net, &mut rng, 0, 1).expect("delivered").as_ms();
        let d2 = tx(&mut net, &mut rng, 0, 1).expect("delivered").as_ms();
        let d3 = tx(&mut net, &mut rng, 0, 1).expect("delivered").as_ms();
        assert!(
            (d1 - 110.0).abs() < 0.01,
            "first: serialization + propagation, got {d1}"
        );
        assert!(
            (d2 - 210.0).abs() < 0.01,
            "second queues behind first, got {d2}"
        );
        assert!((d3 - 310.0).abs() < 0.01, "third queues further, got {d3}");
        // A different sender has its own free uplink.
        let other = tx(&mut net, &mut rng, 1, 0).expect("delivered").as_ms();
        assert!(
            (other - 110.0).abs() < 0.01,
            "per-node uplinks, got {other}"
        );
    }

    #[test]
    fn infinite_bandwidth_has_no_queueing() {
        let mut net = Network::new(SimConfig::uniform(2, 10.0));
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..10 {
            let d = tx(&mut net, &mut rng, 0, 1).expect("delivered").as_ms();
            assert_eq!(d, 10.0);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_panics() {
        let _ = SimConfig::uniform(2, 5.0).with_loss(1.5);
    }

    #[test]
    fn transit_degradation_slows_and_drops_cross_traffic() {
        // Uniform topology: every distinct pair counts as cross-transit.
        let mut net = Network::new(SimConfig::uniform(2, 10.0));
        let mut rng = Rng::seed_from_u64(7);
        net.degrade_transit(3.0, 0.0);
        assert_eq!(net.degradation(), (3.0, 0.0));
        let d = tx(&mut net, &mut rng, 0, 1).expect("no loss").as_ms();
        assert_eq!(d, 30.0);
        net.degrade_transit(1.0, 1.0);
        assert!(tx(&mut net, &mut rng, 0, 1).is_none());
        net.degrade_transit(1.0, 0.0);
        assert_eq!(tx(&mut net, &mut rng, 0, 1).unwrap().as_ms(), 10.0);
    }

    #[test]
    fn degradation_spares_intra_domain_traffic() {
        use egm_topology::TransitStubConfig;
        let model = TransitStubConfig::small()
            .with_clients(16)
            .with_seed(3)
            .build();
        let n = model.client_count();
        let dom = |i: usize| model.client_domain(i).expect("routed model");
        let intra = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && dom(a) == dom(b))
            .expect("some domain holds two clients");
        let cross = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .find(|&(a, b)| dom(a) != dom(b))
            .expect("more than one domain");
        let mut net = Network::new(SimConfig::from_model(model));
        assert!(!net.cross_transit(NodeId(intra.0), NodeId(intra.1)));
        assert!(net.cross_transit(NodeId(cross.0), NodeId(cross.1)));
        let mut rng = Rng::seed_from_u64(9);
        let intra_before = tx(&mut net, &mut rng, intra.0, intra.1).unwrap();
        let cross_before = tx(&mut net, &mut rng, cross.0, cross.1).unwrap();
        net.degrade_transit(2.0, 0.0);
        assert_eq!(
            tx(&mut net, &mut rng, intra.0, intra.1).unwrap(),
            intra_before
        );
        assert_eq!(
            tx(&mut net, &mut rng, cross.0, cross.1).unwrap(),
            cross_before.mul_f64(2.0)
        );
    }

    #[test]
    fn slowdown_adds_receive_side_delay() {
        let mut net = Network::new(SimConfig::uniform(2, 10.0));
        let mut rng = Rng::seed_from_u64(8);
        net.slow_down(NodeId(1), SimDuration::from_ms(5.0));
        assert_eq!(net.slowdown_of(NodeId(1)), SimDuration::from_ms(5.0));
        assert_eq!(tx(&mut net, &mut rng, 0, 1).unwrap().as_ms(), 15.0);
        // Only traffic *into* the slowed node pays the penalty.
        assert_eq!(tx(&mut net, &mut rng, 1, 0).unwrap().as_ms(), 10.0);
        net.slow_down(NodeId(1), SimDuration::ZERO);
        assert_eq!(tx(&mut net, &mut rng, 0, 1).unwrap().as_ms(), 10.0);
    }

    #[test]
    #[should_panic(expected = "lengthen")]
    fn degradation_below_one_panics() {
        let mut net = Network::new(SimConfig::uniform(2, 5.0));
        net.degrade_transit(0.5, 0.0);
    }
}
