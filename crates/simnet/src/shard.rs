//! Deterministic sharded event loop: one large run partitioned across
//! worker shards synchronized by conservative time windows.
//!
//! [`ShardedSim`] splits the node id space into `W` disjoint shards
//! under a [`PartitionStrategy`] — contiguous id ranges, or
//! topology-aware domain-aligned cuts planned from the routed model
//! ([`egm_topology::RoutedModel::partition_plan`]); each shard owns its
//! nodes, their RNG streams, an [`EventQueue`](crate::EventQueue), a
//! [`Traffic`] table and a copy of the fault view, and dispatches its
//! own events through the *same* per-event path as the sequential
//! [`Sim`](crate::Sim). Shards synchronize at window boundaries: a
//! window's length is the **lookahead** — a
//! conservative lower bound on the delivery delay of any cross-shard
//! message ([`SimConfig::conservative_lookahead`]), derived from the
//! minimum latency crossing the chosen partition. Within a window
//! `[T, T + L)`, no shard can receive an event it has not already been
//! handed (anything generated in the window arrives at `>= T + L`), so
//! every shard may run its window independently — in parallel. Because
//! the lookahead is the minimum *cross-shard* latency, the partition
//! directly sets the window economics: domain-aligned cuts push the
//! floor from the stub-access latency up to the inter-core latency of
//! the planned clusters, collapsing the window count.
//!
//! Cross-shard sends are buffered in per-`(source, destination)` *lanes*
//! and moved into the destination queue at the window boundary. Order
//! needs no repair at the merge: every event carries an intrinsic
//! `(time, origin, origin-seq)` key (see [`crate::sim`]), so the
//! destination queue interleaves merged and local events exactly where
//! the sequential engine would have dispatched them. The outputs —
//! delivery records, sealed [`Traffic`] (including the first-appearance
//! spill order, reconstructed at merge time), scheduler counters, event
//! counts — are **byte-identical to the sequential [`Sim`](crate::Sim)
//! for every `W`**, which the `shard_equivalence` and
//! `shard_determinism` suites assert on every PR.
//!
//! With `W = 1` there are no cross-shard pairs, the lookahead is
//! unbounded, and the run collapses to a single window — the sharded
//! engine then is the sequential engine plus one bounds check.

use crate::event::{EventKind, QueueStats, Scheduled};
use crate::net::{Network, SimConfig};
use crate::progress::{ProgressEvent, SharedSink};
use crate::sim::{fork_streams, pack_seq, EngineState, Protocol, ShardRoute, SimCore, MAX_NODES};
use crate::stats::Traffic;
use crate::time::{SimDuration, SimTime};
use crate::wire::Wire;
use crate::NodeId;
use egm_rng::hash::FastHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Node count below which the size-based default runs the sequential
/// engine: window bookkeeping has nothing to amortize on runs whose whole
/// working set is cache-resident.
pub const SHARD_MIN_NODES: usize = 1000;

/// Cap on the size-based default shard count: beyond ~8 shards the
/// per-window barrier cost grows faster than the per-shard work shrinks
/// at the scales this simulator targets.
pub const MAX_AUTO_SHARDS: usize = 8;

/// The size-based default shard count: 1 below [`SHARD_MIN_NODES`] nodes,
/// otherwise the machine's available parallelism capped at
/// [`MAX_AUTO_SHARDS`]. Every choice produces byte-identical results, so
/// this only ever changes how fast a run completes.
pub fn auto_shards_for(nodes: usize) -> usize {
    if nodes < SHARD_MIN_NODES {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .clamp(1, MAX_AUTO_SHARDS)
        .min(nodes)
}

/// Reads the `EGM_SHARDS` override from the environment; `None` when
/// unset (the size-based default applies). `0` forces the sequential
/// engine — the escape hatch, mirroring `EGM_EVENT_QUEUE=heap`.
///
/// # Panics
///
/// Panics on an unparseable value — silently falling back would turn a
/// scaling A/B into two identical runs.
pub fn shards_from_env() -> Option<usize> {
    match std::env::var("EGM_SHARDS") {
        Err(_) => None,
        Ok(v) => Some(v.parse().unwrap_or_else(|_| {
            panic!("unrecognized EGM_SHARDS {v:?}: use 0 (sequential) or a shard count")
        })),
    }
}

/// How nodes are mapped to shards (see [`Partition`]). Every strategy
/// produces byte-identical simulation outputs — the strategy only moves
/// the cross-shard latency floor (the window lookahead) and the lane
/// traffic volume, i.e. how fast the run completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Near-equal contiguous id ranges (the PR 5 baseline). Cuts slice
    /// through stub domains, so the lookahead collapses to the
    /// stub-access floor.
    #[default]
    Contiguous,
    /// Topology-aware cuts on stub-domain boundaries, planned by
    /// clustering populated core routers to maximize the inter-shard
    /// latency floor; shards balanced by node count.
    DomainAligned,
    /// Domain-aligned cuts balanced by the per-domain event-rate
    /// estimate (fanout × view degree × traffic share) instead of raw
    /// node count.
    RateBalanced,
}

impl PartitionStrategy {
    /// Parses a strategy name as used by `EGM_PARTITION`.
    pub fn parse(s: &str) -> Option<PartitionStrategy> {
        match s {
            "contiguous" => Some(PartitionStrategy::Contiguous),
            "domain-aligned" | "domain" => Some(PartitionStrategy::DomainAligned),
            "rate-balanced" | "rate" => Some(PartitionStrategy::RateBalanced),
            _ => None,
        }
    }

    /// The canonical name (inverse of [`PartitionStrategy::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::DomainAligned => "domain-aligned",
            PartitionStrategy::RateBalanced => "rate-balanced",
        }
    }
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reads the `EGM_PARTITION` override from the environment; `None` when
/// unset (the scenario choice or the auto default applies).
///
/// # Panics
///
/// Panics on an unrecognized value — silently falling back would turn a
/// partitioning A/B into two identical runs.
pub fn partition_from_env() -> Option<PartitionStrategy> {
    match std::env::var("EGM_PARTITION") {
        Err(_) => None,
        Ok(v) => Some(PartitionStrategy::parse(&v).unwrap_or_else(|| {
            panic!(
                "unrecognized EGM_PARTITION {v:?}: use contiguous, domain-aligned or rate-balanced"
            )
        })),
    }
}

/// How a run's shard count was resolved (see
/// [`SimConfig::shard_choice`]): a forced count (scenario or `EGM_SHARDS`)
/// selects the sharded engine even at `W = 1` (and the sequential engine
/// at `0`), while the size-based default only engages the sharded engine
/// when it picks `W > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardChoice {
    /// Explicitly requested by configuration or environment.
    Forced(usize),
    /// The size-based default ([`auto_shards_for`]).
    Auto(usize),
}

impl ShardChoice {
    /// The shard count to run with (`0` meaning the sequential engine).
    pub fn count(self) -> usize {
        match self {
            ShardChoice::Forced(w) => w,
            ShardChoice::Auto(w) => w,
        }
    }

    /// Whether the run should use [`ShardedSim`] rather than the
    /// sequential [`Sim`](crate::Sim).
    pub fn use_sharded(self) -> bool {
        match self {
            ShardChoice::Forced(w) => w >= 1,
            ShardChoice::Auto(w) => w > 1,
        }
    }
}

/// A partition of the node id space over worker shards: an arbitrary
/// node→shard map with O(1) shard and local-index lookup.
///
/// Shards are non-empty and cover every id exactly once (property-
/// tested in `shard_equivalence` and the partition proptests). Within a
/// shard, nodes are ordered by ascending global id — that invariant is
/// what lets the engine hand each shard its slice of the global RNG
/// stream vectors and run `on_start` callbacks in a per-shard order
/// consistent with the sequential engine.
///
/// The map itself comes from a [`PartitionStrategy`]:
/// [`Partition::contiguous`] builds the near-equal range baseline, and
/// [`Partition::from_assignment`] accepts the domain-aligned plans of
/// [`egm_topology::RoutedModel::partition_plan`].
#[derive(Debug, Clone)]
pub struct Partition {
    /// Shard per node — O(1) lookup on the per-send routing path.
    assign: Vec<u32>,
    /// Local index of each node within its shard (position in the
    /// shard's ascending-id member list) — O(1) lookup on the dispatch
    /// path.
    local: Vec<u32>,
    /// Global ids owned by each shard, ascending.
    members: Vec<Vec<u32>>,
}

impl Partition {
    /// Splits `0..n` into `shards` contiguous near-equal ranges: shard
    /// `s` owns `[floor(s·n/W), floor((s+1)·n/W))`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds `n`.
    pub fn contiguous(n: usize, shards: usize) -> Partition {
        assert!(shards > 0, "need at least one shard");
        assert!(shards <= n, "more shards than nodes");
        let mut assign = vec![0u32; n];
        for (i, slot) in assign.iter_mut().enumerate() {
            *slot = ((i * shards) / n) as u32;
        }
        Partition::from_assignment(assign, shards)
    }

    /// Builds a partition from an explicit node→shard assignment.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the node count, if an
    /// assignment references a shard out of range, or if any shard would
    /// own no nodes.
    pub fn from_assignment(assign: Vec<u32>, shards: usize) -> Partition {
        assert!(shards > 0, "need at least one shard");
        assert!(shards <= assign.len(), "more shards than nodes");
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut local = vec![0u32; assign.len()];
        for (i, &s) in assign.iter().enumerate() {
            assert!(
                (s as usize) < shards,
                "assignment references shard {s} out of range"
            );
            local[i] = members[s as usize].len() as u32;
            members[s as usize].push(i as u32);
        }
        assert!(
            members.iter().all(|m| !m.is_empty()),
            "every shard must own at least one node"
        );
        Partition {
            assign,
            local,
            members,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// Number of nodes partitioned.
    pub fn node_count(&self) -> usize {
        self.assign.len()
    }

    /// The shard owning `node`.
    #[inline]
    pub fn shard_of(&self, node: usize) -> usize {
        self.assign[node] as usize
    }

    /// The position of `node` in its shard's ascending member list.
    #[inline]
    pub fn local_of(&self, node: usize) -> usize {
        self.local[node] as usize
    }

    /// The global ids owned by `shard`, ascending.
    pub fn members(&self, shard: usize) -> &[u32] {
        &self.members[shard]
    }

    /// The id range owned by `shard` — contiguous partitions only.
    ///
    /// # Panics
    ///
    /// Panics if the shard's membership is not one contiguous id run.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        let m = &self.members[shard];
        let start = m[0] as usize;
        let end = m[m.len() - 1] as usize + 1;
        assert_eq!(end - start, m.len(), "range() requires a contiguous shard");
        start..end
    }

    /// The per-node shard assignment (for lookahead derivation).
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }
}

/// A destination shard's inbox for cross-shard events published by the
/// threaded window driver.
type Mailbox<M> = Mutex<Vec<Scheduled<EventKind<M>>>>;

/// Window-loop counters of a sharded run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of worker shards.
    pub shards: usize,
    /// The partition strategy that actually took effect (a planned
    /// strategy falls back to [`PartitionStrategy::Contiguous`] when the
    /// delay source yields no domain structure to align with).
    pub strategy: PartitionStrategy,
    /// Conservative window length in microseconds (0 when a single shard
    /// runs windowless).
    pub lookahead_us: u64,
    /// Average virtual time advanced per executed window, in
    /// microseconds — the *realized* lookahead. At least `lookahead_us`
    /// (planning windows from the earliest pending event leaps over idle
    /// stretches); 0 before any window ran.
    pub realized_lookahead_us: u64,
    /// Windows executed (each is one parallel phase plus one barrier).
    pub windows: u64,
    /// Events that crossed shards through the lanes.
    pub lane_events: u64,
    /// Batched lane merges: one per (window, destination shard) that
    /// actually received events.
    pub lane_flushes: u64,
    /// Window boundaries at which the lane exchange was skipped because
    /// no shard had cross-shard sends pending.
    pub exchanges_skipped: u64,
    /// Events dispatched by each shard — the observable partition
    /// balance (sums to the sequential engine's event count).
    pub per_shard_events: Vec<u64>,
}

/// The deterministic sharded discrete-event simulator: the partitioned
/// twin of [`crate::Sim`]. See the module documentation for the
/// synchronization scheme; the public surface mirrors `Sim` (harness
/// scheduling, bounded runs, node access, traffic) with two deltas —
/// [`ShardedSim::send_external`] is pre-run only, and
/// [`ShardedSim::traffic`] requires [`ShardedSim::seal_traffic`] first
/// (the per-shard tables are merged at seal time).
#[derive(Debug)]
pub struct ShardedSim<P: Protocol> {
    shards: Vec<EngineState<P>>,
    partition: Arc<Partition>,
    /// The strategy the partition was actually built with.
    strategy: PartitionStrategy,
    /// Conservative window length; `None` collapses the run to a single
    /// window (single shard).
    lookahead: Option<SimDuration>,
    now: SimTime,
    harness_seq: u64,
    spill_threshold: usize,
    merged: Option<Traffic>,
    threaded: bool,
    windows: u64,
    lane_events: u64,
    lane_flushes: u64,
    exchanges_skipped: u64,
    /// Reusable scratch buffer for the per-destination lane merge of the
    /// single-threaded window driver.
    lane_gather: Vec<Scheduled<EventKind<P::Msg>>>,
    /// Observe-only progress sink; window plans are reported to it.
    /// `None` (the default) leaves the window loop exactly as it was —
    /// the sink is never consulted for decisions, so installing one
    /// cannot change any simulation output.
    progress: Option<SharedSink>,
}

impl<P: Protocol + Send> ShardedSim<P>
where
    P::Msg: Send,
{
    /// Creates a sharded simulation of `nodes` over the configured
    /// network, partitioned across `shards` workers (clamped to the node
    /// count). `seed` produces exactly the RNG tree of
    /// [`crate::Sim::new`], so the run is byte-identical to the
    /// sequential engine — under every [`PartitionStrategy`]: each node
    /// receives the RNG streams of its *global* id regardless of which
    /// shard owns it.
    ///
    /// The strategy resolves in precedence order: `Scenario` /
    /// [`SimConfig::with_partition`], then `EGM_PARTITION`, then auto
    /// (domain-aligned when the delay source yields a plan, contiguous
    /// otherwise). A planned strategy falls back to contiguous when no
    /// plan is available (uniform delays, or fewer populated domains
    /// than shards); the effective strategy is reported in
    /// [`ShardStats::strategy`].
    ///
    /// # Panics
    ///
    /// Panics if the node count mismatches the network configuration or
    /// `shards` is zero.
    pub fn new(config: SimConfig, seed: u64, nodes: Vec<P>, shards: usize) -> Self {
        let n = nodes.len();
        assert_eq!(
            n,
            config.node_count(),
            "node vector must match network size"
        );
        assert!(n <= MAX_NODES, "too many nodes for event keys");
        assert!(shards > 0, "need at least one shard");
        let w = shards.min(n);
        let (partition, strategy) = resolve_partition(&config, n, w);
        let partition = Arc::new(partition);
        let lookahead = config.conservative_lookahead(partition.assignment());
        assert!(
            w == 1 || lookahead.is_some(),
            "multi-shard runs must have a cross-shard latency floor"
        );
        let spill_threshold = config.link_spill_threshold();
        // A single shard's local record order *is* the global order, so
        // the spill rule needs no keys there (and the W = 1 hot path
        // stays probe-free, like the sequential engine's).
        let track_first_keys = spill_threshold != usize::MAX && w > 1;
        let (node_rngs, net_rngs) = fork_streams(seed, n);
        // Distribute nodes and streams by *global* id: shard `s` gets,
        // in ascending id order, exactly the entries of its members —
        // for contiguous partitions this degenerates to slicing.
        let mut nodes: Vec<Option<P>> = nodes.into_iter().map(Some).collect();
        let mut node_rngs: Vec<Option<_>> = node_rngs.into_iter().map(Some).collect();
        let mut net_rngs: Vec<Option<_>> = net_rngs.into_iter().map(Some).collect();
        let mut states = Vec::with_capacity(w);
        for s in 0..w {
            let members = partition.members(s);
            let route = ShardRoute::new(
                partition.clone(),
                s,
                w,
                track_first_keys.then(FastHashMap::default),
            );
            let take = |v: &mut Vec<Option<_>>| -> Vec<_> {
                members
                    .iter()
                    .map(|&i| v[i as usize].take().expect("each node owned once"))
                    .collect()
            };
            let core = SimCore::new(
                config.clone(),
                take(&mut node_rngs),
                take(&mut net_rngs),
                Some(route),
            );
            let owned: Vec<P> = members
                .iter()
                .map(|&i| nodes[i as usize].take().expect("each node owned once"))
                .collect();
            states.push(EngineState::new(core, owned));
        }
        ShardedSim {
            shards: states,
            partition,
            strategy,
            lookahead,
            now: SimTime::ZERO,
            harness_seq: 0,
            spill_threshold,
            merged: None,
            threaded: shard_threads_enabled(),
            windows: 0,
            lane_events: 0,
            lane_flushes: 0,
            exchanges_skipped: 0,
            lane_gather: Vec::new(),
            progress: None,
        }
    }

    /// Installs an observe-only progress sink: both window drivers
    /// report each planned window ([`ProgressEvent::Window`]) to it.
    /// The sink receives copies of counters the engine already keeps
    /// and is never consulted for decisions, so results stay
    /// byte-identical with or without one (the workload
    /// `progress_determinism` test asserts this).
    pub fn set_progress_sink(&mut self, sink: SharedSink) {
        self.progress = Some(sink);
    }

    /// Forces the window driver onto one thread (`false`) or worker
    /// threads (`true`). Both drivers produce identical results; the
    /// default follows available parallelism and the
    /// `EGM_SHARD_THREADS` variable (`0` disables threads).
    pub fn set_threaded(&mut self, on: bool) {
        self.threaded = on;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.partition.node_count()
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The node partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The partition strategy that actually took effect.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Window-loop counters.
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats {
            shards: self.shards.len(),
            strategy: self.strategy,
            lookahead_us: self.lookahead.map_or(0, |l| l.as_micros()),
            realized_lookahead_us: self.now.as_micros().checked_div(self.windows).unwrap_or(0),
            windows: self.windows,
            lane_events: self.lane_events,
            lane_flushes: self.lane_flushes,
            exchanges_skipped: self.exchanges_skipped,
            per_shard_events: self.shards.iter().map(|s| s.events_processed).collect(),
        }
    }

    /// Total events processed across all shards; identical to the
    /// sequential engine's count (replicated fault events are counted
    /// once, by the shard owning the affected node).
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Timers cancelled across all shards.
    pub fn timers_cancelled(&self) -> u64 {
        self.shards.iter().map(|s| s.core.timers_cancelled()).sum()
    }

    /// Stale timer events dropped at pop time across all shards.
    pub fn stale_timer_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.core.stale_timer_drops()).sum()
    }

    /// Event-queue counters aggregated over the per-shard queues: sums
    /// for activity counters (`pushes`, `pops`, `resizes`, `year_scans`)
    /// and `bucket_count`, with `max_len` the sum of per-shard peaks (an
    /// upper bound on global concurrency) and `bucket_width_us` the
    /// maximum across shards.
    pub fn queue_stats(&self) -> QueueStats {
        let mut agg = QueueStats::default();
        for s in &self.shards {
            let q = s.core.queue.stats();
            agg.pushes += q.pushes;
            agg.pops += q.pops;
            agg.max_len += q.max_len;
            agg.resizes += q.resizes;
            agg.bucket_count += q.bucket_count;
            agg.bucket_width_us = agg.bucket_width_us.max(q.bucket_width_us);
            agg.year_scans += q.year_scans;
        }
        agg
    }

    /// Immutable access to a protocol node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &P {
        let s = self.partition.shard_of(id.index());
        &self.shards[s].nodes[self.partition.local_of(id.index())]
    }

    /// Mutable access to a protocol node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        let s = self.partition.shard_of(id.index());
        &mut self.shards[s].nodes[self.partition.local_of(id.index())]
    }

    /// Iterates over all nodes with their ids, in id order — regardless
    /// of which shard owns which id.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        (0..self.partition.node_count()).map(|i| (NodeId(i), self.node(NodeId(i))))
    }

    /// Mutably iterates over all nodes with their ids, in shard order
    /// (e.g. for the harness's end-of-run sweeps — callers must not
    /// depend on iteration order).
    pub fn nodes_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut P)> {
        let partition = &self.partition;
        self.shards.iter_mut().enumerate().flat_map(move |(s, sh)| {
            sh.nodes
                .iter_mut()
                .zip(partition.members(s))
                .map(|(n, &g)| (NodeId(g as usize), n))
        })
    }

    /// Merges the per-shard traffic tables into the sealed global view
    /// (idempotent). Must be called before [`ShardedSim::traffic`]; the
    /// simulation must not send any further messages afterwards.
    pub fn seal_traffic(&mut self) {
        if self.merged.is_some() {
            return;
        }
        let parts: Vec<Traffic> = self
            .shards
            .iter_mut()
            .map(|sh| std::mem::take(&mut sh.core.traffic))
            .collect();
        let raw: Vec<_> = self
            .shards
            .iter_mut()
            .map(|sh| sh.core.take_first_keys())
            .collect();
        let keys = resolve_first_keys(raw);
        self.merged = Some(Traffic::merge_shards(parts, keys, self.spill_threshold));
    }

    /// The merged transport-level traffic accounting.
    ///
    /// # Panics
    ///
    /// Panics unless [`ShardedSim::seal_traffic`] ran first — per-shard
    /// tables are merged at seal time.
    pub fn traffic(&self) -> &Traffic {
        self.merged
            .as_ref()
            .expect("call ShardedSim::seal_traffic() before traffic()")
    }

    /// The virtual network's current state. Fault events (silence,
    /// revive, degradation, slowdown) are replicated to every shard, so
    /// each shard's copy holds the same fault view; shard 0's copy is
    /// returned as the representative.
    pub fn network(&self) -> &Network {
        self.shards[0].core.network()
    }

    /// Reserves the next harness event key (shared by every shard so
    /// harness events order exactly as in the sequential engine).
    fn next_harness_seq(&mut self) -> u64 {
        let seq = pack_seq(0, self.harness_seq);
        self.harness_seq += 1;
        seq
    }

    /// Schedules a harness command for `node` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, value: u64) {
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        let s = self.partition.shard_of(node.index());
        self.shards[s].core.enqueue(Scheduled {
            time: at,
            seq,
            item: EventKind::Command { node, value },
        });
    }

    /// Schedules node silencing at time `at`. The event is replicated to
    /// every shard (each holds its own fault view) under one shared key,
    /// so all shards apply it at the same point of the global order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_silence(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        for sh in &mut self.shards {
            sh.core.enqueue(Scheduled {
                time: at,
                seq,
                item: EventKind::Silence(node),
            });
        }
    }

    /// Schedules node revival at time `at` (see
    /// [`ShardedSim::schedule_silence`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_revive(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        for sh in &mut self.shards {
            sh.core.enqueue(Scheduled {
                time: at,
                seq,
                item: EventKind::Revive(node),
            });
        }
    }

    /// Schedules a transit-degradation change at time `at`, replicated to
    /// every shard under one shared key like
    /// [`ShardedSim::schedule_silence`]. Degradation only *lengthens*
    /// delays (`latency_mult ≥ 1.0`), so the conservative window
    /// lookahead computed from the healthy network remains a valid lower
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, `latency_mult < 1.0`, or
    /// `extra_loss` is outside `[0, 1]`.
    pub fn schedule_degrade(&mut self, at: SimTime, latency_mult: f64, extra_loss: f64) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!(
            latency_mult.is_finite() && latency_mult >= 1.0,
            "degradation may only lengthen delays"
        );
        assert!(
            (0.0..=1.0).contains(&extra_loss),
            "extra loss must be a probability"
        );
        let seq = self.next_harness_seq();
        for sh in &mut self.shards {
            sh.core.enqueue(Scheduled {
                time: at,
                seq,
                item: EventKind::Degrade {
                    latency_mult,
                    extra_loss,
                },
            });
        }
    }

    /// Schedules a processing-slowdown change for `node` at time `at`,
    /// replicated to every shard under one shared key (see
    /// [`ShardedSim::schedule_silence`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_slowdown(&mut self, at: SimTime, node: NodeId, delay: SimDuration) {
        assert!(at >= self.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        for sh in &mut self.shards {
            sh.core.enqueue(Scheduled {
                time: at,
                seq,
                item: EventKind::Slowdown { node, delay },
            });
        }
    }

    /// Injects a message from outside the simulation, delivered after the
    /// usual network delay. Pre-run only under sharding: mid-run
    /// injection would race the window pipeline.
    ///
    /// # Panics
    ///
    /// Panics once the simulation has started.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        assert!(
            !self.shards.iter().any(|s| s.started),
            "ShardedSim::send_external is pre-run only"
        );
        let seq = self.next_harness_seq();
        let src = self.partition.shard_of(from.index());
        let bytes = msg.wire_bytes();
        self.shards[src].core.begin_harness(seq);
        let now = self.now;
        if let Some(delay) =
            self.shards[src]
                .core
                .harness_send(now, from, to, bytes, msg.is_payload())
        {
            let time = now + delay;
            let dest = self.partition.shard_of(to.index());
            self.shards[dest].core.enqueue(Scheduled {
                time,
                seq,
                item: EventKind::Deliver { to, from, msg },
            });
        }
    }

    /// Runs until every queue is exhausted or virtual time would pass
    /// `deadline`; the clock finishes at `deadline` if it was reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_windows(Some(deadline));
        if self.now < deadline {
            self.now = deadline;
        }
        for sh in &mut self.shards {
            if sh.now < deadline {
                sh.now = deadline;
            }
        }
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until every queue and lane is fully drained (beware periodic
    /// timers: protocols that always re-arm will never drain).
    pub fn run_to_idle(&mut self) {
        self.run_windows(None);
    }

    /// The window loop. Windows are planned from the global minimum
    /// pending event time `M`: everything in `[M, M + L)` is safe to run
    /// in parallel, so the bound handed to each shard is `M + L - 1 µs`
    /// (inclusive). Planning from `M` rather than marching fixed windows
    /// lets the loop leap over idle stretches of virtual time.
    fn run_windows(&mut self, deadline: Option<SimTime>) {
        let Some(lookahead) = self.lookahead else {
            // Single shard: no cross-shard events can exist, so the one
            // queue drains straight to the deadline — one "window", no
            // lanes, no barriers. This is the W = 1 configuration whose
            // per-window overhead the acceptance bar caps.
            debug_assert_eq!(self.shards.len(), 1);
            if let Some(sink) = &self.progress {
                if let Some(next) = self.shards[0].core.next_time() {
                    sink.emit(ProgressEvent::Window {
                        window: self.windows + 1,
                        now_us: next.as_micros(),
                        events: self.shards[0].events_processed,
                    });
                }
            }
            self.shards[0].run_bounded(deadline);
            self.windows += 1;
            self.now = self.now.max(self.shards[0].now);
            return;
        };
        if self.threaded {
            self.run_windows_threaded(deadline, lookahead);
        } else {
            self.run_windows_sequential(deadline, lookahead);
        }
    }

    /// Single-threaded window driver: identical schedule to the threaded
    /// driver, useful on one core and as the determinism reference.
    fn run_windows_sequential(&mut self, deadline: Option<SimTime>, lookahead: SimDuration) {
        for sh in &mut self.shards {
            sh.ensure_started();
        }
        loop {
            self.exchange_lanes();
            let min_t = self
                .shards
                .iter()
                .filter_map(|sh| sh.core.next_time())
                .min();
            let Some(min_t) = min_t else { break };
            if deadline.is_some_and(|d| min_t > d) {
                break;
            }
            let bound = window_bound(min_t, lookahead, deadline);
            if let Some(sink) = &self.progress {
                sink.emit(ProgressEvent::Window {
                    window: self.windows + 1,
                    now_us: min_t.as_micros(),
                    events: self.shards.iter().map(|sh| sh.events_processed).sum(),
                });
            }
            for sh in &mut self.shards {
                sh.run_bounded(Some(bound));
            }
            self.windows += 1;
        }
        // Like the threaded driver (and the sequential `Sim`), the clock
        // finishes at the latest dispatched event; `run_until` then pads
        // it to the deadline.
        if let Some(max_now) = self.shards.iter().map(|sh| sh.now).max() {
            self.now = self.now.max(max_now);
        }
    }

    /// Moves every pending cross-shard lane into its destination queue.
    ///
    /// Adaptive: when no shard has cross-shard sends pending, the whole
    /// exchange is one boolean check. Otherwise the per-`(src, dst)`
    /// lanes are coalesced into **one sorted merge per destination**: all
    /// source lanes gather into a reusable scratch buffer, sort by the
    /// intrinsic `(time, seq)` key, and enter the destination queue in
    /// ascending order — one batched flush instead of `W - 1` per-lane
    /// event streams. Push order never affects dispatch order (the queue
    /// orders by key), so batching is purely a throughput change.
    fn exchange_lanes(&mut self) {
        if !self.shards.iter().any(|sh| sh.core.lanes_pending()) {
            self.exchanges_skipped += 1;
            return;
        }
        let w = self.shards.len();
        let mut gather = std::mem::take(&mut self.lane_gather);
        for dst in 0..w {
            debug_assert!(gather.is_empty());
            for src in 0..w {
                if dst == src {
                    continue;
                }
                let mut lane = self.shards[src].core.take_lane(dst);
                self.lane_events += lane.len() as u64;
                gather.append(&mut lane);
                self.shards[src].core.put_lane(dst, lane);
            }
            if gather.is_empty() {
                continue;
            }
            gather.sort_unstable_by_key(|ev| (ev.time, ev.seq));
            self.lane_flushes += 1;
            for ev in gather.drain(..) {
                self.shards[dst].core.enqueue(ev);
            }
        }
        self.lane_gather = gather;
    }

    /// Multi-threaded window driver: one persistent worker per shard,
    /// three barrier phases per window (publish lanes → merge + report →
    /// plan). Lane hand-off goes through per-destination mailboxes; a
    /// worker may publish into a mailbox while its owner still processes
    /// the previous window — merged-early events simply wait in the
    /// queue, which is harmless (only merging *late* would be a bug, and
    /// the publish-before-report barrier order rules it out).
    fn run_windows_threaded(&mut self, deadline: Option<SimTime>, lookahead: SimDuration) {
        /// Sentinel bound: stop the loop.
        const STOP: u64 = u64::MAX;
        let w = self.shards.len();
        let barrier = Barrier::new(w);
        let next_times: Vec<AtomicU64> = (0..w).map(|_| AtomicU64::new(0)).collect();
        // Per-shard dispatched-event counts, refreshed at each boundary
        // so the leader can report progress without touching peer state.
        let events_counts: Vec<AtomicU64> = self
            .shards
            .iter()
            .map(|sh| AtomicU64::new(sh.events_processed))
            .collect();
        let base_windows = self.windows;
        let progress = self.progress.clone();
        let bound_cell = AtomicU64::new(0);
        let windows = AtomicU64::new(0);
        let lane_events = AtomicU64::new(0);
        let lane_flushes = AtomicU64::new(0);
        let exchanges_skipped = AtomicU64::new(0);
        // Events published into mailboxes during the current boundary;
        // 0 lets every worker skip its mailbox entirely (adaptive
        // exchange). Reset by the leader while planning the window.
        let published = AtomicU64::new(0);
        let mailboxes: Vec<Mailbox<P::Msg>> = (0..w).map(|_| Mutex::new(Vec::new())).collect();
        let deadline_us = deadline.map(|d| d.as_micros());
        let lookahead_us = lookahead.as_micros();
        // `Barrier` does not poison: a worker that panicked and left the
        // protocol would deadlock its peers. Panics are therefore caught
        // per work segment; a poisoned worker keeps walking the barrier
        // sequence (doing no work, reporting "empty"), the abort flag
        // makes the leader plan a stop for everyone, and the payload is
        // re-raised once the scope is ready to join.
        let abort = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for (i, sh) in self.shards.iter_mut().enumerate() {
                let barrier = &barrier;
                let next_times = &next_times;
                let bound_cell = &bound_cell;
                let windows = &windows;
                let lane_events = &lane_events;
                let lane_flushes = &lane_flushes;
                let exchanges_skipped = &exchanges_skipped;
                let published = &published;
                let mailboxes = &mailboxes;
                let abort = &abort;
                let events_counts = &events_counts;
                let progress = &progress;
                scope.spawn(move || {
                    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
                    let mut poison = None;
                    let guard = |p: &mut Option<_>, f: &mut dyn FnMut()| {
                        if p.is_none() {
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                                *p = Some(payload);
                                abort.store(true, Ordering::SeqCst);
                            }
                        }
                    };
                    guard(&mut poison, &mut || sh.ensure_started());
                    loop {
                        // Phase 1: publish this shard's outgoing lanes
                        // (skipped outright when it has none pending).
                        guard(&mut poison, &mut || {
                            if !sh.core.lanes_pending() {
                                return;
                            }
                            for (dst, mailbox) in mailboxes.iter().enumerate() {
                                if dst == i {
                                    continue;
                                }
                                let mut lane = sh.core.take_lane(dst);
                                if !lane.is_empty() {
                                    lane_events.fetch_add(lane.len() as u64, Ordering::Relaxed);
                                    published.fetch_add(lane.len() as u64, Ordering::SeqCst);
                                    mailbox.lock().unwrap().append(&mut lane);
                                }
                                sh.core.put_lane(dst, lane);
                            }
                        });
                        barrier.wait();
                        // Phase 2: merge incoming events (one sorted
                        // batch per window — sources appended, the drain
                        // sorts by intrinsic key and pushes ascending),
                        // then report the earliest pending time. When
                        // nothing was published anywhere, every mailbox
                        // is known empty and the exchange is skipped.
                        let mut t = u64::MAX;
                        guard(&mut poison, &mut || {
                            if published.load(Ordering::SeqCst) > 0 {
                                let mut incoming =
                                    std::mem::take(&mut *mailboxes[i].lock().unwrap());
                                if !incoming.is_empty() {
                                    incoming.sort_unstable_by_key(|ev| (ev.time, ev.seq));
                                    lane_flushes.fetch_add(1, Ordering::Relaxed);
                                    for ev in incoming.drain(..) {
                                        sh.core.enqueue(ev);
                                    }
                                    // Hand the buffer back so its
                                    // capacity is reused next window.
                                    *mailboxes[i].lock().unwrap() = incoming;
                                }
                            }
                            t = sh.core.next_time().map_or(u64::MAX, |t| t.as_micros());
                        });
                        next_times[i].store(t, Ordering::SeqCst);
                        events_counts[i].store(sh.events_processed, Ordering::SeqCst);
                        let turn = barrier.wait();
                        // Phase 3: one leader plans the window for all.
                        if turn.is_leader() {
                            // Reset the publish counter for the next
                            // boundary (every phase-2 read is behind the
                            // previous barrier; the next phase-1 adds are
                            // behind the following one).
                            if published.swap(0, Ordering::SeqCst) == 0 {
                                exchanges_skipped.fetch_add(1, Ordering::Relaxed);
                            }
                            let min_t = next_times
                                .iter()
                                .map(|t| t.load(Ordering::SeqCst))
                                .min()
                                .expect("at least one shard");
                            let stop = abort.load(Ordering::SeqCst)
                                || min_t == u64::MAX
                                || deadline_us.is_some_and(|d| min_t > d);
                            let plan = if stop {
                                STOP
                            } else {
                                let local = windows.fetch_add(1, Ordering::Relaxed) + 1;
                                // Observe-only: the sink sees the plan
                                // the leader just made, it cannot
                                // change it.
                                if let Some(sink) = progress {
                                    sink.emit(ProgressEvent::Window {
                                        window: base_windows + local,
                                        now_us: min_t,
                                        events: events_counts
                                            .iter()
                                            .map(|c| c.load(Ordering::SeqCst))
                                            .sum(),
                                    });
                                }
                                let mut b = min_t + lookahead_us - 1;
                                if let Some(d) = deadline_us {
                                    b = b.min(d);
                                }
                                b
                            };
                            bound_cell.store(plan, Ordering::SeqCst);
                        }
                        barrier.wait();
                        let bound = bound_cell.load(Ordering::SeqCst);
                        if bound == STOP {
                            break;
                        }
                        guard(&mut poison, &mut || {
                            sh.run_bounded(Some(SimTime::from_micros(bound)));
                        });
                    }
                    if let Some(payload) = poison {
                        resume_unwind(payload);
                    }
                });
            }
        });
        self.windows += windows.into_inner();
        self.lane_events += lane_events.into_inner();
        self.lane_flushes += lane_flushes.into_inner();
        self.exchanges_skipped += exchanges_skipped.into_inner();
        let max_now = self.shards.iter().map(|sh| sh.now).max();
        if let Some(t) = max_now {
            self.now = self.now.max(t);
        }
    }
}

/// Rewrites per-shard first-appearance keys into one globally comparable
/// order, reproducing the *sequential execution* order of the record
/// stream.
///
/// Pre-run and `on_start` keys are already global (harness counter /
/// node id). Dispatch-phase keys rank by `(tick, local execution
/// position)`, which is only comparable within one shard: when several
/// shards hold first appearances in the *same* microsecond tick, their
/// interleaving must be replayed. The sequential engine's within-tick
/// order is the greedy head-merge of the shards' local execution
/// sequences by intrinsic event key — at every step the event the
/// sequential queue would pop next is the smallest-keyed *head* (local
/// predecessors must dispatch first, because a same-tick child only
/// enters the queue when its parent runs; shards not holding first
/// appearances in the tick cannot reorder the others and are skipped).
/// The replay assigns each involved event its cross-shard slot, and the
/// keys are rewritten to `(tick, slot)`.
#[allow(clippy::type_complexity)]
fn resolve_first_keys(
    raw: Vec<Option<(FastHashMap<u64, u128>, FastHashMap<u64, Vec<u64>>)>>,
) -> Vec<Option<FastHashMap<u64, u128>>> {
    use crate::sim::{key_mid, key_phase, key_tick, key_with_mid, PHASE_DISPATCH};
    // Ticks holding dispatch-phase first appearances, per shard.
    let mut tick_shards: FastHashMap<u64, Vec<usize>> = FastHashMap::default();
    for (s, entry) in raw.iter().enumerate() {
        if let Some((keys, _)) = entry {
            for &key in keys.values() {
                if key_phase(key) == PHASE_DISPATCH {
                    let shards = tick_shards.entry(key_tick(key)).or_default();
                    if shards.last() != Some(&s) && !shards.contains(&s) {
                        shards.push(s);
                    }
                }
            }
        }
    }
    // Replay every contended tick: cross-shard slot per (tick, shard,
    // local position).
    let mut slots: FastHashMap<(u64, usize, u64), u64> = FastHashMap::default();
    for (&tick, shards) in &tick_shards {
        if shards.len() < 2 {
            continue;
        }
        let seqs: Vec<&[u64]> = shards
            .iter()
            .map(|&s| {
                raw[s]
                    .as_ref()
                    .and_then(|(_, log)| log.get(&tick))
                    .expect("a shard with first appearances retained the tick")
                    .as_slice()
            })
            .collect();
        let mut heads = vec![0usize; seqs.len()];
        let mut slot = 0u64;
        loop {
            let next = (0..seqs.len())
                .filter(|&i| heads[i] < seqs[i].len())
                .min_by_key(|&i| seqs[i][heads[i]]);
            let Some(i) = next else { break };
            slots.insert((tick, shards[i], heads[i] as u64), slot);
            heads[i] += 1;
            slot += 1;
        }
    }
    raw.into_iter()
        .enumerate()
        .map(|(s, entry)| {
            entry.map(|(mut keys, _)| {
                for key in keys.values_mut() {
                    if key_phase(*key) == PHASE_DISPATCH {
                        let tick = key_tick(*key);
                        if tick_shards.get(&tick).is_some_and(|v| v.len() >= 2) {
                            // The mid field holds the local execution
                            // position (the record index lives in the
                            // low bits, untouched by the rewrite).
                            let pos = key_mid(*key);
                            let slot = slots[&(tick, s, pos)];
                            *key = key_with_mid(*key, slot);
                        }
                    }
                }
                keys
            })
        })
        .collect()
}

/// Builds the node partition for a `w`-shard run of `n` nodes, applying
/// the strategy resolution of [`SimConfig::partition_strategy`] and
/// returning the partition together with the strategy that actually
/// took effect: a planned strategy (domain-aligned or rate-balanced)
/// falls back to contiguous when the delay source yields no plan —
/// uniform delays, a dense model, or fewer populated domains than
/// shards. Single-shard runs always use the (trivial) contiguous
/// partition.
fn resolve_partition(config: &SimConfig, n: usize, w: usize) -> (Partition, PartitionStrategy) {
    let requested = config.partition_strategy();
    if w > 1 && requested != Some(PartitionStrategy::Contiguous) {
        let rate = requested == Some(PartitionStrategy::RateBalanced);
        if let Some(assign) = config.planned_assignment(w, rate) {
            let effective = if rate {
                PartitionStrategy::RateBalanced
            } else {
                PartitionStrategy::DomainAligned
            };
            return (Partition::from_assignment(assign, w), effective);
        }
    }
    (Partition::contiguous(n, w), PartitionStrategy::Contiguous)
}

/// The inclusive bound of the window starting at the earliest pending
/// event: everything strictly earlier than `min_t + lookahead` may run,
/// clamped to the deadline.
fn window_bound(min_t: SimTime, lookahead: SimDuration, deadline: Option<SimTime>) -> SimTime {
    let b = SimTime::from_micros(min_t.as_micros() + lookahead.as_micros() - 1);
    match deadline {
        Some(d) => b.min(d),
        None => b,
    }
}

/// Whether the window driver should use worker threads: yes when the
/// machine has more than one core, overridable with `EGM_SHARD_THREADS`
/// (`0` forces the single-threaded driver, anything else forces
/// threads).
fn shard_threads_enabled() -> bool {
    match std::env::var("EGM_SHARD_THREADS") {
        Ok(v) => v != "0",
        Err(_) => std::thread::available_parallelism()
            .map(|c| c.get() > 1)
            .unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::{auto_shards_for, Partition, ShardChoice};

    #[test]
    fn contiguous_partition_covers_every_node_once() {
        for (n, w) in [(1, 1), (7, 3), (10, 4), (1000, 8), (17, 17)] {
            let p = Partition::contiguous(n, w);
            assert_eq!(p.shard_count(), w);
            assert_eq!(p.node_count(), n);
            let mut seen = 0usize;
            for s in 0..w {
                let r = p.range(s);
                assert!(!r.is_empty(), "shard {s} empty for n={n}, w={w}");
                for i in r {
                    assert_eq!(p.shard_of(i), s);
                    seen += 1;
                }
            }
            assert_eq!(seen, n, "ranges must cover 0..n exactly once");
        }
    }

    #[test]
    fn partition_ranges_are_near_equal() {
        let p = Partition::contiguous(10, 3);
        let sizes: Vec<usize> = (0..3).map(|s| p.range(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "more shards than nodes")]
    fn partition_rejects_oversharding() {
        let _ = Partition::contiguous(3, 4);
    }

    #[test]
    fn auto_default_is_sequential_below_the_floor() {
        assert_eq!(auto_shards_for(100), 1);
        assert_eq!(auto_shards_for(999), 1);
        assert!(auto_shards_for(1000) >= 1);
        assert!(auto_shards_for(10_000) <= super::MAX_AUTO_SHARDS);
    }

    #[test]
    fn shard_choice_engine_selection() {
        assert!(ShardChoice::Forced(1).use_sharded());
        assert!(ShardChoice::Forced(4).use_sharded());
        assert!(!ShardChoice::Forced(0).use_sharded());
        assert!(!ShardChoice::Auto(1).use_sharded());
        assert!(ShardChoice::Auto(2).use_sharded());
    }
}
