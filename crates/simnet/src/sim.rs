//! The simulation engine: event loop, protocol trait, and node context.
//!
//! # Event ordering: intrinsic `(time, origin, origin-seq)` keys
//!
//! Events dispatch in `(time, seq)` order, where `seq` packs the event's
//! *origin* (the node whose callback scheduled it, or the harness) and a
//! per-origin counter (`pack_seq`). The key is therefore an intrinsic
//! property of the schedule — a function of the originating node's own
//! event history, never of the global interleaving in which pushes
//! happened to execute. That is what lets the sharded engine
//! ([`crate::ShardedSim`]) process disjoint node ranges concurrently and
//! still dispatch every event at exactly the position the sequential
//! [`Sim`] would: both engines compute identical keys without
//! coordination.
//!
//! For the same reason the network randomness (loss, jitter) is one
//! stream *per sender* rather than one global stream: a sender's draws
//! depend only on its own send order, which both engines reproduce.

use crate::event::{EventKind, QueueImpl, QueueStats, Scheduled};
use crate::net::{Network, SimConfig};
use crate::shard::Partition;
use crate::stats::Traffic;
use crate::time::{SimDuration, SimTime};
use crate::wire::Wire;
use crate::NodeId;
use egm_rng::hash::FastHashMap;
use egm_rng::Rng;
use std::sync::Arc;

/// Tag identifying a protocol timer; meaning is private to the node that
/// set it.
pub type TimerTag = u64;

/// Bits of [`Scheduled::seq`] carrying the per-origin counter; the top
/// bits carry the origin rank (0 = harness, node `i` = `i + 1`).
const LOCAL_SEQ_BITS: u32 = 40;

/// Maximum number of protocol nodes the event-key encoding supports
/// (24 bits of origin rank, minus the harness rank).
pub(crate) const MAX_NODES: usize = (1 << (64 - LOCAL_SEQ_BITS)) - 1;

/// Packs an origin rank and its per-origin counter into the
/// [`Scheduled::seq`] tie-breaker. Keys are unique (each origin counts
/// its own pushes) and independent of execution interleaving, so the
/// sequential and sharded engines order same-tick events identically.
#[inline]
pub(crate) fn pack_seq(origin_rank: u32, local: u64) -> u64 {
    debug_assert!((origin_rank as usize) <= MAX_NODES, "origin out of range");
    debug_assert!(local < (1 << LOCAL_SEQ_BITS), "per-origin counter overflow");
    ((origin_rank as u64) << LOCAL_SEQ_BITS) | local
}

/// Forks the deterministic RNG streams exactly as every engine must: one
/// protocol stream per node in id order, then one network (loss/jitter)
/// stream per *sender* in id order. The sharded engine distributes these
/// vectors by *global* node id (whatever the partition shape), so a
/// node's streams are identical no matter which shard — or engine —
/// drives it.
pub(crate) fn fork_streams(seed: u64, n: usize) -> (Vec<Rng>, Vec<Rng>) {
    let mut root = Rng::seed_from_u64(seed);
    let node_rngs: Vec<Rng> = (0..n).map(|_| root.fork()).collect();
    let net_rngs: Vec<Rng> = (0..n).map(|_| root.fork()).collect();
    (node_rngs, net_rngs)
}

/// Handle to a cancellable timer armed with
/// [`Context::set_cancellable_timer`].
///
/// A token is a generation-stamped slot in the simulator's timer table.
/// Cancelling (or firing) a timer bumps its slot's generation, so the
/// already-queued heap event is recognized as stale at pop time and
/// dropped *before* dispatch — no heap surgery, no index maintenance, and
/// no dead events reaching the protocol. Tokens are single-use: once the
/// timer fires or is cancelled, the token is spent and further cancels
/// return `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken {
    slot: u32,
    generation: u32,
}

/// Generation table behind [`TimerToken`]: one generation counter per
/// slot, with freed slots recycled so the table size tracks the maximum
/// number of *concurrently* armed cancellable timers, not the total ever
/// armed.
#[derive(Debug, Default)]
struct TimerTable {
    generations: Vec<u32>,
    free: Vec<u32>,
    cancelled: u64,
    stale_drops: u64,
}

impl TimerTable {
    /// Allocates a slot (recycling freed ones) and returns its token.
    fn arm(&mut self) -> TimerToken {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        TimerToken {
            slot,
            generation: self.generations[slot as usize],
        }
    }

    /// Invalidates a live token. Returns `false` if it was already spent.
    fn cancel(&mut self, token: TimerToken) -> bool {
        let slot = &mut self.generations[token.slot as usize];
        if *slot != token.generation {
            return false;
        }
        *slot = slot.wrapping_add(1);
        self.free.push(token.slot);
        self.cancelled += 1;
        true
    }

    /// Consumes a token at pop time. Returns `true` when the event is
    /// live (and retires the slot), `false` when stale.
    fn fire(&mut self, token: TimerToken) -> bool {
        let slot = &mut self.generations[token.slot as usize];
        if *slot != token.generation {
            self.stale_drops += 1;
            return false;
        }
        *slot = slot.wrapping_add(1);
        self.free.push(token.slot);
        true
    }
}

/// Behaviour of a simulated protocol node.
///
/// All callbacks receive a [`Context`] giving access to the virtual clock,
/// the node's own id and RNG stream, message sending and timers. Nodes are
/// single-threaded and run to completion per event (the actor model), so no
/// synchronization is ever needed — including under the sharded engine,
/// which never runs two events of the same node concurrently.
///
/// # Examples
///
/// See the crate-level example.
pub trait Protocol {
    /// Message type exchanged by this protocol.
    type Msg: Wire;

    /// Called once at simulation start (time zero), in node-id order.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this node.
    fn on_receive(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, tag: TimerTag) {
        let _ = (ctx, tag);
    }

    /// Called when the experiment harness injects a command (see
    /// [`Sim::schedule_command`]) — e.g. "multicast message number `value`
    /// now" from the traffic generator.
    fn on_command(&mut self, ctx: &mut Context<'_, Self::Msg>, value: u64) {
        let _ = (ctx, value);
    }
}

/// Cross-shard routing state carried by a worker shard's core; absent in
/// the sequential engine.
#[derive(Debug)]
pub(crate) struct ShardRoute<M> {
    /// The node partition, shared by all shards of one run.
    pub(crate) partition: Arc<Partition>,
    /// This shard's index.
    pub(crate) me: usize,
    /// Outgoing cross-shard deliveries, one lane per destination shard;
    /// moved into the destination's queue at the next window boundary.
    pub(crate) lanes: Vec<Vec<Scheduled<EventKind<M>>>>,
    /// First-appearance order key per directed link, maintained only when
    /// the merged traffic view will need the global first-appearance
    /// order (finite spill threshold) — see [`Traffic::merge_shards`].
    ///
    /// Within one microsecond tick, *execution* order is not key order:
    /// a callback may push a same-tick event with a smaller intrinsic
    /// key (a zero-delay timer from a lower-ranked origin), which the
    /// engine dispatches *after* its parent. Dispatch-phase keys
    /// therefore rank events by `(tick, local execution position)`, and
    /// the seal-time merge replays the cross-shard interleaving of any
    /// tick holding first appearances from several shards (see
    /// `crate::shard::resolve_first_keys`) — reproducing the sequential
    /// record stream exactly.
    pub(crate) first_keys: Option<FastHashMap<u64, u128>>,
    /// Order key of the event currently dispatching (low bits left for
    /// the per-event record index).
    cur_key: u128,
    /// Traffic records emitted by the current event so far.
    cur_idx: u32,
    /// The tick (µs) the execution buffer below describes.
    tick_us: u64,
    /// Intrinsic keys of the protocol events dispatched at `tick_us`, in
    /// local execution order (fault events and stale timer drops are
    /// excluded — they emit no records and push nothing, so they are
    /// transparent to the record order).
    tick_buf: Vec<u64>,
    /// First appearances recorded during `tick_us` so far.
    tick_firsts: u32,
    /// Retained execution sequences for every tick that held a first
    /// appearance — the data the seal-time replay needs.
    tick_log: FastHashMap<u64, Vec<u64>>,
}

impl<M> ShardRoute<M> {
    /// Closes the buffered tick: sequences of ticks that held a first
    /// appearance are retained for the seal-time replay, the rest are
    /// discarded.
    fn flush_tick(&mut self) {
        if self.tick_firsts > 0 {
            self.tick_log.insert(self.tick_us, self.tick_buf.clone());
        }
        self.tick_buf.clear();
        self.tick_firsts = 0;
    }
}

impl<M> ShardRoute<M> {
    /// Builds the routing state for shard `me` of `shard_count`.
    pub(crate) fn new(
        partition: Arc<Partition>,
        me: usize,
        shard_count: usize,
        first_keys: Option<FastHashMap<u64, u128>>,
    ) -> Self {
        ShardRoute {
            partition,
            me,
            lanes: (0..shard_count).map(|_| Vec::new()).collect(),
            first_keys,
            cur_key: 0,
            cur_idx: 0,
            // Sentinel: the first dispatched tick (even tick 0) opens a
            // fresh buffer.
            tick_us: u64::MAX,
            tick_buf: Vec::new(),
            tick_firsts: 0,
            tick_log: FastHashMap::default(),
        }
    }
}

/// Phase component of a traffic-record order key: pre-run harness
/// injections come first, then `on_start` callbacks in node order, then
/// dispatched events in `(time, seq)` order — exactly the record order of
/// a sequential run.
const PHASE_PRERUN: u8 = 0;
/// See [`PHASE_PRERUN`].
const PHASE_START: u8 = 1;
/// See [`PHASE_PRERUN`].
pub(crate) const PHASE_DISPATCH: u8 = 2;

/// Builds a 128-bit global order key for traffic records:
/// `phase(2) | time_us(48) | mid(64) | record_idx(14)`. The `mid` field
/// is the harness counter (phase 0), the node id (phase 1), or the
/// event's *local execution position within its tick* (phase 2) — the
/// latter rewritten to a cross-shard slot by the seal-time replay.
#[inline]
fn order_key(phase: u8, time_us: u64, mid: u64) -> u128 {
    debug_assert!(time_us < (1 << 48), "virtual time exceeds key range");
    ((phase as u128) << 126) | ((time_us as u128) << 78) | ((mid as u128) << 14)
}

/// Field accessors for the order keys above (merge-time replay).
pub(crate) fn key_phase(key: u128) -> u8 {
    (key >> 126) as u8
}

/// The tick (µs) field of an order key.
pub(crate) fn key_tick(key: u128) -> u64 {
    ((key >> 78) & ((1u128 << 48) - 1)) as u64
}

/// The `mid` field of an order key.
pub(crate) fn key_mid(key: u128) -> u64 {
    ((key >> 14) & ((1u128 << 64) - 1)) as u64
}

/// Replaces the `mid` field of an order key.
pub(crate) fn key_with_mid(key: u128, mid: u64) -> u128 {
    (key & !(((1u128 << 64) - 1) << 14)) | ((mid as u128) << 14)
}

/// Shared mutable simulation state of one engine (the whole run for
/// [`Sim`], one shard's slice for [`crate::ShardedSim`]): everything but
/// the protocol nodes themselves.
#[derive(Debug)]
pub(crate) struct SimCore<M> {
    pub(crate) queue: QueueImpl<EventKind<M>>,
    /// Per-owned-node push counters — the per-origin component of the
    /// event key — indexed by local node index.
    node_seqs: Vec<u64>,
    network: Network,
    pub(crate) traffic: Traffic,
    timers: TimerTable,
    node_rngs: Vec<Rng>,
    /// Per-sender network RNG streams (loss/jitter/egress draws).
    net_rngs: Vec<Rng>,
    /// Cross-shard routing; `None` for the sequential engine.
    pub(crate) route: Option<ShardRoute<M>>,
}

impl<M: Wire> SimCore<M> {
    /// Builds the core for one engine. `node_rngs`/`net_rngs` are the
    /// owned entries of the [`fork_streams`] vectors, in ascending
    /// global-id order (local-index order).
    pub(crate) fn new(
        config: SimConfig,
        node_rngs: Vec<Rng>,
        net_rngs: Vec<Rng>,
        route: Option<ShardRoute<M>>,
    ) -> Self {
        // A worker shard of a multi-shard run records traffic with an
        // unbounded local threshold: the spill rule is applied globally
        // at merge time so it matches the sequential first-appearance
        // order (see `Traffic::merge_shards`). A single-shard run's
        // local order *is* the global order, so it keeps the configured
        // threshold like the sequential engine.
        let spill = match &route {
            Some(r) if r.partition.shard_count() > 1 => usize::MAX,
            _ => config.link_spill_threshold(),
        };
        let owned = node_rngs.len();
        let mut traffic = Traffic::with_spill_threshold(spill);
        // Pre-size the per-node payload table to the full node count so
        // the record hot path never regrows it (senders are globally
        // indexed even on a worker shard).
        traffic.reserve_nodes(config.node_count());
        if let Some(dir) = config.traffic_spool() {
            traffic.enable_spool(dir);
        }
        SimCore {
            // Pre-size the event queue: a gossip burst schedules
            // ~fanout events per node, so even modest runs reach
            // hundreds of in-flight events within the first round.
            queue: config.event_queue().build(1024),
            node_seqs: vec![0; owned],
            traffic,
            network: Network::new(config),
            timers: TimerTable::default(),
            node_rngs,
            net_rngs,
            route,
        }
    }

    /// Number of nodes owned by this core.
    pub(crate) fn owned(&self) -> usize {
        self.node_seqs.len()
    }

    /// Local index of an owned node: its position in this core's
    /// ascending-id member list. The sequential engine owns every node,
    /// so local index = global id; a shard looks it up in the partition's
    /// O(1) table.
    #[inline]
    pub(crate) fn local_of(&self, node: NodeId) -> usize {
        match &self.route {
            Some(r) => r.partition.local_of(node.index()),
            None => node.index(),
        }
    }

    /// Global id of the owned node at local index `i` (inverse of
    /// [`SimCore::local_of`]).
    #[inline]
    fn id_of_local(&self, i: usize) -> NodeId {
        match &self.route {
            Some(r) => NodeId(r.partition.members(r.me)[i] as usize),
            None => NodeId(i),
        }
    }

    /// Whether this core owns `node`.
    fn owns(&self, node: NodeId) -> bool {
        match &self.route {
            Some(r) => r.partition.shard_of(node.index()) == r.me,
            None => node.index() < self.node_seqs.len(),
        }
    }

    /// Pushes an event originated by owned node `origin`, assigning its
    /// intrinsic `(origin, counter)` key and routing it to this core's
    /// queue or, for a cross-shard delivery, the destination lane.
    fn push_from(&mut self, origin: NodeId, time: SimTime, kind: EventKind<M>) {
        let li = self.local_of(origin);
        let seq = pack_seq(origin.index() as u32 + 1, self.node_seqs[li]);
        self.node_seqs[li] += 1;
        let ev = Scheduled {
            time,
            seq,
            item: kind,
        };
        if let Some(route) = &mut self.route {
            // Only deliveries can cross shards: timers and commands
            // always target the originating shard's own nodes.
            if let EventKind::Deliver { to, .. } = &ev.item {
                let dest = route.partition.shard_of(to.index());
                if dest != route.me {
                    route.lanes[dest].push(ev);
                    return;
                }
            }
        }
        self.queue.push(ev);
    }

    /// Pushes a pre-keyed event straight into this core's queue (harness
    /// scheduling and window-boundary lane merging).
    pub(crate) fn enqueue(&mut self, ev: Scheduled<EventKind<M>>) {
        self.queue.push(ev);
    }

    /// Takes (and empties) the outgoing lane toward `dest`.
    pub(crate) fn take_lane(&mut self, dest: usize) -> Vec<Scheduled<EventKind<M>>> {
        std::mem::take(&mut self.route.as_mut().expect("sharded core").lanes[dest])
    }

    /// Returns a drained lane buffer so its capacity is reused.
    pub(crate) fn put_lane(&mut self, dest: usize, lane: Vec<Scheduled<EventKind<M>>>) {
        debug_assert!(lane.is_empty());
        self.route.as_mut().expect("sharded core").lanes[dest] = lane;
    }

    /// Whether any outgoing lane holds events.
    pub(crate) fn lanes_pending(&self) -> bool {
        self.route
            .as_ref()
            .is_some_and(|r| r.lanes.iter().any(|l| !l.is_empty()))
    }

    /// Earliest queued event time, if any.
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Records one transmission and decides its network fate, drawing
    /// from the *sender's* network stream.
    fn send_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u32,
        payload: bool,
    ) -> Option<SimDuration> {
        self.traffic.record(from, to, bytes, payload);
        if let Some(route) = &mut self.route {
            if let Some(map) = &mut route.first_keys {
                debug_assert!(route.cur_idx < (1 << 14), "record index overflow");
                let link = ((from.index() as u64) << 32) | to.index() as u64;
                let pos = route.cur_key | route.cur_idx as u128;
                if let std::collections::hash_map::Entry::Vacant(e) = map.entry(link) {
                    e.insert(pos);
                    // A dispatch-phase first appearance makes the tick's
                    // execution sequence worth retaining for the replay.
                    if key_phase(pos) == PHASE_DISPATCH {
                        route.tick_firsts += 1;
                    }
                }
                route.cur_idx += 1;
            }
        }
        let li = self.local_of(from);
        let rng = &mut self.net_rngs[li];
        self.network.transmit(rng, now, from, to, bytes)
    }

    /// Marks the start of one dispatched protocol event so the traffic
    /// records it emits can be globally ordered (no-op unless
    /// first-appearance keys are being tracked). The event's intrinsic
    /// key enters the tick's execution buffer; its *position* there —
    /// not the key itself — orders its records, because within a tick
    /// execution order is the priority order over a growing queue, which
    /// key comparison alone cannot reproduce.
    fn begin_dispatch(&mut self, time: SimTime, seq: u64) {
        if let Some(route) = &mut self.route {
            if route.first_keys.is_some() {
                let t = time.as_micros();
                if t != route.tick_us {
                    route.flush_tick();
                    route.tick_us = t;
                }
                route.tick_buf.push(seq);
                route.cur_key = order_key(PHASE_DISPATCH, t, (route.tick_buf.len() - 1) as u64);
                route.cur_idx = 0;
            }
        }
    }

    /// Marks the start of one `on_start` callback (ordered by node id,
    /// after all pre-run harness records, before all dispatch records).
    fn begin_start(&mut self, node: NodeId) {
        if let Some(route) = &mut self.route {
            if route.first_keys.is_some() {
                route.cur_key = order_key(PHASE_START, 0, node.index() as u64);
                route.cur_idx = 0;
            }
        }
    }

    /// Marks the start of one pre-run harness injection (ordered by the
    /// harness counter, before everything else).
    pub(crate) fn begin_harness(&mut self, harness_seq: u64) {
        if let Some(route) = &mut self.route {
            if route.first_keys.is_some() {
                route.cur_key = order_key(PHASE_PRERUN, 0, harness_seq);
                route.cur_idx = 0;
            }
        }
    }

    /// Surrenders the per-link first-appearance keys and the retained
    /// tick execution sequences for the traffic merge.
    #[allow(clippy::type_complexity)]
    pub(crate) fn take_first_keys(
        &mut self,
    ) -> Option<(FastHashMap<u64, u128>, FastHashMap<u64, Vec<u64>>)> {
        let route = self.route.as_mut()?;
        route.flush_tick();
        let keys = route.first_keys.take()?;
        Some((keys, std::mem::take(&mut route.tick_log)))
    }

    /// [`SimCore::send_message`] for harness-side injections (pre-keyed
    /// by the caller through [`SimCore::begin_harness`]).
    pub(crate) fn harness_send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u32,
        payload: bool,
    ) -> Option<SimDuration> {
        self.send_message(now, from, to, bytes, payload)
    }

    /// See [`Sim::timers_cancelled`].
    pub(crate) fn timers_cancelled(&self) -> u64 {
        self.timers.cancelled
    }

    /// See [`Sim::stale_timer_drops`].
    pub(crate) fn stale_timer_drops(&self) -> u64 {
        self.timers.stale_drops
    }

    /// The network instance (this core's copy, under sharding).
    pub(crate) fn network(&self) -> &Network {
        &self.network
    }
}

/// Everything a node may touch during a callback.
///
/// Borrowed mutably for the duration of one event dispatch.
#[derive(Debug)]
pub struct Context<'a, M> {
    id: NodeId,
    now: SimTime,
    core: &'a mut SimCore<M>,
}

impl<M: Wire> Context<'_, M> {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.core.network.node_count()
    }

    /// This node's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut Rng {
        let li = self.core.local_of(self.id);
        &mut self.core.node_rngs[li]
    }

    /// Sends `msg` to `to` over the virtual network.
    ///
    /// The message is tallied in [`Sim::traffic`] (even if subsequently
    /// dropped by loss or silencing, matching how ModelNet logs sender-side
    /// transmissions), then delivered after the network delay unless
    /// dropped.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let from = self.id;
        let bytes = msg.wire_bytes();
        if let Some(delay) = self
            .core
            .send_message(self.now, from, to, bytes, msg.is_payload())
        {
            let time = self.now + delay;
            self.core
                .push_from(from, time, EventKind::Deliver { to, from, msg });
        }
    }

    /// Schedules [`Protocol::on_timer`] for this node after `delay`.
    ///
    /// These timers cannot be cancelled — use them for periodic ticks
    /// that always re-arm (shuffle, ping). For timers that a later event
    /// may obsolete (request retries), use
    /// [`Context::set_cancellable_timer`] so the dead event is dropped at
    /// pop time instead of dispatching.
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        let time = self.now + delay;
        let node = self.id;
        self.core
            .push_from(node, time, EventKind::Timer { node, tag });
    }

    /// Schedules [`Protocol::on_timer`] for this node after `delay`,
    /// returning a [`TimerToken`] that [`Context::cancel_timer`] can
    /// invalidate. A cancelled timer never reaches the protocol: its heap
    /// entry is recognized as stale (generation mismatch) when popped and
    /// dropped before dispatch.
    pub fn set_cancellable_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerToken {
        let token = self.core.timers.arm();
        let time = self.now + delay;
        let node = self.id;
        self.core
            .push_from(node, time, EventKind::CancellableTimer { node, tag, token });
        token
    }

    /// Cancels a timer armed with [`Context::set_cancellable_timer`].
    ///
    /// Returns `true` if the timer was still pending; `false` if it
    /// already fired or was already cancelled (tokens are single-use).
    pub fn cancel_timer(&mut self, token: TimerToken) -> bool {
        self.core.timers.cancel(token)
    }
}

/// One engine's execution state: its core plus the protocol nodes it
/// owns. The sequential [`Sim`] holds exactly one (owning every node);
/// [`crate::ShardedSim`] holds one per worker shard. Both drive events
/// through the same dispatch path, which is what makes "W shards" a
/// performance knob rather than a behavioural one.
#[derive(Debug)]
pub(crate) struct EngineState<P: Protocol> {
    pub(crate) core: SimCore<P::Msg>,
    pub(crate) nodes: Vec<P>,
    pub(crate) now: SimTime,
    pub(crate) started: bool,
    pub(crate) events_processed: u64,
}

impl<P: Protocol> EngineState<P> {
    pub(crate) fn new(core: SimCore<P::Msg>, nodes: Vec<P>) -> Self {
        assert_eq!(core.owned(), nodes.len(), "one RNG stream per node");
        EngineState {
            core,
            nodes,
            now: SimTime::ZERO,
            started: false,
            events_processed: 0,
        }
    }

    /// Runs [`Protocol::on_start`] on every owned node (in id order) if
    /// not yet done.
    pub(crate) fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let id = self.core.id_of_local(i);
            self.core.begin_start(id);
            let mut ctx = Context {
                id,
                now: self.now,
                core: &mut self.core,
            };
            self.nodes[i].on_start(&mut ctx);
        }
    }

    /// Dispatches one popped event (or drops it, if it is a stale
    /// cancelled timer).
    pub(crate) fn dispatch(&mut self, ev: Scheduled<EventKind<P::Msg>>) {
        debug_assert!(ev.time >= self.now, "time must be monotonic");
        if let EventKind::CancellableTimer { token, .. } = &ev.item {
            if !self.core.timers.fire(*token) {
                return; // stale: dropped before dispatch
            }
        }
        self.now = ev.time;
        // Fault events stay out of the record-order bookkeeping: they
        // emit no records and push no events, and they are replicated
        // per shard (their non-unique keys would corrupt the replay).
        if !matches!(
            ev.item,
            EventKind::Silence(_)
                | EventKind::Revive(_)
                | EventKind::Degrade { .. }
                | EventKind::Slowdown { .. }
        ) {
            self.core.begin_dispatch(ev.time, ev.seq);
        }
        match ev.item {
            EventKind::Deliver { to, from, msg } => {
                self.events_processed += 1;
                let li = self.core.local_of(to);
                let mut ctx = Context {
                    id: to,
                    now: self.now,
                    core: &mut self.core,
                };
                self.nodes[li].on_receive(&mut ctx, from, msg);
            }
            EventKind::Timer { node, tag } | EventKind::CancellableTimer { node, tag, .. } => {
                self.events_processed += 1;
                let li = self.core.local_of(node);
                let mut ctx = Context {
                    id: node,
                    now: self.now,
                    core: &mut self.core,
                };
                self.nodes[li].on_timer(&mut ctx, tag);
            }
            EventKind::Command { node, value } => {
                self.events_processed += 1;
                let li = self.core.local_of(node);
                let mut ctx = Context {
                    id: node,
                    now: self.now,
                    core: &mut self.core,
                };
                self.nodes[li].on_command(&mut ctx, value);
            }
            // Fault events are replicated to every shard (each keeps its
            // own fault view); the event is *counted* once, by the shard
            // owning the affected node, so `events_processed` sums to the
            // sequential engine's count.
            EventKind::Silence(node) => {
                if self.core.owns(node) {
                    self.events_processed += 1;
                }
                self.core.network.silence(node);
            }
            EventKind::Revive(node) => {
                if self.core.owns(node) {
                    self.events_processed += 1;
                }
                self.core.network.revive(node);
            }
            // Degradation is global (no affected node); the shard owning
            // node 0 is the designated counter.
            EventKind::Degrade {
                latency_mult,
                extra_loss,
            } => {
                if self.core.owns(NodeId(0)) {
                    self.events_processed += 1;
                }
                self.core.network.degrade_transit(latency_mult, extra_loss);
            }
            EventKind::Slowdown { node, delay } => {
                if self.core.owns(node) {
                    self.events_processed += 1;
                }
                self.core.network.slow_down(node, delay);
            }
        }
    }

    /// Dispatches every queued event with time `<= bound` (all of them
    /// when `bound` is `None`).
    pub(crate) fn run_bounded(&mut self, bound: Option<SimTime>) {
        self.ensure_started();
        while let Some(ev) = self.core.queue.pop_next(bound) {
            self.dispatch(ev);
        }
    }
}

/// The sequential discrete-event simulator driving a set of [`Protocol`]
/// nodes on one thread. [`crate::ShardedSim`] is the partitioned
/// equivalent for large runs; both produce byte-identical results.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct Sim<P: Protocol> {
    eng: EngineState<P>,
    /// Counter behind harness-originated event keys (commands, faults,
    /// external sends), mirrored by the sharded engine.
    harness_seq: u64,
}

impl<P: Protocol> Sim<P> {
    /// Creates a simulation of `nodes` over the configured network.
    ///
    /// `seed` determines every random choice in the run: node RNG streams
    /// are forked from it in id order, followed by one network stream
    /// (loss/jitter) per sender.
    ///
    /// # Panics
    ///
    /// Panics if the number of nodes does not match the network
    /// configuration.
    pub fn new(config: SimConfig, seed: u64, nodes: Vec<P>) -> Self {
        assert_eq!(
            nodes.len(),
            config.node_count(),
            "node vector must match network size"
        );
        assert!(nodes.len() <= MAX_NODES, "too many nodes for event keys");
        let (node_rngs, net_rngs) = fork_streams(seed, nodes.len());
        let core = SimCore::new(config, node_rngs, net_rngs, None);
        Sim {
            eng: EngineState::new(core, nodes),
            harness_seq: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.eng.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.eng.nodes.len()
    }

    /// Total events processed so far. Stale cancellable-timer events that
    /// are dropped at pop time are *not* counted — they never dispatch.
    pub fn events_processed(&self) -> u64 {
        self.eng.events_processed
    }

    /// Number of timers cancelled through [`Context::cancel_timer`].
    pub fn timers_cancelled(&self) -> u64 {
        self.eng.core.timers_cancelled()
    }

    /// Number of stale (cancelled) timer events dropped at pop time
    /// before dispatch.
    pub fn stale_timer_drops(&self) -> u64 {
        self.eng.core.stale_timer_drops()
    }

    /// Transport-level traffic accounting.
    pub fn traffic(&self) -> &Traffic {
        &self.eng.core.traffic
    }

    /// Seals the traffic log so repeated per-link queries are O(1) (see
    /// [`Traffic::seal`]). Call once measurement is over: the simulation
    /// must not send any further messages afterwards.
    pub fn seal_traffic(&mut self) {
        self.eng.core.traffic.seal();
    }

    /// Event-queue counters (pushes/pops plus, for the calendar queue,
    /// bucket geometry and resize activity). See
    /// [`crate::event::QueueStats`].
    pub fn queue_stats(&self) -> QueueStats {
        self.eng.core.queue.stats()
    }

    /// Immutable access to a protocol node (e.g. to read final state).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &P {
        &self.eng.nodes[id.index()]
    }

    /// Mutable access to a protocol node (e.g. for harness-side setup).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.eng.nodes[id.index()]
    }

    /// Iterates over all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.eng
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n))
    }

    /// Mutably iterates over all nodes with their ids (e.g. for the
    /// harness's end-of-run sweeps).
    pub fn nodes_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut P)> {
        self.eng
            .nodes
            .iter_mut()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n))
    }

    /// The virtual network (to inspect fault state).
    pub fn network(&self) -> &Network {
        self.eng.core.network()
    }

    /// Reserves the next harness event key.
    fn next_harness_seq(&mut self) -> u64 {
        let seq = pack_seq(0, self.harness_seq);
        self.harness_seq += 1;
        seq
    }

    /// Injects a message from outside the simulation, delivered after the
    /// usual network delay. Useful in tests.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let seq = self.next_harness_seq();
        let bytes = msg.wire_bytes();
        self.eng.core.begin_harness(seq);
        let now = self.eng.now;
        if let Some(delay) = self
            .eng
            .core
            .send_message(now, from, to, bytes, msg.is_payload())
        {
            let time = now + delay;
            self.eng.core.enqueue(Scheduled {
                time,
                seq,
                item: EventKind::Deliver { to, from, msg },
            });
        }
    }

    /// Schedules a harness command for `node` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, value: u64) {
        assert!(at >= self.eng.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        self.eng.core.enqueue(Scheduled {
            time: at,
            seq,
            item: EventKind::Command { node, value },
        });
    }

    /// Schedules node silencing (fault injection, §6.3) at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_silence(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.eng.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        self.eng.core.enqueue(Scheduled {
            time: at,
            seq,
            item: EventKind::Silence(node),
        });
    }

    /// Schedules node revival at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_revive(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.eng.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        self.eng.core.enqueue(Scheduled {
            time: at,
            seq,
            item: EventKind::Revive(node),
        });
    }

    /// Schedules a transit-degradation change at time `at`: cross-domain
    /// traffic gets its base delay multiplied by `latency_mult` and an
    /// extra drop probability `extra_loss` from then on. Schedule
    /// `(1.0, 0.0)` to restore the healthy network (see
    /// [`crate::Network::degrade_transit`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, `latency_mult < 1.0`, or
    /// `extra_loss` is outside `[0, 1]` (parameters are validated here so
    /// a bad schedule fails fast, not mid-run).
    pub fn schedule_degrade(&mut self, at: SimTime, latency_mult: f64, extra_loss: f64) {
        assert!(at >= self.eng.now, "cannot schedule in the past");
        assert!(
            latency_mult.is_finite() && latency_mult >= 1.0,
            "degradation may only lengthen delays"
        );
        assert!(
            (0.0..=1.0).contains(&extra_loss),
            "extra loss must be a probability"
        );
        let seq = self.next_harness_seq();
        self.eng.core.enqueue(Scheduled {
            time: at,
            seq,
            item: EventKind::Degrade {
                latency_mult,
                extra_loss,
            },
        });
    }

    /// Schedules a processing-slowdown change for `node` at time `at`:
    /// every message *into* the node is delayed by an extra `delay` from
    /// then on. Schedule `ZERO` to restore full speed (see
    /// [`crate::Network::slow_down`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_slowdown(&mut self, at: SimTime, node: NodeId, delay: SimDuration) {
        assert!(at >= self.eng.now, "cannot schedule in the past");
        let seq = self.next_harness_seq();
        self.eng.core.enqueue(Scheduled {
            time: at,
            seq,
            item: EventKind::Slowdown { node, delay },
        });
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    ///
    /// A popped cancellable-timer event whose generation is stale is
    /// dropped here, before dispatch: the clock does not advance, the
    /// protocol is never called, and [`Sim::events_processed`] does not
    /// count it (see [`Sim::stale_timer_drops`]).
    pub fn step(&mut self) -> bool {
        self.eng.ensure_started();
        let Some(ev) = self.eng.core.queue.pop_next(None) else {
            return false;
        };
        self.eng.dispatch(ev);
        true
    }

    /// Runs until the event queue is exhausted or virtual time would pass
    /// `deadline`; the clock finishes at `deadline` if it was reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.eng.run_bounded(Some(deadline));
        if self.eng.now < deadline {
            self.eng.now = deadline;
        }
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.eng.now + d;
        self.run_until(deadline);
    }

    /// Runs until the queue is fully drained (beware periodic timers:
    /// protocols that always re-arm will never drain).
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}
#[cfg(test)]
mod tests {
    use super::{Context, Protocol, Sim};
    use crate::net::SimConfig;
    use crate::time::{SimDuration, SimTime};
    use crate::wire::Wire;
    use crate::NodeId;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Wire for Msg {
        fn wire_bytes(&self) -> u32 {
            16
        }
        fn is_payload(&self) -> bool {
            matches!(self, Msg::Ping(_))
        }
    }

    /// Echoes pings; counts pongs; multicasts on command.
    #[derive(Default)]
    struct Echo {
        pongs: Vec<(u32, f64)>,
        timers: Vec<u64>,
        started_at: Option<f64>,
    }

    impl Protocol for Echo {
        type Msg = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.started_at = Some(ctx.now().as_ms());
        }

        fn on_receive(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(k) => ctx.send(from, Msg::Pong(k)),
                Msg::Pong(k) => self.pongs.push((k, ctx.now().as_ms())),
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: u64) {
            self.timers.push(tag);
        }

        fn on_command(&mut self, ctx: &mut Context<'_, Msg>, value: u64) {
            let n = ctx.node_count();
            for i in 0..n {
                if NodeId(i) != ctx.id() {
                    ctx.send(NodeId(i), Msg::Ping(value as u32));
                }
            }
        }
    }

    fn two_nodes(ms: f64) -> Sim<Echo> {
        Sim::new(
            SimConfig::uniform(2, ms),
            7,
            vec![Echo::default(), Echo::default()],
        )
    }

    #[test]
    fn round_trip_takes_two_delays() {
        let mut sim = two_nodes(10.0);
        sim.send_external(NodeId(1), NodeId(0), Msg::Ping(1));
        sim.run_for(SimDuration::from_ms(100.0));
        // external ping: delivered to n0 at 10ms; pong back to n1 at 20ms
        assert_eq!(sim.node(NodeId(1)).pongs, vec![(1, 20.0)]);
        assert_eq!(sim.now(), SimTime::from_ms(100.0));
    }

    #[test]
    fn on_start_runs_once_at_zero() {
        let mut sim = two_nodes(1.0);
        sim.run_for(SimDuration::from_ms(1.0));
        assert_eq!(sim.node(NodeId(0)).started_at, Some(0.0));
        sim.run_for(SimDuration::from_ms(1.0));
        assert_eq!(sim.node(NodeId(1)).started_at, Some(0.0));
    }

    #[test]
    fn timers_fire_at_exact_times_in_order() {
        struct TimerNode {
            fired: Vec<(u64, f64)>,
        }
        impl Protocol for TimerNode {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_ms(5.0), 5);
                ctx.set_timer(SimDuration::from_ms(1.0), 1);
                ctx.set_timer(SimDuration::from_ms(3.0), 3);
            }
            fn on_receive(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                self.fired.push((tag, ctx.now().as_ms()));
            }
        }
        let mut sim = Sim::new(
            SimConfig::uniform(1, 1.0),
            1,
            vec![TimerNode { fired: Vec::new() }],
        );
        sim.run_to_idle();
        assert_eq!(
            sim.node(NodeId(0)).fired,
            vec![(1, 1.0), (3, 3.0), (5, 5.0)]
        );
    }

    #[test]
    fn commands_trigger_protocol_behaviour() {
        let mut sim = two_nodes(10.0);
        sim.schedule_command(SimTime::from_ms(50.0), NodeId(0), 9);
        sim.run_for(SimDuration::from_ms(200.0));
        // command at 50 → ping at 60 → pong delivered at 70
        assert_eq!(sim.node(NodeId(0)).pongs, vec![(9, 70.0)]);
    }

    #[test]
    fn traffic_is_accounted() {
        let mut sim = two_nodes(10.0);
        sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 1);
        sim.run_for(SimDuration::from_ms(100.0));
        // 1 ping (payload) + 1 pong (control), external none
        assert_eq!(sim.traffic().total_messages(), 2);
        assert_eq!(sim.traffic().total_payloads(), 1);
        assert_eq!(sim.traffic().total_bytes(), 32);
    }

    #[test]
    fn silencing_stops_delivery_but_not_accounting() {
        let mut sim = two_nodes(10.0);
        sim.schedule_silence(SimTime::from_ms(0.0), NodeId(1));
        sim.schedule_command(SimTime::from_ms(1.0), NodeId(0), 2);
        sim.run_for(SimDuration::from_ms(100.0));
        assert!(sim.node(NodeId(0)).pongs.is_empty());
        assert_eq!(sim.traffic().total_messages(), 1, "send was still tallied");
        assert!(sim.network().is_silenced(NodeId(1)));
    }

    #[test]
    fn revive_restores_connectivity() {
        let mut sim = two_nodes(10.0);
        sim.schedule_silence(SimTime::from_ms(0.0), NodeId(1));
        sim.schedule_revive(SimTime::from_ms(50.0), NodeId(1));
        sim.schedule_command(SimTime::from_ms(60.0), NodeId(0), 3);
        sim.run_for(SimDuration::from_ms(200.0));
        assert_eq!(sim.node(NodeId(0)).pongs.len(), 1);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut sim = Sim::new(
                SimConfig::uniform(4, 10.0).with_loss(0.3).with_jitter(0.2),
                seed,
                (0..4).map(|_| Echo::default()).collect(),
            );
            for k in 0..20 {
                sim.schedule_command(SimTime::from_ms(k as f64 * 7.0), NodeId(k % 4), k as u64);
            }
            sim.run_for(SimDuration::from_ms(1000.0));
            (
                sim.traffic().total_messages(),
                sim.traffic().total_bytes(),
                sim.nodes()
                    .map(|(_, n)| n.pongs.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).2, run(12).2, "different seeds should differ");
    }

    #[test]
    fn run_until_stops_clock_at_deadline() {
        let mut sim = two_nodes(10.0);
        sim.schedule_command(SimTime::from_ms(500.0), NodeId(0), 1);
        sim.run_until(SimTime::from_ms(100.0));
        assert_eq!(sim.now(), SimTime::from_ms(100.0));
        assert_eq!(sim.events_processed(), 0);
        sim.run_until(SimTime::from_ms(600.0));
        assert!(sim.events_processed() > 0);
    }

    #[test]
    #[should_panic(expected = "match network size")]
    fn node_count_mismatch_panics() {
        let _ = Sim::new(SimConfig::uniform(3, 1.0), 0, vec![Echo::default()]);
    }

    /// Arms a cancellable timer on start; cancels it when any message
    /// arrives before it fires.
    #[derive(Default)]
    struct Canceller {
        token: Option<crate::sim::TimerToken>,
        fired: Vec<u64>,
        cancel_worked: Option<bool>,
    }

    impl Protocol for Canceller {
        type Msg = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.token = Some(ctx.set_cancellable_timer(SimDuration::from_ms(50.0), 7));
        }

        fn on_receive(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {
            if let Some(token) = self.token.take() {
                self.cancel_worked = Some(ctx.cancel_timer(token));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn cancelled_timer_never_dispatches() {
        let mut sim = Sim::new(
            SimConfig::uniform(2, 10.0),
            3,
            vec![Canceller::default(), Canceller::default()],
        );
        // Message reaches node 0 at 10ms, well before its 50ms timer.
        sim.send_external(NodeId(1), NodeId(0), Msg::Ping(1));
        sim.run_for(SimDuration::from_ms(200.0));
        assert_eq!(sim.node(NodeId(0)).fired, Vec::<u64>::new());
        assert_eq!(sim.node(NodeId(0)).cancel_worked, Some(true));
        // Node 1 got no message, so its timer fired normally.
        assert_eq!(sim.node(NodeId(1)).fired, vec![7]);
        assert_eq!(sim.timers_cancelled(), 1);
        assert_eq!(sim.stale_timer_drops(), 1, "stale pop dropped silently");
    }

    #[test]
    fn uncancelled_cancellable_timer_behaves_like_a_timer() {
        let mut sim = Sim::new(SimConfig::uniform(1, 1.0), 5, vec![Canceller::default()]);
        sim.run_to_idle();
        assert_eq!(sim.node(NodeId(0)).fired, vec![7]);
        assert_eq!(sim.now(), SimTime::from_ms(50.0));
        assert_eq!(sim.timers_cancelled(), 0);
        assert_eq!(sim.stale_timer_drops(), 0);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        struct LateCancel {
            token: Option<crate::sim::TimerToken>,
            late_cancel: Option<bool>,
        }
        impl Protocol for LateCancel {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                self.token = Some(ctx.set_cancellable_timer(SimDuration::from_ms(5.0), 1));
            }
            fn on_receive(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: u64) {
                // The token was consumed by this very firing.
                let token = self.token.take().expect("armed once");
                self.late_cancel = Some(ctx.cancel_timer(token));
            }
        }
        let mut sim = Sim::new(
            SimConfig::uniform(1, 1.0),
            1,
            vec![LateCancel {
                token: None,
                late_cancel: None,
            }],
        );
        sim.run_to_idle();
        assert_eq!(sim.node(NodeId(0)).late_cancel, Some(false));
        assert_eq!(sim.timers_cancelled(), 0);
    }

    #[test]
    fn stale_drops_do_not_count_as_events() {
        let mut sim = Sim::new(
            SimConfig::uniform(2, 10.0),
            3,
            vec![Canceller::default(), Canceller::default()],
        );
        sim.send_external(NodeId(1), NodeId(0), Msg::Ping(1));
        sim.run_for(SimDuration::from_ms(200.0));
        // Dispatched: the delivery at node 0 and node 1's live timer. The
        // stale timer pop is not counted.
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn timer_slots_are_recycled() {
        struct Rearm {
            rounds: u32,
        }
        impl Protocol for Rearm {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_cancellable_timer(SimDuration::from_ms(1.0), 0);
            }
            fn on_receive(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                self.rounds += 1;
                if self.rounds < 100 {
                    ctx.set_cancellable_timer(SimDuration::from_ms(1.0), tag);
                }
            }
        }
        let mut sim = Sim::new(SimConfig::uniform(1, 1.0), 1, vec![Rearm { rounds: 0 }]);
        sim.run_to_idle();
        assert_eq!(sim.node(NodeId(0)).rounds, 100);
        // 100 sequential timers reused one table slot; determinism of the
        // run is covered by the seeded tests above.
    }
}
