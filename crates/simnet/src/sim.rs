//! The simulation engine: event loop, protocol trait, and node context.

use crate::event::{EventKind, QueueImpl, QueueStats, Scheduled};
use crate::net::{Network, SimConfig};
use crate::stats::Traffic;
use crate::time::{SimDuration, SimTime};
use crate::wire::Wire;
use crate::NodeId;
use egm_rng::Rng;

/// Tag identifying a protocol timer; meaning is private to the node that
/// set it.
pub type TimerTag = u64;

/// Handle to a cancellable timer armed with
/// [`Context::set_cancellable_timer`].
///
/// A token is a generation-stamped slot in the simulator's timer table.
/// Cancelling (or firing) a timer bumps its slot's generation, so the
/// already-queued heap event is recognized as stale at pop time and
/// dropped *before* dispatch — no heap surgery, no index maintenance, and
/// no dead events reaching the protocol. Tokens are single-use: once the
/// timer fires or is cancelled, the token is spent and further cancels
/// return `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken {
    slot: u32,
    generation: u32,
}

/// Generation table behind [`TimerToken`]: one generation counter per
/// slot, with freed slots recycled so the table size tracks the maximum
/// number of *concurrently* armed cancellable timers, not the total ever
/// armed.
#[derive(Debug, Default)]
struct TimerTable {
    generations: Vec<u32>,
    free: Vec<u32>,
    cancelled: u64,
    stale_drops: u64,
}

impl TimerTable {
    /// Allocates a slot (recycling freed ones) and returns its token.
    fn arm(&mut self) -> TimerToken {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        TimerToken {
            slot,
            generation: self.generations[slot as usize],
        }
    }

    /// Invalidates a live token. Returns `false` if it was already spent.
    fn cancel(&mut self, token: TimerToken) -> bool {
        let slot = &mut self.generations[token.slot as usize];
        if *slot != token.generation {
            return false;
        }
        *slot = slot.wrapping_add(1);
        self.free.push(token.slot);
        self.cancelled += 1;
        true
    }

    /// Consumes a token at pop time. Returns `true` when the event is
    /// live (and retires the slot), `false` when stale.
    fn fire(&mut self, token: TimerToken) -> bool {
        let slot = &mut self.generations[token.slot as usize];
        if *slot != token.generation {
            self.stale_drops += 1;
            return false;
        }
        *slot = slot.wrapping_add(1);
        self.free.push(token.slot);
        true
    }
}

/// Behaviour of a simulated protocol node.
///
/// All callbacks receive a [`Context`] giving access to the virtual clock,
/// the node's own id and RNG stream, message sending and timers. Nodes are
/// single-threaded and run to completion per event (the actor model), so no
/// synchronization is ever needed.
///
/// # Examples
///
/// See the crate-level example.
pub trait Protocol {
    /// Message type exchanged by this protocol.
    type Msg: Wire;

    /// Called once at simulation start (time zero), in node-id order.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this node.
    fn on_receive(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, tag: TimerTag) {
        let _ = (ctx, tag);
    }

    /// Called when the experiment harness injects a command (see
    /// [`Sim::schedule_command`]) — e.g. "multicast message number `value`
    /// now" from the traffic generator.
    fn on_command(&mut self, ctx: &mut Context<'_, Self::Msg>, value: u64) {
        let _ = (ctx, value);
    }
}

/// Everything a node may touch during a callback.
///
/// Borrowed mutably for the duration of one event dispatch.
#[derive(Debug)]
pub struct Context<'a, M> {
    id: NodeId,
    now: SimTime,
    core: &'a mut SimCore<M>,
}

impl<M: Wire> Context<'_, M> {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.core.network.node_count()
    }

    /// This node's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.core.node_rngs[self.id.index()]
    }

    /// Sends `msg` to `to` over the virtual network.
    ///
    /// The message is tallied in [`Sim::traffic`] (even if subsequently
    /// dropped by loss or silencing, matching how ModelNet logs sender-side
    /// transmissions), then delivered after the network delay unless
    /// dropped.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let from = self.id;
        let bytes = msg.wire_bytes();
        self.core.traffic.record(from, to, bytes, msg.is_payload());
        if let Some(delay) =
            self.core
                .network
                .transmit(&mut self.core.net_rng, self.now, from, to, bytes)
        {
            let time = self.now + delay;
            self.core.push(time, EventKind::Deliver { to, from, msg });
        }
    }

    /// Schedules [`Protocol::on_timer`] for this node after `delay`.
    ///
    /// These timers cannot be cancelled — use them for periodic ticks
    /// that always re-arm (shuffle, ping). For timers that a later event
    /// may obsolete (request retries), use
    /// [`Context::set_cancellable_timer`] so the dead event is dropped at
    /// pop time instead of dispatching.
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        let time = self.now + delay;
        let node = self.id;
        self.core.push(time, EventKind::Timer { node, tag });
    }

    /// Schedules [`Protocol::on_timer`] for this node after `delay`,
    /// returning a [`TimerToken`] that [`Context::cancel_timer`] can
    /// invalidate. A cancelled timer never reaches the protocol: its heap
    /// entry is recognized as stale (generation mismatch) when popped and
    /// dropped before dispatch.
    pub fn set_cancellable_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerToken {
        let token = self.core.timers.arm();
        let time = self.now + delay;
        let node = self.id;
        self.core
            .push(time, EventKind::CancellableTimer { node, tag, token });
        token
    }

    /// Cancels a timer armed with [`Context::set_cancellable_timer`].
    ///
    /// Returns `true` if the timer was still pending; `false` if it
    /// already fired or was already cancelled (tokens are single-use).
    pub fn cancel_timer(&mut self, token: TimerToken) -> bool {
        self.core.timers.cancel(token)
    }
}

/// Shared mutable simulation state (everything but the nodes themselves).
#[derive(Debug)]
struct SimCore<M> {
    queue: QueueImpl<EventKind<M>>,
    seq: u64,
    network: Network,
    traffic: Traffic,
    timers: TimerTable,
    node_rngs: Vec<Rng>,
    net_rng: Rng,
}

impl<M> SimCore<M> {
    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        self.queue.push(Scheduled {
            time,
            seq: self.seq,
            item: kind,
        });
        self.seq += 1;
    }
}

/// The discrete-event simulator driving a set of [`Protocol`] nodes.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct Sim<P: Protocol> {
    core: SimCore<P::Msg>,
    nodes: Vec<P>,
    now: SimTime,
    started: bool,
    events_processed: u64,
}

impl<P: Protocol> Sim<P> {
    /// Creates a simulation of `nodes` over the configured network.
    ///
    /// `seed` determines every random choice in the run: node RNG streams
    /// are forked from it in id order, plus one stream for the network
    /// (loss/jitter).
    ///
    /// # Panics
    ///
    /// Panics if the number of nodes does not match the network
    /// configuration.
    pub fn new(config: SimConfig, seed: u64, nodes: Vec<P>) -> Self {
        assert_eq!(
            nodes.len(),
            config.node_count(),
            "node vector must match network size"
        );
        let mut root = Rng::seed_from_u64(seed);
        let node_rngs: Vec<Rng> = (0..nodes.len()).map(|_| root.fork()).collect();
        let net_rng = root.fork();
        let queue_kind = config.event_queue();
        Sim {
            core: SimCore {
                // Pre-size the event queue: a gossip burst schedules
                // ~fanout events per node, so even modest runs reach
                // hundreds of in-flight events within the first round.
                queue: queue_kind.build(1024),
                seq: 0,
                traffic: Traffic::with_spill_threshold(config.link_spill_threshold()),
                network: Network::new(config),
                timers: TimerTable::default(),
                node_rngs,
                net_rng,
            },
            nodes,
            now: SimTime::ZERO,
            started: false,
            events_processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total events processed so far. Stale cancellable-timer events that
    /// are dropped at pop time are *not* counted — they never dispatch.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of timers cancelled through [`Context::cancel_timer`].
    pub fn timers_cancelled(&self) -> u64 {
        self.core.timers.cancelled
    }

    /// Number of stale (cancelled) timer events dropped at pop time
    /// before dispatch.
    pub fn stale_timer_drops(&self) -> u64 {
        self.core.timers.stale_drops
    }

    /// Transport-level traffic accounting.
    pub fn traffic(&self) -> &Traffic {
        &self.core.traffic
    }

    /// Seals the traffic log so repeated per-link queries are O(1) (see
    /// [`Traffic::seal`]). Call once measurement is over: the simulation
    /// must not send any further messages afterwards.
    pub fn seal_traffic(&mut self) {
        self.core.traffic.seal();
    }

    /// Event-queue counters (pushes/pops plus, for the calendar queue,
    /// bucket geometry and resize activity). See
    /// [`crate::event::QueueStats`].
    pub fn queue_stats(&self) -> QueueStats {
        self.core.queue.stats()
    }

    /// Immutable access to a protocol node (e.g. to read final state).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Mutable access to a protocol node (e.g. for harness-side setup).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// The virtual network (to inspect fault state).
    pub fn network(&self) -> &Network {
        &self.core.network
    }

    /// Injects a message from outside the simulation (no traffic tally),
    /// delivered after the usual network delay. Useful in tests.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let bytes = msg.wire_bytes();
        self.core.traffic.record(from, to, bytes, msg.is_payload());
        if let Some(delay) =
            self.core
                .network
                .transmit(&mut self.core.net_rng, self.now, from, to, bytes)
        {
            let time = self.now + delay;
            self.core.push(time, EventKind::Deliver { to, from, msg });
        }
    }

    /// Schedules a harness command for `node` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, value: u64) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.core.push(at, EventKind::Command { node, value });
    }

    /// Schedules node silencing (fault injection, §6.3) at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_silence(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.core.push(at, EventKind::Silence(node));
    }

    /// Schedules node revival at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_revive(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.core.push(at, EventKind::Revive(node));
    }

    /// Runs [`Protocol::on_start`] on every node if not yet done.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut ctx = Context {
                id: NodeId(i),
                now: self.now,
                core: &mut self.core,
            };
            self.nodes[i].on_start(&mut ctx);
        }
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    ///
    /// A popped cancellable-timer event whose generation is stale is
    /// dropped here, before dispatch: the clock does not advance, the
    /// protocol is never called, and [`Sim::events_processed`] does not
    /// count it (see [`Sim::stale_timer_drops`]).
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(ev) = self.core.queue.pop_next(None) else {
            return false;
        };
        self.dispatch(ev);
        true
    }

    /// Dispatches one popped event (or drops it, if it is a stale
    /// cancelled timer).
    fn dispatch(&mut self, ev: Scheduled<EventKind<P::Msg>>) {
        debug_assert!(ev.time >= self.now, "time must be monotonic");
        if let EventKind::CancellableTimer { token, .. } = &ev.item {
            if !self.core.timers.fire(*token) {
                return; // stale: dropped before dispatch
            }
        }
        self.now = ev.time;
        self.events_processed += 1;
        match ev.item {
            EventKind::Deliver { to, from, msg } => {
                let mut ctx = Context {
                    id: to,
                    now: self.now,
                    core: &mut self.core,
                };
                self.nodes[to.index()].on_receive(&mut ctx, from, msg);
            }
            EventKind::Timer { node, tag } | EventKind::CancellableTimer { node, tag, .. } => {
                let mut ctx = Context {
                    id: node,
                    now: self.now,
                    core: &mut self.core,
                };
                self.nodes[node.index()].on_timer(&mut ctx, tag);
            }
            EventKind::Command { node, value } => {
                let mut ctx = Context {
                    id: node,
                    now: self.now,
                    core: &mut self.core,
                };
                self.nodes[node.index()].on_command(&mut ctx, value);
            }
            EventKind::Silence(node) => self.core.network.silence(node),
            EventKind::Revive(node) => self.core.network.revive(node),
        }
    }

    /// Runs until the event queue is exhausted or virtual time would pass
    /// `deadline`; the clock finishes at `deadline` if it was reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(ev) = self.core.queue.pop_next(Some(deadline)) {
            self.dispatch(ev);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until the queue is fully drained (beware periodic timers:
    /// protocols that always re-arm will never drain).
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::{Context, Protocol, Sim};
    use crate::net::SimConfig;
    use crate::time::{SimDuration, SimTime};
    use crate::wire::Wire;
    use crate::NodeId;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Wire for Msg {
        fn wire_bytes(&self) -> u32 {
            16
        }
        fn is_payload(&self) -> bool {
            matches!(self, Msg::Ping(_))
        }
    }

    /// Echoes pings; counts pongs; multicasts on command.
    #[derive(Default)]
    struct Echo {
        pongs: Vec<(u32, f64)>,
        timers: Vec<u64>,
        started_at: Option<f64>,
    }

    impl Protocol for Echo {
        type Msg = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.started_at = Some(ctx.now().as_ms());
        }

        fn on_receive(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(k) => ctx.send(from, Msg::Pong(k)),
                Msg::Pong(k) => self.pongs.push((k, ctx.now().as_ms())),
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: u64) {
            self.timers.push(tag);
        }

        fn on_command(&mut self, ctx: &mut Context<'_, Msg>, value: u64) {
            let n = ctx.node_count();
            for i in 0..n {
                if NodeId(i) != ctx.id() {
                    ctx.send(NodeId(i), Msg::Ping(value as u32));
                }
            }
        }
    }

    fn two_nodes(ms: f64) -> Sim<Echo> {
        Sim::new(
            SimConfig::uniform(2, ms),
            7,
            vec![Echo::default(), Echo::default()],
        )
    }

    #[test]
    fn round_trip_takes_two_delays() {
        let mut sim = two_nodes(10.0);
        sim.send_external(NodeId(1), NodeId(0), Msg::Ping(1));
        sim.run_for(SimDuration::from_ms(100.0));
        // external ping: delivered to n0 at 10ms; pong back to n1 at 20ms
        assert_eq!(sim.node(NodeId(1)).pongs, vec![(1, 20.0)]);
        assert_eq!(sim.now(), SimTime::from_ms(100.0));
    }

    #[test]
    fn on_start_runs_once_at_zero() {
        let mut sim = two_nodes(1.0);
        sim.run_for(SimDuration::from_ms(1.0));
        assert_eq!(sim.node(NodeId(0)).started_at, Some(0.0));
        sim.run_for(SimDuration::from_ms(1.0));
        assert_eq!(sim.node(NodeId(1)).started_at, Some(0.0));
    }

    #[test]
    fn timers_fire_at_exact_times_in_order() {
        struct TimerNode {
            fired: Vec<(u64, f64)>,
        }
        impl Protocol for TimerNode {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_ms(5.0), 5);
                ctx.set_timer(SimDuration::from_ms(1.0), 1);
                ctx.set_timer(SimDuration::from_ms(3.0), 3);
            }
            fn on_receive(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                self.fired.push((tag, ctx.now().as_ms()));
            }
        }
        let mut sim = Sim::new(
            SimConfig::uniform(1, 1.0),
            1,
            vec![TimerNode { fired: Vec::new() }],
        );
        sim.run_to_idle();
        assert_eq!(
            sim.node(NodeId(0)).fired,
            vec![(1, 1.0), (3, 3.0), (5, 5.0)]
        );
    }

    #[test]
    fn commands_trigger_protocol_behaviour() {
        let mut sim = two_nodes(10.0);
        sim.schedule_command(SimTime::from_ms(50.0), NodeId(0), 9);
        sim.run_for(SimDuration::from_ms(200.0));
        // command at 50 → ping at 60 → pong delivered at 70
        assert_eq!(sim.node(NodeId(0)).pongs, vec![(9, 70.0)]);
    }

    #[test]
    fn traffic_is_accounted() {
        let mut sim = two_nodes(10.0);
        sim.schedule_command(SimTime::from_ms(0.0), NodeId(0), 1);
        sim.run_for(SimDuration::from_ms(100.0));
        // 1 ping (payload) + 1 pong (control), external none
        assert_eq!(sim.traffic().total_messages(), 2);
        assert_eq!(sim.traffic().total_payloads(), 1);
        assert_eq!(sim.traffic().total_bytes(), 32);
    }

    #[test]
    fn silencing_stops_delivery_but_not_accounting() {
        let mut sim = two_nodes(10.0);
        sim.schedule_silence(SimTime::from_ms(0.0), NodeId(1));
        sim.schedule_command(SimTime::from_ms(1.0), NodeId(0), 2);
        sim.run_for(SimDuration::from_ms(100.0));
        assert!(sim.node(NodeId(0)).pongs.is_empty());
        assert_eq!(sim.traffic().total_messages(), 1, "send was still tallied");
        assert!(sim.network().is_silenced(NodeId(1)));
    }

    #[test]
    fn revive_restores_connectivity() {
        let mut sim = two_nodes(10.0);
        sim.schedule_silence(SimTime::from_ms(0.0), NodeId(1));
        sim.schedule_revive(SimTime::from_ms(50.0), NodeId(1));
        sim.schedule_command(SimTime::from_ms(60.0), NodeId(0), 3);
        sim.run_for(SimDuration::from_ms(200.0));
        assert_eq!(sim.node(NodeId(0)).pongs.len(), 1);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut sim = Sim::new(
                SimConfig::uniform(4, 10.0).with_loss(0.3).with_jitter(0.2),
                seed,
                (0..4).map(|_| Echo::default()).collect(),
            );
            for k in 0..20 {
                sim.schedule_command(SimTime::from_ms(k as f64 * 7.0), NodeId(k % 4), k as u64);
            }
            sim.run_for(SimDuration::from_ms(1000.0));
            (
                sim.traffic().total_messages(),
                sim.traffic().total_bytes(),
                sim.nodes()
                    .map(|(_, n)| n.pongs.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).2, run(12).2, "different seeds should differ");
    }

    #[test]
    fn run_until_stops_clock_at_deadline() {
        let mut sim = two_nodes(10.0);
        sim.schedule_command(SimTime::from_ms(500.0), NodeId(0), 1);
        sim.run_until(SimTime::from_ms(100.0));
        assert_eq!(sim.now(), SimTime::from_ms(100.0));
        assert_eq!(sim.events_processed(), 0);
        sim.run_until(SimTime::from_ms(600.0));
        assert!(sim.events_processed() > 0);
    }

    #[test]
    #[should_panic(expected = "match network size")]
    fn node_count_mismatch_panics() {
        let _ = Sim::new(SimConfig::uniform(3, 1.0), 0, vec![Echo::default()]);
    }

    /// Arms a cancellable timer on start; cancels it when any message
    /// arrives before it fires.
    #[derive(Default)]
    struct Canceller {
        token: Option<crate::sim::TimerToken>,
        fired: Vec<u64>,
        cancel_worked: Option<bool>,
    }

    impl Protocol for Canceller {
        type Msg = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.token = Some(ctx.set_cancellable_timer(SimDuration::from_ms(50.0), 7));
        }

        fn on_receive(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {
            if let Some(token) = self.token.take() {
                self.cancel_worked = Some(ctx.cancel_timer(token));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn cancelled_timer_never_dispatches() {
        let mut sim = Sim::new(
            SimConfig::uniform(2, 10.0),
            3,
            vec![Canceller::default(), Canceller::default()],
        );
        // Message reaches node 0 at 10ms, well before its 50ms timer.
        sim.send_external(NodeId(1), NodeId(0), Msg::Ping(1));
        sim.run_for(SimDuration::from_ms(200.0));
        assert_eq!(sim.node(NodeId(0)).fired, Vec::<u64>::new());
        assert_eq!(sim.node(NodeId(0)).cancel_worked, Some(true));
        // Node 1 got no message, so its timer fired normally.
        assert_eq!(sim.node(NodeId(1)).fired, vec![7]);
        assert_eq!(sim.timers_cancelled(), 1);
        assert_eq!(sim.stale_timer_drops(), 1, "stale pop dropped silently");
    }

    #[test]
    fn uncancelled_cancellable_timer_behaves_like_a_timer() {
        let mut sim = Sim::new(SimConfig::uniform(1, 1.0), 5, vec![Canceller::default()]);
        sim.run_to_idle();
        assert_eq!(sim.node(NodeId(0)).fired, vec![7]);
        assert_eq!(sim.now(), SimTime::from_ms(50.0));
        assert_eq!(sim.timers_cancelled(), 0);
        assert_eq!(sim.stale_timer_drops(), 0);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        struct LateCancel {
            token: Option<crate::sim::TimerToken>,
            late_cancel: Option<bool>,
        }
        impl Protocol for LateCancel {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                self.token = Some(ctx.set_cancellable_timer(SimDuration::from_ms(5.0), 1));
            }
            fn on_receive(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: u64) {
                // The token was consumed by this very firing.
                let token = self.token.take().expect("armed once");
                self.late_cancel = Some(ctx.cancel_timer(token));
            }
        }
        let mut sim = Sim::new(
            SimConfig::uniform(1, 1.0),
            1,
            vec![LateCancel {
                token: None,
                late_cancel: None,
            }],
        );
        sim.run_to_idle();
        assert_eq!(sim.node(NodeId(0)).late_cancel, Some(false));
        assert_eq!(sim.timers_cancelled(), 0);
    }

    #[test]
    fn stale_drops_do_not_count_as_events() {
        let mut sim = Sim::new(
            SimConfig::uniform(2, 10.0),
            3,
            vec![Canceller::default(), Canceller::default()],
        );
        sim.send_external(NodeId(1), NodeId(0), Msg::Ping(1));
        sim.run_for(SimDuration::from_ms(200.0));
        // Dispatched: the delivery at node 0 and node 1's live timer. The
        // stale timer pop is not counted.
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn timer_slots_are_recycled() {
        struct Rearm {
            rounds: u32,
        }
        impl Protocol for Rearm {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_cancellable_timer(SimDuration::from_ms(1.0), 0);
            }
            fn on_receive(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                self.rounds += 1;
                if self.rounds < 100 {
                    ctx.set_cancellable_timer(SimDuration::from_ms(1.0), tag);
                }
            }
        }
        let mut sim = Sim::new(SimConfig::uniform(1, 1.0), 1, vec![Rearm { rounds: 0 }]);
        sim.run_to_idle();
        assert_eq!(sim.node(NodeId(0)).rounds, 100);
        // 100 sequential timers reused one table slot; determinism of the
        // run is covered by the seeded tests above.
    }
}
