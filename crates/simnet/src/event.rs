//! Internal event-queue types.

use crate::sim::TimerToken;
use crate::time::SimTime;
use crate::NodeId;
use std::cmp::Ordering;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver a message that survived the network.
    Deliver { to: NodeId, from: NodeId, msg: M },
    /// Fire a protocol timer.
    Timer { node: NodeId, tag: u64 },
    /// Fire a cancellable protocol timer; the token is checked against the
    /// live generation at pop time and stale events are dropped before
    /// dispatch.
    CancellableTimer {
        node: NodeId,
        tag: u64,
        token: TimerToken,
    },
    /// Deliver a harness command to a protocol node.
    Command { node: NodeId, value: u64 },
    /// Silence a node (fault injection).
    Silence(NodeId),
    /// Revive a previously silenced node.
    Revive(NodeId),
}

/// A scheduled event; ordering is by time, then schedule sequence, making
/// the simulation fully deterministic.
#[derive(Debug)]
pub(crate) struct Scheduled<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::{EventKind, Scheduled};
    use crate::{NodeId, SimTime};
    use std::collections::BinaryHeap;

    fn ev(ms: f64, seq: u64) -> Scheduled<()> {
        Scheduled {
            time: SimTime::from_ms(ms),
            seq,
            kind: EventKind::Timer {
                node: NodeId(0),
                tag: 0,
            },
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(5.0, 0));
        heap.push(ev(1.0, 1));
        heap.push(ev(3.0, 2));
        assert_eq!(heap.pop().expect("nonempty").time, SimTime::from_ms(1.0));
        assert_eq!(heap.pop().expect("nonempty").time, SimTime::from_ms(3.0));
        assert_eq!(heap.pop().expect("nonempty").time, SimTime::from_ms(5.0));
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(2.0, 7));
        heap.push(ev(2.0, 3));
        heap.push(ev(2.0, 5));
        assert_eq!(heap.pop().expect("nonempty").seq, 3);
        assert_eq!(heap.pop().expect("nonempty").seq, 5);
        assert_eq!(heap.pop().expect("nonempty").seq, 7);
    }
}
